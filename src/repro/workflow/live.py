"""Live coupled execution: real threads, real model updates.

The DES in :mod:`repro.workflow.runner` replays the coupled timeline
analytically; this module runs it *for real*: the producer trains the
actual numpy model on one thread (checkpointing through Viper's full
save path), while the consumer serves actual inference requests on
another, picking up every pushed update through its subscription and
swapping it in via the double buffer — the paper's Figure 1 as running
code.

Useful for integration testing the whole stack under true concurrency
and for the end-to-end examples.  Quality accounting mirrors the DES:
each served request records the model version and (when ground truth is
given) the achieved loss.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import WorkflowError
from repro.core.api import Viper
from repro.dnn.losses import Loss
from repro.serving.client import RequestGenerator
from repro.serving.server import InferenceServer, ServedRequest

__all__ = ["LiveRunResult", "LiveCoupledRun"]


@dataclass
class LiveRunResult:
    """Outcome of one live coupled run."""

    served: List[ServedRequest]
    cumulative_loss: float
    versions_served: List[int]
    checkpoints_taken: List[int]
    producer_stall_seconds: float
    updates_applied: int
    producer_error: Optional[BaseException] = None

    @property
    def distinct_versions(self) -> List[int]:
        return sorted(set(self.versions_served))


class LiveCoupledRun:
    """Run producer training and consumer serving concurrently.

    The consumer thread interleaves update polling with request serving
    (the segregated update/serving threads of §4.3, collapsed to one
    loop with non-blocking refresh — the swap itself is atomic either
    way).  The run ends when both the training and the request stream
    are exhausted.
    """

    def __init__(
        self,
        viper: Viper,
        model_name: str,
        *,
        model,
        model_builder,
        loss_fn: Optional[Loss] = None,
        t_infer: float = 0.005,
    ):
        self.viper = viper
        self.model_name = model_name
        self.model = model
        self.consumer = viper.consumer(model_builder=model_builder)
        self.consumer.subscribe()
        self.server = InferenceServer(
            self.consumer, model_name, loss_fn=loss_fn, t_infer=t_infer
        )

    def run(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        requests: RequestGenerator,
        *,
        total_requests: int,
        callback,
        epochs: int,
        batch_size: int,
        seed: int = 0,
    ) -> LiveRunResult:
        """Train and serve concurrently until both sides finish."""
        if total_requests <= 0:
            raise WorkflowError("total_requests must be positive")
        producer_error: List[BaseException] = []
        training_done = threading.Event()

        def produce():
            try:
                self.model.fit(
                    x_train,
                    y_train,
                    epochs=epochs,
                    batch_size=batch_size,
                    callbacks=[callback],
                    seed=seed,
                )
            except BaseException as exc:  # noqa: BLE001 - reported in result
                producer_error.append(exc)
            finally:
                training_done.set()

        producer = threading.Thread(target=produce, name="live-producer")
        producer.start()

        served: List[ServedRequest] = []
        for request in requests.stream(total_requests):
            self.server.poll_updates()
            _pred, record = self.server.handle(request.x, request.y)
            served.append(record)
        producer.join()
        # Serve stragglers with the final model so late checkpoints are
        # observable even when the request stream finished first.
        self.viper.drain()
        self.server.poll_updates()

        return LiveRunResult(
            served=served,
            cumulative_loss=self.server.cumulative_loss,
            versions_served=[r.model_version for r in served],
            checkpoints_taken=list(callback.checkpoints_taken),
            producer_stall_seconds=callback.stall_seconds,
            updates_applied=self.consumer.updates_applied,
            producer_error=producer_error[0] if producer_error else None,
        )
