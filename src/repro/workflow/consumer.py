"""Consumer-side actor: model loads, swaps, and inference accounting.

The consumer's update thread is modeled separately from its serving
thread, as in the implementation the paper describes ("Viper segregates
the inference serving thread from the model updating thread"):

- Serving runs continuously at one request per ``t_infer`` seconds and
  always uses the current double-buffer primary.
- On a notification, the update thread loads the checkpoint (``t_c``
  seconds) and then swaps atomically.  If notifications arrive while a
  load is in flight, only the *newest* is loaded next (latest-wins),
  matching Viper's only-buffer-the-latest channels.

Inference losses are accounted analytically from the version-switch
timeline (requests are at fixed, known times), which is exact and keeps
the event count independent of the number of inferences.

An optional **staleness watchdog** (``staleness_deadline`` +
``poll_fn``) guards the push pipeline: if no notification or load
activity happens for the deadline, the consumer performs one fallback
poll (``poll_fn`` returns the newest announcement, or None) instead of
trusting a silent producer forever.  The watchdog is one-shot per
arming — activity re-arms it, an idle tail does not — so the event loop
still terminates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

import math

from repro.errors import WorkflowError
from repro.obs.freshness import NULL_FRESHNESS
from repro.obs.lineage import NULL_LINEAGE
from repro.obs.tracer import NULL_TRACER
from repro.substrates.simclock import EventLoop
from repro.workflow.producer import CheckpointAnnouncement
from repro.workflow.trace import Trace

__all__ = ["VersionSwitch", "ConsumerSim", "cil_from_switches"]


@dataclass(frozen=True)
class VersionSwitch:
    """The serving model changed at ``time`` to ``version`` with ``loss``."""

    time: float
    version: int
    iteration: int
    loss: float


def cil_from_switches(
    switches: List[VersionSwitch],
    t_infer: float,
    total_inferences: int,
    start_time: float = 0.0,
) -> Tuple[float, np.ndarray]:
    """Cumulative inference loss over fixed-rate requests.

    Request ``k`` fires at ``start_time + k * t_infer`` and is served by
    the newest switch at or before that instant.  Returns ``(CIL,
    per-switch inference counts)``.  Requests before the first switch are
    an error — the consumer always starts with the warm-up model switch
    at the simulation origin.
    """
    if t_infer <= 0:
        raise WorkflowError("t_infer must be positive")
    if total_inferences < 0:
        raise WorkflowError("total_inferences must be non-negative")
    if not switches:
        raise WorkflowError("no version switches: consumer never had a model")
    times = np.asarray([s.time for s in switches])
    if np.any(np.diff(times) < 0):
        raise WorkflowError("switches must be time-ordered")
    losses = np.asarray([s.loss for s in switches])
    request_times = start_time + t_infer * np.arange(total_inferences)
    if total_inferences and request_times[0] < times[0]:
        raise WorkflowError(
            f"first request at {request_times[0]} precedes first model at "
            f"{times[0]}"
        )
    idx = np.searchsorted(times, request_times, side="right") - 1
    counts = np.bincount(idx, minlength=len(switches))
    cil = float(np.dot(counts, losses))
    return cil, counts


class ConsumerSim:
    """Discrete-event inference consumer."""

    def __init__(
        self,
        loop: EventLoop,
        trace: Trace,
        *,
        t_load: float,
        initial_loss: float,
        initial_iteration: int = 0,
        tracer=None,
        ckpt_spans=None,
        staleness_deadline: Optional[float] = None,
        poll_fn: Optional[Callable[[], Optional[CheckpointAnnouncement]]] = None,
        name: str = "consumer-0",
        model_name: str = "model",
        lineage=None,
        freshness=None,
        t_infer: Optional[float] = None,
    ):
        if t_load < 0:
            raise WorkflowError("t_load must be non-negative")
        if staleness_deadline is not None and staleness_deadline <= 0:
            raise WorkflowError("staleness_deadline must be positive")
        if t_infer is not None and t_infer <= 0:
            raise WorkflowError("t_infer must be positive")
        self.loop = loop
        self.trace = trace
        self.t_load = t_load
        self.staleness_deadline = staleness_deadline
        self.poll_fn = poll_fn
        self.stale_fallbacks = 0
        self._watchdog_gen = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.name = name
        self.model_name = model_name
        self.lineage = lineage if lineage is not None else NULL_LINEAGE
        self.freshness = freshness if freshness is not None else NULL_FRESHNESS
        #: Fixed request cadence used to place the version's first serve
        #: on the request grid; None leaves first_serve at the swap time.
        self.t_infer = t_infer
        #: version -> open "checkpoint" span (shared with the producer);
        #: the consumer closes a version's span when it swaps in.
        self.ckpt_spans = ckpt_spans if ckpt_spans is not None else {}
        # The warm-up model is live from the simulation origin.
        self.switches: List[VersionSwitch] = [
            VersionSwitch(loop.clock.now(), 0, initial_iteration, initial_loss)
        ]
        self._loading: Optional[CheckpointAnnouncement] = None
        self._pending: Optional[CheckpointAnnouncement] = None
        self.loads_started = 0
        self.loads_superseded = 0
        if staleness_deadline is not None:
            self._arm_watchdog()

    # ------------------------------------------------------------------
    @property
    def current_version(self) -> int:
        return self.switches[-1].version

    def _arm_watchdog(self) -> None:
        """(Re-)schedule the staleness fallback; later activity supersedes."""
        if self.staleness_deadline is None:
            return
        self._watchdog_gen += 1
        gen = self._watchdog_gen

        def _fire():
            if gen != self._watchdog_gen:
                return  # activity since arming; that arming re-scheduled us
            self.stale_fallbacks += 1
            self.trace.add(
                self.loop.clock.now(), "stale_fallback", "consumer",
                version=self.current_version,
            )
            self.freshness.record_stale_fallback(self.name, self.model_name)
            ann = self.poll_fn() if self.poll_fn is not None else None
            if ann is not None and ann.version > self.current_version:
                # The poll found a model the pushes never announced; the
                # resulting load activity re-arms the watchdog.
                self.on_notify(ann)
            # Nothing new: stay quiet so the event loop can drain.

        self.loop.schedule_after(self.staleness_deadline, _fire, "stale_watchdog")

    def on_notify(self, ann: CheckpointAnnouncement) -> None:
        """Notification handler wired into the producer."""
        self._arm_watchdog()
        now = self.loop.clock.now()
        if ann.version <= self.current_version:
            self.trace.add(now, "superseded", "consumer", version=ann.version)
            self.loads_superseded += 1
            return
        if self._loading is not None:
            # Update thread busy: remember only the newest.
            if self._pending is not None and self._pending.version < ann.version:
                self.trace.add(
                    now, "superseded", "consumer", version=self._pending.version
                )
                self.loads_superseded += 1
                self._pending = ann
            elif self._pending is None:
                self._pending = ann
            else:
                self.trace.add(now, "superseded", "consumer", version=ann.version)
                self.loads_superseded += 1
            return
        self._begin_load(ann)

    def _begin_load(self, ann: CheckpointAnnouncement) -> None:
        now = self.loop.clock.now()
        self._loading = ann
        self.loads_started += 1
        self.trace.add(now, "load_begin", "consumer", version=ann.version)

        def _load_done():
            t = self.loop.clock.now()
            self.trace.add(t, "load_done", "consumer", version=ann.version)
            # Double-buffer swap: atomic, negligible cost.
            self.switches.append(VersionSwitch(t, ann.version, ann.iteration, ann.loss))
            self.trace.add(t, "swap", "consumer", version=ann.version)
            if self.tracer.enabled:
                self.tracer.record(
                    "load", start_sim=now, end_sim=t, track="consumer",
                    parent=self.ckpt_spans.get(ann.version), version=ann.version,
                )
                span = self.ckpt_spans.pop(ann.version, None)
                if span is not None:
                    self.tracer.close(span, end_sim=t, outcome="swapped")
            self.lineage.record_header(
                ann.trace_ctx, "load", sim_time=t, actor=self.name,
                sim_seconds=t - now,
            )
            self.lineage.record_header(
                ann.trace_ctx, "swap", sim_time=t, actor=self.name,
            )
            self.freshness.record_swap(
                self.name, self.model_name, ann.version, t
            )
            if self.lineage.enabled and ann.trace_ctx:
                # First request served by this version: the next tick of
                # the fixed-rate request grid at or after the swap.
                first = (
                    math.ceil(t / self.t_infer) * self.t_infer
                    if self.t_infer is not None
                    else t
                )
                self.lineage.record_once(
                    ann.trace_ctx, "first_serve", sim_time=first,
                    actor=self.name,
                )
            self._loading = None
            self._arm_watchdog()
            if self._pending is not None:
                nxt, self._pending = self._pending, None
                if nxt.version > self.current_version:
                    self._begin_load(nxt)

        self.loop.schedule_after(self.t_load, _load_done, "load")

    # ------------------------------------------------------------------
    def cumulative_inference_loss(
        self, t_infer: float, total_inferences: int
    ) -> Tuple[float, np.ndarray]:
        """CIL over the run's switch timeline (call after loop.run())."""
        return cil_from_switches(self.switches, t_infer, total_inferences)
