"""Structured traces of coupled-run events.

Every actor appends :class:`TraceEvent` records; tests assert causality
invariants on the trace (a version can't be served before it was loaded,
loads can't start before their notification, ...), and the reporting
layer renders human-readable timelines from it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Tuple

__all__ = ["TraceEvent", "Trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event in a coupled run."""

    time: float
    kind: str          # "iteration" | "ckpt_begin" | "ckpt_stall_end" |
                       # "delivered" | "notified" | "load_begin" |
                       # "load_done" | "swap" | "superseded" | "train_end"
    actor: str         # "producer" | "consumer" | "engine"
    data: Dict[str, Any] = field(default_factory=dict)


class Trace:
    """Append-only event log ordered by append time.

    Thread-safe: in live mode the producer thread, the engine worker,
    and the consumer's update thread all append concurrently.  Readers
    get immutable tuple snapshots.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._events: List[TraceEvent] = []

    def add(self, time: float, kind: str, actor: str, **data: Any) -> None:
        event = TraceEvent(time, kind, actor, dict(data))
        with self._lock:
            self._events.append(event)

    def events(self, kind: str = "") -> Tuple[TraceEvent, ...]:
        """All events, or only those of one kind."""
        with self._lock:
            snapshot = tuple(self._events)
        if not kind:
            return snapshot
        return tuple(e for e in snapshot if e.kind == kind)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events())

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def last(self, kind: str) -> TraceEvent:
        for event in reversed(self.events()):
            if event.kind == kind:
                return event
        raise KeyError(f"no event of kind {kind!r} in trace")
