"""Structured traces of coupled-run events.

Every actor appends :class:`TraceEvent` records; tests assert causality
invariants on the trace (a version can't be served before it was loaded,
loads can't start before their notification, ...), and the reporting
layer renders human-readable timelines from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Tuple

__all__ = ["TraceEvent", "Trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event in a coupled run."""

    time: float
    kind: str          # "iteration" | "ckpt_begin" | "ckpt_stall_end" |
                       # "delivered" | "notified" | "load_begin" |
                       # "load_done" | "swap" | "superseded" | "train_end"
    actor: str         # "producer" | "consumer" | "engine"
    data: Dict[str, Any] = field(default_factory=dict)


class Trace:
    """Append-only event log ordered by append time."""

    def __init__(self):
        self._events: List[TraceEvent] = []

    def add(self, time: float, kind: str, actor: str, **data: Any) -> None:
        self._events.append(TraceEvent(time, kind, actor, dict(data)))

    def events(self, kind: str = "") -> Tuple[TraceEvent, ...]:
        """All events, or only those of one kind."""
        if not kind:
            return tuple(self._events)
        return tuple(e for e in self._events if e.kind == kind)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def last(self, kind: str) -> TraceEvent:
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        raise KeyError(f"no event of kind {kind!r} in trace")
