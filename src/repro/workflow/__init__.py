"""Coupled producer/consumer workflow simulation.

The paper's end-to-end experiments (Fig. 9, Fig. 10, Table 1) couple a
training producer with an inference-serving consumer over a model-update
channel.  This package runs that coupling as a discrete-event simulation
on the paper-scale timeline:

- :mod:`producer` — training iterations, checkpoint stalls, and the async
  engine's delivery pipeline;
- :mod:`consumer` — model loads (latest-wins supersede), double-buffer
  swaps, and fixed-rate inference accounting;
- :mod:`runner` — configuration + orchestration, producing a
  :class:`~repro.workflow.runner.WorkflowResult` with the CIL, training
  overhead, and the full version-switch timeline;
- :mod:`trace` — structured event traces for tests and debugging;
- :mod:`multi` — the paper's future-work extension: multiple producers /
  consumers sharing the update fabric.
"""

from repro.workflow.runner import CoupledRunConfig, WorkflowResult, run_coupled
from repro.workflow.trace import Trace, TraceEvent

__all__ = [
    "CoupledRunConfig",
    "WorkflowResult",
    "run_coupled",
    "Trace",
    "TraceEvent",
]
