"""High-level experiment drivers used by the benchmark harness.

These functions glue the pieces into the paper's experiments:

- :func:`measured_loss_curve` — actually train the app's model on its
  synthetic dataset and return the per-iteration loss curve, stretched to
  the paper-scale iteration count when the dataset was scaled down.
- :func:`make_cil_params` — derive Algorithm 1's timing constants
  (``t_train``, ``t_p``, ``t_c``, ``t_infer``) from an app profile, a
  hardware profile, and a transfer strategy.
- :func:`schedules_for_app` — compute the three schedules §5.4 compares:
  epoch baseline, fixed-interval (Alg. 2), greedy adaptive (Alg. 3), with
  the TLP fitted on the warm-up portion of the measured curve only.
- :func:`run_schedule_comparison` — Fig. 10 / Table 1: coupled runs of
  all three schedules over the same measured curve.
- :func:`run_strategy_comparison` — Fig. 9: coupled runs at the epoch
  interval across GPU / Host / PFS strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import WorkflowError
from repro.substrates.profiles import POLARIS, HardwareProfile
from repro.dnn.serialization import Serializer, ViperSerializer
from repro.apps.registry import AppProfile
from repro.core.predictor.adapter import CheckpointFrequencyAdapter
from repro.core.predictor.cilp import CILParams
from repro.core.predictor.ipp import InferencePerformancePredictor
from repro.core.predictor.schedules import Schedule, epoch_schedule
from repro.core.transfer.strategies import (
    CaptureMode,
    TransferStrategy,
    compute_timings,
)
from repro.workflow.runner import CoupledRunConfig, WorkflowResult, run_coupled

__all__ = [
    "measured_loss_curve",
    "stretch_curve",
    "make_cil_params",
    "schedules_for_app",
    "run_schedule_comparison",
    "run_strategy_comparison",
]


def stretch_curve(losses: Sequence[float], total_iters: int) -> np.ndarray:
    """Resample a measured loss curve onto ``total_iters`` iterations.

    Used when the synthetic dataset was scaled down: the *shape* of the
    measured convergence is preserved while the iteration axis matches
    the paper-scale geometry.
    """
    y = np.asarray(list(losses), dtype=np.float64)
    if y.size < 2:
        raise WorkflowError("need >= 2 measured losses to stretch")
    if total_iters < 2:
        raise WorkflowError("total_iters must be >= 2")
    src = np.linspace(1.0, float(total_iters), y.size)
    dst = np.arange(1, total_iters + 1, dtype=np.float64)
    return np.interp(dst, src, y)


def measured_loss_curve(
    app: AppProfile,
    *,
    scale: float = 1.0,
    seed: int = 0,
    epochs: Optional[int] = None,
    smooth: int = 31,
) -> np.ndarray:
    """Train the app's model for its baseline epoch budget; return the
    per-iteration training-loss curve at paper-scale iteration indexing.

    ``smooth`` applies a centered running mean to the raw mini-batch
    losses: the raw per-batch loss is a noisy estimate of model quality,
    and the paper's assumption 2 equates a checkpoint's *training quality*
    (not one batch's luck) with its inference quality.
    """
    from repro.core.predictor.tlp import smooth_losses

    model = app.build_model()
    x, y, _xt, _yt = app.dataset(scale=scale, seed=seed)
    n_epochs = app.epochs if epochs is None else epochs
    history = model.fit(
        x, y, epochs=n_epochs, batch_size=app.batch_size, seed=seed
    )
    curve = np.asarray(history.iteration_loss, dtype=np.float64)
    if smooth > 1:
        curve = smooth_losses(curve, smooth)
    total = app.iters_per_epoch * n_epochs
    if curve.size == total:
        return curve
    return stretch_curve(curve, total)


def make_cil_params(
    app: AppProfile,
    strategy: TransferStrategy,
    mode: CaptureMode = CaptureMode.ASYNC,
    serializer: Optional[Serializer] = None,
    profile: HardwareProfile = POLARIS,
) -> CILParams:
    """Algorithm 1's constants for this app on this transfer path."""
    ser = serializer if serializer is not None else ViperSerializer()
    timings = compute_timings(
        profile, ser, strategy, mode, app.checkpoint_bytes, app.checkpoint_tensors
    )
    return CILParams(
        t_train=app.timing.t_train,
        t_p=timings.stall.total,
        t_c=timings.load.total,
        t_infer=app.timing.t_infer,
    )


def schedules_for_app(
    app: AppProfile,
    loss_curve: Sequence[float],
    *,
    strategy: TransferStrategy = TransferStrategy.GPU_TO_GPU,
    mode: CaptureMode = CaptureMode.ASYNC,
    serializer: Optional[Serializer] = None,
    profile: HardwareProfile = POLARIS,
    max_interval: Optional[int] = None,
    smoothing_window: int = 25,
) -> Dict[str, Schedule]:
    """The three §5.4 schedules, with the IPP fitted on warm-up data only."""
    warmup = int(app.warmup_iters)
    curve = np.asarray(list(loss_curve), dtype=np.float64)
    if curve.size < warmup:
        raise WorkflowError(
            f"loss curve ({curve.size}) shorter than warm-up ({warmup})"
        )
    params = make_cil_params(app, strategy, mode, serializer, profile)
    ipp = InferencePerformancePredictor(params, smoothing_window=smoothing_window)
    ipp.observe_warmup(curve[:warmup], start_iteration=1, horizon=app.total_iters)

    end_iter = app.total_iters
    total_infers = app.total_inferences
    return {
        "baseline": epoch_schedule(warmup, end_iter, app.iters_per_epoch),
        "fixed": ipp.schedule(
            "fixed",
            end_iter=end_iter,
            total_infers=total_infers,
            max_interval=max_interval,
        ),
        "adaptive": ipp.schedule(
            "greedy", end_iter=end_iter, total_infers=total_infers
        ),
    }


def make_adapter(
    app: AppProfile,
    *,
    strategy: TransferStrategy = TransferStrategy.GPU_TO_GPU,
    mode: CaptureMode = CaptureMode.ASYNC,
    serializer: Optional[Serializer] = None,
    profile: HardwareProfile = POLARIS,
) -> CheckpointFrequencyAdapter:
    """An online Checkpoint Frequency Adapter configured for this app."""
    params = make_cil_params(app, strategy, mode, serializer, profile)
    return CheckpointFrequencyAdapter(
        params,
        warmup_iters=app.warmup_iters,
        end_iter=app.total_iters,
        total_infers=app.total_inferences,
        refit_every=app.iters_per_epoch,
    )


def run_schedule_comparison(
    app: AppProfile,
    loss_curve: Sequence[float],
    *,
    strategy: TransferStrategy = TransferStrategy.GPU_TO_GPU,
    mode: CaptureMode = CaptureMode.ASYNC,
    serializer: Optional[Serializer] = None,
    profile: HardwareProfile = POLARIS,
    max_interval: Optional[int] = None,
    adaptive_online: bool = True,
) -> Dict[str, WorkflowResult]:
    """Fig. 10 / Table 1: coupled runs of baseline vs fixed vs adaptive.

    ``adaptive_online=True`` (default) runs the adaptive schedule through
    the Checkpoint Frequency Adapter (threshold re-tuned from observed
    losses each epoch — the paper's Fig. 3 adapter component);
    ``False`` uses the purely predictive Algorithm 3 schedule computed
    once from the warm-up fit.
    """
    schedules = schedules_for_app(
        app,
        loss_curve,
        strategy=strategy,
        mode=mode,
        serializer=serializer,
        profile=profile,
        max_interval=max_interval,
    )
    results: Dict[str, WorkflowResult] = {}
    for kind, schedule in schedules.items():
        adapter = None
        if kind == "adaptive" and adaptive_online:
            adapter = make_adapter(
                app,
                strategy=strategy,
                mode=mode,
                serializer=serializer,
                profile=profile,
            )
            schedule = Schedule(
                kind="adaptive",
                iterations=(),
                start_iter=schedule.start_iter,
                end_iter=schedule.end_iter,
            )
        config = CoupledRunConfig(
            app=app,
            schedule=schedule,
            loss_curve=loss_curve,
            strategy=strategy,
            mode=mode,
            profile=profile,
            adapter=adapter,
        )
        if serializer is not None:
            config.serializer = serializer
        results[kind] = run_coupled(config)
    return results


def run_strategy_comparison(
    app: AppProfile,
    loss_curve: Sequence[float],
    *,
    profile: HardwareProfile = POLARIS,
    serializer: Optional[Serializer] = None,
    modes: Optional[Dict[TransferStrategy, CaptureMode]] = None,
) -> Dict[str, WorkflowResult]:
    """Fig. 9: epoch-boundary updates across GPU / Host / PFS strategies.

    As in the paper's setup, the memory strategies capture asynchronously
    while the PFS path writes synchronously (the classic h5py-callback
    behaviour the figure contrasts against).
    """
    chosen_modes = {
        TransferStrategy.GPU_TO_GPU: CaptureMode.ASYNC,
        TransferStrategy.HOST_TO_HOST: CaptureMode.ASYNC,
        TransferStrategy.PFS: CaptureMode.SYNC,
    }
    if modes:
        chosen_modes.update(modes)
    schedule = epoch_schedule(
        app.warmup_iters, app.total_iters, app.iters_per_epoch
    )
    results: Dict[str, WorkflowResult] = {}
    for strategy, mode in chosen_modes.items():
        config = CoupledRunConfig(
            app=app,
            schedule=schedule,
            loss_curve=loss_curve,
            strategy=strategy,
            mode=mode,
            profile=profile,
        )
        if serializer is not None:
            config.serializer = serializer
        results[strategy.value] = run_coupled(config)
    return results
