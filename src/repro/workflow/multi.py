"""Multi-producer / multi-consumer coupling (paper §6, future work).

The paper's conclusion sketches an extension "in which we allow the DNN
model to be sharded in different ways during the training and inferences
(e.g. by mixing tensor, pipeline, and data parallelism)".  This module
implements the two simplest members of that family on the DES substrate:

- **1 producer -> K consumers**: every checkpoint fans out to K serving
  replicas; each replica loads independently (its own ``t_c``) and serves
  its own fixed-rate stream.  Total CIL aggregates across replicas.
- **M sharded producers -> 1 consumer**: the model is sharded M ways
  (data-parallel training with tensor-sharded checkpoints); each shard is
  1/M of the bytes, so per-checkpoint stall and load shrink accordingly,
  but a model update is complete only when *all* shards have arrived
  (the max over shard delivery times).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence


from repro.errors import WorkflowError
from repro.substrates.profiles import POLARIS, HardwareProfile
from repro.substrates.simclock import EventLoop
from repro.dnn.serialization import Serializer, ViperSerializer
from repro.apps.registry import AppProfile
from repro.core.notification import PUSH_LATENCY
from repro.core.predictor.schedules import Schedule
from repro.core.transfer.strategies import (
    CaptureMode,
    TransferStrategy,
    compute_timings,
)
from repro.workflow.consumer import ConsumerSim
from repro.workflow.producer import ProducerSim
from repro.workflow.runner import LossCurve, loss_curve_lookup
from repro.workflow.trace import Trace

__all__ = ["MultiResult", "run_fanout", "run_sharded"]


@dataclass(frozen=True)
class MultiResult:
    """Aggregate outcome of a multi-party coupled run."""

    total_cil: float
    per_consumer_cil: Dict[str, float]
    checkpoints: int
    training_overhead: float
    training_end_time: float


def run_fanout(
    app: AppProfile,
    schedule: Schedule,
    loss_curve: LossCurve,
    *,
    n_consumers: int = 2,
    strategy: TransferStrategy = TransferStrategy.GPU_TO_GPU,
    mode: CaptureMode = CaptureMode.ASYNC,
    serializer: Optional[Serializer] = None,
    profile: HardwareProfile = POLARIS,
    notify_latency: float = PUSH_LATENCY,
    consumer_rates: Optional[Sequence[float]] = None,
    lineage=None,
    freshness=None,
) -> MultiResult:
    """One producer feeding ``n_consumers`` independent serving replicas.

    ``consumer_rates`` optionally sets a per-replica ``t_infer`` (a
    heterogeneous serving fleet — e.g. edge devices of different speed);
    defaults to the app's rate for every replica.  Passing a
    :class:`~repro.obs.lineage.LifecycleLedger` and/or
    :class:`~repro.obs.freshness.FreshnessTracker` records every
    version's capture -> first-serve life and the fleet's freshness.
    """
    if n_consumers < 1:
        raise WorkflowError("need at least one consumer")
    if consumer_rates is not None and len(consumer_rates) != n_consumers:
        raise WorkflowError("consumer_rates length must match n_consumers")
    ser = serializer if serializer is not None else ViperSerializer()
    loss_at = loss_curve_lookup(loss_curve)
    timings = compute_timings(
        profile, ser, strategy, mode, app.checkpoint_bytes, app.checkpoint_tensors
    )
    loop = EventLoop()
    trace = Trace()
    consumers = [
        ConsumerSim(
            loop,
            trace,
            t_load=timings.load.total,
            initial_loss=loss_at(schedule.start_iter),
            initial_iteration=schedule.start_iter,
            name=f"consumer-{i}",
            model_name=app.name,
            lineage=lineage,
            freshness=freshness,
            t_infer=(
                consumer_rates[i] if consumer_rates is not None
                else app.timing.t_infer
            ),
        )
        for i in range(n_consumers)
    ]

    def fanout(ann):
        for consumer in consumers:
            consumer.on_notify(ann)

    producer = ProducerSim(
        loop,
        trace,
        schedule=schedule,
        timings=timings,
        t_train=app.timing.t_train,
        total_iters=schedule.end_iter,
        start_iter=schedule.start_iter,
        loss_at=loss_at,
        notify_latency=notify_latency,
        on_notify=fanout,
        model_name=app.name,
        lineage=lineage,
        freshness=freshness,
    )
    producer.start()
    loop.run()

    per_consumer: Dict[str, float] = {}
    total = 0.0
    for i, consumer in enumerate(consumers):
        rate = (
            consumer_rates[i] if consumer_rates is not None else app.timing.t_infer
        )
        cil, _ = consumer.cumulative_inference_loss(rate, app.total_inferences)
        per_consumer[f"consumer-{i}"] = cil
        total += cil
    return MultiResult(
        total_cil=total,
        per_consumer_cil=per_consumer,
        checkpoints=producer.checkpoints_completed,
        training_overhead=producer.training_overhead,
        training_end_time=producer.training_end_time or 0.0,
    )


def run_sharded(
    app: AppProfile,
    schedule: Schedule,
    loss_curve: LossCurve,
    *,
    n_shards: int = 2,
    strategy: TransferStrategy = TransferStrategy.GPU_TO_GPU,
    mode: CaptureMode = CaptureMode.ASYNC,
    serializer: Optional[Serializer] = None,
    profile: HardwareProfile = POLARIS,
    notify_latency: float = PUSH_LATENCY,
    lineage=None,
    freshness=None,
) -> MultiResult:
    """``n_shards`` data-parallel producers, tensor-sharded checkpoints.

    Each shard carries ``1/n_shards`` of the bytes and tensors; shard
    deliveries run in parallel (each producer has its own engine), and
    the consumer's update is live once the slowest shard has loaded.
    Modeled by scaling the timing law: stall is per-shard (producers
    stall simultaneously), delivery/load take the per-shard time (they
    run concurrently across shards over independent links).
    """
    if n_shards < 1:
        raise WorkflowError("need at least one shard")
    ser = serializer if serializer is not None else ViperSerializer()
    loss_at = loss_curve_lookup(loss_curve)
    shard_bytes = -(-app.checkpoint_bytes // n_shards)
    shard_tensors = max(1, app.checkpoint_tensors // n_shards)
    timings = compute_timings(profile, ser, strategy, mode, shard_bytes, shard_tensors)

    loop = EventLoop()
    trace = Trace()
    consumer = ConsumerSim(
        loop,
        trace,
        t_load=timings.load.total,
        initial_loss=loss_at(schedule.start_iter),
        initial_iteration=schedule.start_iter,
        name="consumer-0",
        model_name=app.name,
        lineage=lineage,
        freshness=freshness,
        t_infer=app.timing.t_infer,
    )
    producer = ProducerSim(
        loop,
        trace,
        schedule=schedule,
        timings=timings,
        t_train=app.timing.t_train,
        total_iters=schedule.end_iter,
        start_iter=schedule.start_iter,
        loss_at=loss_at,
        notify_latency=notify_latency,
        on_notify=consumer.on_notify,
        model_name=app.name,
        lineage=lineage,
        freshness=freshness,
    )
    producer.start()
    loop.run()

    cil, _ = consumer.cumulative_inference_loss(
        app.timing.t_infer, app.total_inferences
    )
    return MultiResult(
        total_cil=cil,
        per_consumer_cil={"consumer-0": cil},
        checkpoints=producer.checkpoints_completed,
        training_overhead=producer.training_overhead,
        training_end_time=producer.training_end_time or 0.0,
    )
