"""Producer-side actor of the coupled simulation.

Simulates the training loop on the paper-scale timeline: each iteration
takes ``t_train`` seconds; at scheduled iterations the loop stalls for the
strategy's capture time, then (sync) the delivery completes within the
stall or (async) a delivery job is handed to the background engine.

The engine pipeline models the paper's "memory channels only buffer and
transfer the latest DNN model": if deliveries back up, queued-but-unsent
checkpoints are superseded by newer ones — only the newest pending
checkpoint is ever shipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import WorkflowError
from repro.obs.freshness import NULL_FRESHNESS
from repro.obs.lineage import NULL_LINEAGE, TraceContext
from repro.obs.tracer import NULL_TRACER
from repro.substrates.simclock import EventLoop
from repro.core.predictor.schedules import Schedule
from repro.core.transfer.strategies import CaptureMode, StrategyTimings
from repro.workflow.trace import Trace

__all__ = ["CheckpointAnnouncement", "ProducerSim"]


@dataclass(frozen=True)
class CheckpointAnnouncement:
    """What the consumer learns about one completed delivery."""

    version: int
    iteration: int
    loss: float
    delivered_at: float   # simulated time the blob is in consumer-side reach
    #: Lineage trace header minted at capture (empty when unarmed).
    trace_ctx: str = ""


class ProducerSim:
    """Discrete-event training producer."""

    def __init__(
        self,
        loop: EventLoop,
        trace: Trace,
        *,
        schedule: Schedule,
        timings: StrategyTimings,
        t_train: float,
        total_iters: int,
        start_iter: int,
        loss_at: Callable[[int], float],
        notify_latency: float,
        on_notify: Callable[[CheckpointAnnouncement], None],
        adapter=None,
        tracer=None,
        ckpt_spans=None,
        model_name: str = "model",
        lineage=None,
        freshness=None,
    ):
        if total_iters <= start_iter:
            raise WorkflowError(
                f"total_iters ({total_iters}) must exceed start_iter ({start_iter})"
            )
        self.loop = loop
        self.trace = trace
        self.schedule = schedule
        self.timings = timings
        self.t_train = t_train
        self.total_iters = total_iters
        self.start_iter = start_iter
        self.loss_at = loss_at
        self.notify_latency = notify_latency
        self.on_notify = on_notify
        self.adapter = adapter
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.model_name = model_name
        self.lineage = lineage if lineage is not None else NULL_LINEAGE
        self.freshness = freshness if freshness is not None else NULL_FRESHNESS
        #: version -> open "checkpoint" span; shared with the consumer,
        #: which closes a span when that version swaps in.
        self.ckpt_spans = ckpt_spans if ckpt_spans is not None else {}
        #: version -> minted lineage context (producer side only; the
        #: announcement carries the wire header downstream).
        self._ctxs = {}

        self._schedule_set = frozenset(schedule.iterations)
        self._iteration = start_iter
        self._version = 0
        self._engine_free_at = 0.0
        self._pending: Optional[CheckpointAnnouncement] = None

        self.checkpoints_completed = 0
        self.superseded = 0
        self.training_overhead = 0.0
        self.training_end_time: Optional[float] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first iteration at the current simulated time."""
        self.loop.schedule_after(self.t_train, self._iteration_done, "iteration")

    # ------------------------------------------------------------------
    def _iteration_done(self) -> None:
        self._iteration += 1
        now = self.loop.clock.now()
        self.trace.add(now, "iteration", "producer", iteration=self._iteration)

        if self.adapter is not None:
            take = self.adapter.observe(self._iteration, self.loss_at(self._iteration))
        else:
            take = self._iteration in self._schedule_set
        if take:
            self._begin_checkpoint()
        elif self._iteration < self.total_iters:
            self.loop.schedule_after(self.t_train, self._iteration_done, "iteration")
        else:
            self._finish_training()

    def _begin_checkpoint(self) -> None:
        now = self.loop.clock.now()
        iteration = self._iteration
        self._version += 1
        version = self._version
        loss = self.loss_at(iteration)
        stall = self.timings.stall.total
        self.training_overhead += stall
        self.trace.add(now, "ckpt_begin", "producer", version=version, iteration=iteration)
        if self.tracer.enabled:
            self.ckpt_spans[version] = self.tracer.open(
                "checkpoint", track="pipeline", start_sim=now,
                version=version, iteration=iteration,
            )
        if self.lineage.enabled:
            self._ctxs[version] = TraceContext.make(self.model_name, version)
        header = (
            self._ctxs[version].to_header() if version in self._ctxs else ""
        )

        def _stall_over():
            t = self.loop.clock.now()
            self.trace.add(t, "ckpt_stall_end", "producer", version=version)
            if self.tracer.enabled:
                self.tracer.record(
                    "capture", start_sim=now, end_sim=t, track="producer",
                    parent=self.ckpt_spans.get(version), version=version,
                )
            self.lineage.record_header(
                header, "capture", sim_time=t, actor="producer",
                iteration=iteration, stall=t - now,
            )
            ann = CheckpointAnnouncement(
                version, iteration, loss, delivered_at=t, trace_ctx=header
            )
            if self.timings.mode is CaptureMode.SYNC:
                # Delivery completed within the stall; notify immediately.
                self._deliver(ann, extra_delay=0.0)
            else:
                self._enqueue_async(ann)
            # Training resumes right after the stall.
            if self._iteration < self.total_iters:
                self.loop.schedule_after(
                    self.t_train, self._iteration_done, "iteration"
                )
            else:
                self._finish_training()

        self.loop.schedule_after(stall, _stall_over, "ckpt_stall")

    # ------------------------------------------------------------------
    # Async engine pipeline: one delivery in flight, latest-wins queue.
    # ------------------------------------------------------------------
    def _enqueue_async(self, ann: CheckpointAnnouncement) -> None:
        now = self.loop.clock.now()
        if now >= self._engine_free_at:
            self._start_delivery(ann)
        else:
            if self._pending is not None:
                self.trace.add(
                    now, "superseded", "engine", version=self._pending.version
                )
                self.superseded += 1
            self._pending = ann

    def _start_delivery(self, ann: CheckpointAnnouncement) -> None:
        deliver = self.timings.deliver.total
        start = self.loop.clock.now()
        self._engine_free_at = start + deliver

        def _delivered():
            t = self.loop.clock.now()
            self.trace.add(t, "delivered", "engine", version=ann.version)
            if self.tracer.enabled:
                self.tracer.record(
                    "transfer", start_sim=start, end_sim=t, track="engine",
                    parent=self.ckpt_spans.get(ann.version), version=ann.version,
                )
            self._deliver(
                CheckpointAnnouncement(
                    ann.version, ann.iteration, ann.loss, t,
                    trace_ctx=ann.trace_ctx,
                ),
                extra_delay=0.0,
            )
            if self._pending is not None:
                nxt, self._pending = self._pending, None
                self._start_delivery(nxt)

        self.loop.schedule_after(deliver, _delivered, "delivery")

    def _deliver(self, ann: CheckpointAnnouncement, extra_delay: float) -> None:
        """Publish the notification ``notify_latency`` after delivery."""
        self.checkpoints_completed += 1
        published_at = self.loop.clock.now()
        # The blob is in consumer-side reach (transfer) and the version is
        # visible (publish) at the delivery instant on the DES substrate.
        self.lineage.record_header(
            ann.trace_ctx, "transfer", sim_time=ann.delivered_at, actor="engine",
        )
        self.lineage.record_header(
            ann.trace_ctx, "publish", sim_time=published_at, actor="metadata",
        )
        self.freshness.record_publish(self.model_name, ann.version, published_at)

        def _notify():
            t = self.loop.clock.now()
            self.trace.add(t, "notified", "producer", version=ann.version)
            if self.tracer.enabled:
                self.tracer.record(
                    "notify", start_sim=published_at, end_sim=t, track="producer",
                    parent=self.ckpt_spans.get(ann.version), version=ann.version,
                )
            self.lineage.record_header(
                ann.trace_ctx, "notify", sim_time=t, actor="broker",
            )
            self.on_notify(ann)

        self.loop.schedule_after(
            self.notify_latency + extra_delay, _notify, "notify"
        )

    def _finish_training(self) -> None:
        now = self.loop.clock.now()
        self.training_end_time = now
        self.trace.add(now, "train_end", "producer", iteration=self._iteration)
