"""Coupled-run orchestration: configuration, execution, results.

:func:`run_coupled` wires a :class:`~repro.workflow.producer.ProducerSim`
and a :class:`~repro.workflow.consumer.ConsumerSim` onto one event loop
and runs the paper's end-to-end experiment:

1. training resumes after the warm-up (iteration ``schedule.start_iter``)
   while the consumer starts serving with the warm-up checkpoint;
2. checkpoints follow the given schedule and transfer strategy;
3. the consumer accumulates inference loss at one request per
   ``t_infer``, always serving with its newest swapped-in model;
4. the result reports CIL, checkpoint counts, and training overhead —
   the quantities behind Fig. 9, Fig. 10, and Table 1.

The loss of each checkpoint comes from a real measured (or predicted)
training-loss curve supplied by the caller, indexed by iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.errors import WorkflowError
from repro.obs.tracer import NULL_TRACER, SpanTracer
from repro.substrates.profiles import POLARIS, HardwareProfile
from repro.substrates.simclock import EventLoop
from repro.dnn.serialization import Serializer, ViperSerializer
from repro.apps.registry import AppProfile
from repro.core.notification import PUSH_LATENCY
from repro.core.predictor.schedules import Schedule
from repro.core.transfer.strategies import (
    CaptureMode,
    TransferStrategy,
    compute_timings,
)
from repro.workflow.consumer import ConsumerSim, VersionSwitch
from repro.workflow.producer import ProducerSim
from repro.workflow.trace import Trace

__all__ = ["CoupledRunConfig", "WorkflowResult", "run_coupled", "loss_curve_lookup"]

LossCurve = Union[Sequence[float], Callable[[int], float]]


def loss_curve_lookup(curve: LossCurve) -> Callable[[int], float]:
    """Normalize a loss curve into an iteration->loss callable.

    A sequence is treated as 1-indexed per-iteration losses (``curve[i-1]``
    is the loss after iteration ``i``); iterations past the end clamp to
    the final value, iteration 0 clamps to the first.
    """
    if callable(curve):
        return curve
    arr = np.asarray(list(curve), dtype=np.float64)
    if arr.size == 0:
        raise WorkflowError("empty loss curve")

    def lookup(iteration: int) -> float:
        idx = min(max(int(iteration) - 1, 0), arr.size - 1)
        return float(arr[idx])

    return lookup


@dataclass
class CoupledRunConfig:
    """Everything one coupled run needs."""

    app: AppProfile
    schedule: Schedule
    loss_curve: LossCurve
    strategy: TransferStrategy = TransferStrategy.GPU_TO_GPU
    mode: CaptureMode = CaptureMode.ASYNC
    serializer: Serializer = field(default_factory=ViperSerializer)
    profile: HardwareProfile = POLARIS
    total_inferences: Optional[int] = None      # defaults to the app's M
    notify_latency: float = PUSH_LATENCY
    # Online scheduling: a CheckpointFrequencyAdapter deciding checkpoints
    # from observed losses at run time; the static schedule's iteration
    # list is ignored (its start/end bounds still frame the run).
    adapter: Optional[object] = None
    # Polling-discovery ablation: with a positive poll interval the
    # consumer only notices updates at poll boundaries (Triton-style),
    # adding up to one interval of discovery delay per update.
    poll_interval: float = 0.0
    # Observability: a SpanTracer to receive per-checkpoint span trees
    # (capture/transfer/notify/load under a parent "checkpoint" span);
    # the default NullTracer records nothing at no cost.
    tracer: Optional[SpanTracer] = None


@dataclass(frozen=True)
class WorkflowResult:
    """Outcome of one coupled run."""

    cil: float
    inferences: int
    checkpoints: int
    superseded: int
    training_overhead: float
    training_end_time: float
    switches: List[VersionSwitch]
    per_version_inferences: np.ndarray
    trace: Trace

    @property
    def mean_inference_loss(self) -> float:
        return self.cil / self.inferences if self.inferences else float("nan")


def run_coupled(config: CoupledRunConfig) -> WorkflowResult:
    """Execute one coupled producer/consumer run on the DES timeline."""
    app = config.app
    schedule = config.schedule
    loss_at = loss_curve_lookup(config.loss_curve)
    timings = compute_timings(
        config.profile,
        config.serializer,
        config.strategy,
        config.mode,
        app.checkpoint_bytes,
        app.checkpoint_tensors,
    )
    total_inferences = (
        app.total_inferences
        if config.total_inferences is None
        else config.total_inferences
    )
    if total_inferences <= 0:
        raise WorkflowError("total_inferences must be positive")

    loop = EventLoop()
    trace = Trace()
    tracer = config.tracer if config.tracer is not None else NULL_TRACER
    ckpt_spans: dict = {}

    consumer = ConsumerSim(
        loop,
        trace,
        t_load=timings.load.total,
        initial_loss=loss_at(schedule.start_iter),
        initial_iteration=schedule.start_iter,
        tracer=tracer,
        ckpt_spans=ckpt_spans,
    )

    if config.poll_interval > 0:

        def notify(ann):
            # Polling discovery: the consumer notices at the next poll tick.
            now = loop.clock.now()
            next_poll = (
                np.ceil(now / config.poll_interval) * config.poll_interval
            )
            loop.schedule_at(
                float(next_poll), lambda: consumer.on_notify(ann), "poll-discover"
            )

    else:
        notify = consumer.on_notify

    if config.adapter is not None:
        # Feed the warm-up losses so the adapter can fit and set its
        # threshold before live iterations begin.
        for i in range(1, schedule.start_iter + 1):
            config.adapter.observe(i, loss_at(i))

    producer = ProducerSim(
        loop,
        trace,
        schedule=schedule,
        timings=timings,
        t_train=app.timing.t_train,
        total_iters=schedule.end_iter,
        start_iter=schedule.start_iter,
        loss_at=loss_at,
        notify_latency=config.notify_latency,
        on_notify=notify,
        adapter=config.adapter,
        tracer=tracer,
        ckpt_spans=ckpt_spans,
    )
    producer.start()
    loop.run()

    # Checkpoints that never swapped in (superseded mid-pipeline, or the
    # run ended first) still need their spans closed for export.
    for version in sorted(ckpt_spans):
        tracer.close(
            ckpt_spans.pop(version), end_sim=loop.clock.now(), outcome="superseded"
        )

    if producer.training_end_time is None:
        raise WorkflowError("training never finished; schedule/iters mismatch")

    cil, counts = consumer.cumulative_inference_loss(
        app.timing.t_infer, total_inferences
    )
    return WorkflowResult(
        cil=cil,
        inferences=total_inferences,
        checkpoints=producer.checkpoints_completed,
        superseded=producer.superseded + consumer.loads_superseded,
        training_overhead=producer.training_overhead,
        training_end_time=producer.training_end_time,
        switches=list(consumer.switches),
        per_version_inferences=counts,
        trace=trace,
    )
