"""Model repositories: coarse files vs fine-grained tensor storage.

The paper contrasts Viper's direct memory channels against repository
staging, and cites DStore/EvoStore — repositories "optimized for partial
capture and retrieval of DNN model tensors" — as the fine-grained
alternative (§1, §2).  This package implements that alternative so the
trade-off is measurable:

- :mod:`repro.repository.tensor_store` — a versioned, per-tensor
  repository with structural sharing: a new version stores only the
  tensors that changed and back-references the rest, so partial updates
  cost bytes proportional to the change and partial reads fetch single
  tensors.
"""

from repro.repository.tensor_store import TensorRepository, TensorVersionInfo

__all__ = ["TensorRepository", "TensorVersionInfo"]
