"""A fine-grained, versioned tensor repository (the DStore stand-in).

Layout: each stored object is a single tensor blob keyed
``<model>/<tensor>/v<version>``.  A model *version manifest* maps every
tensor name to the version that last wrote it, giving structural
sharing across versions — publishing a version where only the decoder
changed stores only decoder tensors and points the rest at their
previous blobs.

Compared to Viper's whole-checkpoint objects this trades:

- **writes**: bytes proportional to the change (good), but one
  per-object overhead per *changed tensor* (bad on a PFS);
- **reads**: partial retrieval of single tensors (good), but a full
  model load pays one per-object overhead per tensor (bad on a PFS —
  exactly the "abundance of uncoordinated, small I/O accesses" of
  paper §3).

The ``ablation_repository`` benchmark quantifies both sides.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import MetadataError, ObjectNotFoundError, StorageError
from repro.substrates.cost import Cost
from repro.substrates.memory.storage import TierStore
from repro.dnn.serialization import ViperSerializer

__all__ = ["TensorVersionInfo", "TensorRepository"]


@dataclass(frozen=True)
class TensorVersionInfo:
    """Metadata of one published model version."""

    model_name: str
    version: int
    manifest: Dict[str, int]      # tensor name -> version holding its blob
    changed: Tuple[str, ...]      # tensors written by this version
    payload_bytes: int            # bytes written by this version


class TensorRepository:
    """Versioned per-tensor storage with structural sharing."""

    def __init__(self, store: TierStore, virtual_scale: float = 1.0):
        """``virtual_scale`` multiplies real tensor bytes into virtual
        bytes for the timing model (paper-scale checkpoints)."""
        if virtual_scale <= 0:
            raise StorageError("virtual_scale must be positive")
        self.store = store
        self.virtual_scale = virtual_scale
        self._serializer = ViperSerializer()
        self._lock = threading.RLock()
        self._versions: Dict[str, Dict[int, TensorVersionInfo]] = {}
        self._latest: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(
        self, model_name: str, state: Dict[str, np.ndarray]
    ) -> Tuple[TensorVersionInfo, Cost]:
        """Store a new version; only changed tensors are written.

        Returns the version info and the simulated write cost (one store
        write per changed tensor — per-object overheads included, which
        is the fine-grained trade-off).
        """
        if not state:
            raise StorageError("refusing to publish an empty state")
        with self._lock:
            prev_version = self._latest.get(model_name, 0)
            prev = (
                self._versions[model_name][prev_version]
                if prev_version
                else None
            )
            if prev is not None and set(prev.manifest) != set(state):
                raise StorageError(
                    f"tensor set changed for {model_name!r}; "
                    "republish under a new model name"
                )
            version = prev_version + 1
            manifest: Dict[str, int] = {}
            changed: List[str] = []
            cost = Cost.zero()
            payload = 0
            for name in sorted(state):
                tensor = state[name]
                if prev is not None:
                    old = self._read_tensor(model_name, name, prev.manifest[name])
                    if np.array_equal(old, tensor):
                        manifest[name] = prev.manifest[name]
                        continue
                blob = self._serializer.dumps({name: tensor})
                vbytes = int(tensor.nbytes * self.virtual_scale)
                cost = cost + self.store.put(
                    f"{model_name}/{name}/v{version}",
                    blob,
                    virtual_bytes=vbytes,
                    nobjects=1,
                    version=version,
                )
                manifest[name] = version
                changed.append(name)
                payload += vbytes
            info = TensorVersionInfo(
                model_name=model_name,
                version=version,
                manifest=manifest,
                changed=tuple(changed),
                payload_bytes=payload,
            )
            self._versions.setdefault(model_name, {})[version] = info
            self._latest[model_name] = version
            return info, cost

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def latest_version(self, model_name: str) -> int:
        with self._lock:
            if model_name not in self._latest:
                raise MetadataError(f"unknown model {model_name!r}")
            return self._latest[model_name]

    def info(self, model_name: str, version: Optional[int] = None) -> TensorVersionInfo:
        with self._lock:
            v = self.latest_version(model_name) if version is None else version
            try:
                return self._versions[model_name][v]
            except KeyError:
                raise MetadataError(
                    f"no version {v} of {model_name!r}"
                ) from None

    def get_tensor(
        self, model_name: str, tensor_name: str, version: Optional[int] = None
    ) -> Tuple[np.ndarray, Cost]:
        """Partial retrieval: one tensor of one version."""
        info = self.info(model_name, version)
        if tensor_name not in info.manifest:
            raise ObjectNotFoundError(
                f"{model_name!r} has no tensor {tensor_name!r}"
            )
        blob, cost = self.store.get(
            f"{model_name}/{tensor_name}/v{info.manifest[tensor_name]}"
        )
        return self._serializer.loads(blob)[tensor_name], cost

    def get_state(
        self, model_name: str, version: Optional[int] = None
    ) -> Tuple[Dict[str, np.ndarray], Cost]:
        """Full model load: one store read per tensor."""
        info = self.info(model_name, version)
        state: Dict[str, np.ndarray] = {}
        cost = Cost.zero()
        for name in info.manifest:
            tensor, c = self.get_tensor(model_name, name, info.version)
            state[name] = tensor
            cost = cost + c
        return state, cost

    def get_changed_since(
        self, model_name: str, base_version: int, version: Optional[int] = None
    ) -> Tuple[Dict[str, np.ndarray], Cost]:
        """Fetch only tensors that changed after ``base_version`` —
        the consumer-side partial update (EvoStore's retrieval pattern)."""
        info = self.info(model_name, version)
        base = self.info(model_name, base_version)
        state: Dict[str, np.ndarray] = {}
        cost = Cost.zero()
        for name, holder in info.manifest.items():
            if base.manifest.get(name) == holder:
                continue  # unchanged — consumer already has it
            tensor, c = self.get_tensor(model_name, name, info.version)
            state[name] = tensor
            cost = cost + c
        return state, cost

    # ------------------------------------------------------------------
    def _read_tensor(self, model_name: str, name: str, version: int) -> np.ndarray:
        blob, _cost = self.store.get(f"{model_name}/{name}/v{version}")
        return self._serializer.loads(blob)[name]

    def stored_objects(self, model_name: str) -> int:
        """Number of tensor blobs currently held for a model."""
        with self._lock:
            prefix = f"{model_name}/"
            return sum(1 for key in self.store.keys() if key.startswith(prefix))
