"""Exception hierarchy for the Viper reproduction.

Every error raised by the library derives from :class:`ViperError`, so a
caller embedding Viper in a larger workflow can catch one base class.  The
subclasses mirror the major subsystems: storage tiers, network transfer,
metadata coordination, scheduling, and configuration.
"""

from __future__ import annotations


class ViperError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ViperError):
    """A configuration object is inconsistent or out of range."""


class CapacityError(ViperError):
    """A storage tier does not have room for the requested object."""

    def __init__(self, message: str, *, requested: int = 0, available: int = 0):
        super().__init__(message)
        self.requested = int(requested)
        self.available = int(available)


class StorageError(ViperError):
    """A read or write against a storage tier failed."""


class ObjectNotFoundError(StorageError, KeyError):
    """The requested object key does not exist in the tier."""


class IntegrityError(StorageError):
    """A checkpoint's checksum did not match its payload (corruption)."""

    def __init__(self, message: str, *, expected: int = 0, actual: int = 0):
        super().__init__(message)
        self.expected = int(expected)
        self.actual = int(actual)


class TransferError(ViperError):
    """A point-to-point model transfer failed."""


class ChannelClosedError(TransferError):
    """The communication channel was closed while an operation was pending."""


class FaultInjected(TransferError):
    """An armed :class:`~repro.resilience.faults.FaultPlan` fired at a site.

    Deliberately a :class:`TransferError` subclass: injected link drops
    must look exactly like real transport failures to every caller that
    does not special-case them, so the recovery path under test is the
    production one.
    """

    def __init__(self, message: str, *, site: str = "", kind: str = ""):
        super().__init__(message)
        self.site = site
        self.kind = kind


class DeltaBaseError(TransferError):
    """A delta frame's negotiated base blob is missing or mismatched.

    Not a corruption: the frame itself is intact, the *reader* lacks the
    base version it was encoded against (a restarted consumer, an evicted
    cache).  Handlers catch this and degrade to the monolithic path.
    """


class RetriesExhausted(TransferError):
    """Every retry attempt at one site failed; the last error is chained.

    Never itself retried: the retry executor re-raises it immediately so
    nested retry scopes (engine around handler around store) cannot
    multiply attempt budgets.
    """

    def __init__(self, message: str, *, site: str = "", attempts: int = 0):
        super().__init__(message)
        self.site = site
        self.attempts = int(attempts)


class CircuitOpenError(ViperError):
    """A circuit breaker is open: the call was refused without attempting.

    Deliberately *not* a :class:`TransferError`: an open circuit means the
    site has already burned through enough retry budgets to trip, so the
    fast-fail must never be retried in place.  Callers either fail over
    to a different site (the handler's strategy chain) or surface the
    error to a degraded-mode policy.  ``retry_after`` hints when the
    breaker's next half-open probe becomes possible (simulated seconds).
    """

    def __init__(self, message: str, *, site: str = "", retry_after: float = 0.0):
        super().__init__(message)
        self.site = site
        self.retry_after = float(retry_after)


class MetadataError(ViperError):
    """The metadata store rejected an operation."""


class StaleVersionError(MetadataError):
    """A compare-and-swap style metadata update observed a newer version."""

    def __init__(self, message: str, *, expected: int = -1, actual: int = -1):
        super().__init__(message)
        self.expected = int(expected)
        self.actual = int(actual)


class RecoveryError(ViperError):
    """Crash recovery could not restore a consistent state."""


class JournalError(RecoveryError):
    """The metadata write-ahead journal is unreadable or inconsistent."""


class NotificationError(ViperError):
    """The publish-subscribe notification module failed."""


class ScheduleError(ViperError):
    """A checkpoint schedule could not be computed or is invalid."""


class FitError(ScheduleError):
    """A learning-curve function could not be fitted to warm-up losses."""


class ServingError(ViperError):
    """The inference serving substrate failed."""


class RolloutError(ServingError):
    """The canary rollout controller was misconfigured or misused."""


class OverloadError(ServingError):
    """Admission control shed a request before it was scored.

    Typed and retryable-by-contract: the server is healthy but out of
    capacity (or the request's deadline already passed), so the caller
    should back off for ``retry_after`` seconds and resubmit — the
    ``Retry-After`` HTTP idiom.  ``reason`` is one of ``"rate"``,
    ``"concurrency"``, or ``"deadline"``.
    """

    retryable = True

    def __init__(
        self, message: str, *, reason: str = "", retry_after: float = 0.0
    ):
        super().__init__(message)
        self.reason = reason
        self.retry_after = float(retry_after)


class WorkflowError(ViperError):
    """A coupled producer/consumer workflow run failed."""


class SimulationError(ViperError):
    """The discrete-event simulation reached an inconsistent state."""
