"""Fleet liveness: lease/heartbeat membership for the update fabric.

The paper's push path (§4.4) assumes every subscriber is alive; at fleet
scale some always aren't.  :class:`LeaseRegistry` gives the notification
broker a membership view it can act on:

- every subscriber holds a **lease** with a time-to-live;
- consumers renew it by **heartbeating** (the serving loop heartbeats on
  every update poll, so a healthy consumer renews for free);
- :meth:`LeaseRegistry.expire` — driven by the broker on publish, on the
  simulated or wall clock, whichever the deployment runs on — evicts
  members whose lease lapsed, so a dead consumer's queue is reclaimed
  instead of growing broker state forever.

Eviction is **idempotent** (expiring twice changes nothing) and never
fires before a full TTL of silence — both properties are hypothesis-
tested in ``tests/resilience/test_health_properties.py``.  An evicted
member that returns is not resurrected in place: it re-joins through
``resubscribe``, whose sequence reconciliation flags the one catch-up
metadata read that replaces everything it missed.

Every membership transition is recorded in :attr:`LeaseRegistry.events`
(grant / renew-after-expiry / expire / release, with timestamps) and can
be exported as JSONL for the CI overload-chaos artifacts.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.metrics import NULL_METRICS

__all__ = ["Lease", "LeaseRegistry"]


@dataclass
class Lease:
    """One member's liveness contract with the broker."""

    member: str
    ttl: float
    granted_at: float
    last_beat: float
    beats: int = 0
    expired: bool = False
    expired_at: Optional[float] = None
    #: Free-form cause recorded at eviction ("ttl", "slow_consumer", ...).
    expire_reason: str = ""
    meta: Dict[str, float] = field(default_factory=dict)

    def remaining(self, now: float) -> float:
        """Seconds of lease left at ``now`` (<= 0 once expirable)."""
        return self.last_beat + self.ttl - float(now)


class LeaseRegistry:
    """Thread-safe lease table keyed by member name.

    ``ttl`` is the default lease duration; :meth:`grant` may override it
    per member.  The registry is clock-agnostic: every mutation takes an
    explicit ``now``, so the same code runs on the simulated clock in
    tests and the wall clock in a live deployment.  A clock that jumps
    backwards can never expire a lease early — expiry compares against
    the *latest* heartbeat ever observed.
    """

    def __init__(
        self,
        ttl: float,
        *,
        metrics=None,
        stats=None,
        on_expire: Optional[Callable[[str, str], None]] = None,
    ):
        if ttl <= 0:
            raise ConfigurationError("lease ttl must be positive")
        self.ttl = float(ttl)
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.stats = stats
        self.on_expire = on_expire
        self._lock = threading.Lock()
        self._leases: Dict[str, Lease] = {}
        #: Membership transitions, oldest first (JSONL-exportable).
        self.events: List[Dict[str, object]] = []
        self.expirations = 0

    # ------------------------------------------------------------------
    def _event_locked(self, event: str, member: str, now: float, **extra) -> None:
        entry: Dict[str, object] = {"event": event, "member": member, "t": float(now)}
        entry.update(extra)
        self.events.append(entry)

    def grant(self, member: str, now: float, ttl: Optional[float] = None) -> Lease:
        """Grant (or re-grant) ``member`` a lease starting at ``now``.

        Re-granting an expired lease revives the member — the broker does
        this when an evicted consumer resubscribes.  Re-granting a live
        lease just renews it.
        """
        t = float(now)
        with self._lock:
            lease = self._leases.get(member)
            if lease is not None and not lease.expired:
                lease.last_beat = max(lease.last_beat, t)
                if ttl is not None:
                    lease.ttl = float(ttl)
                return lease
            revived = lease is not None
            lease = Lease(
                member=member,
                ttl=float(ttl) if ttl is not None else self.ttl,
                granted_at=t,
                last_beat=t,
            )
            self._leases[member] = lease
            self._event_locked(
                "regrant" if revived else "grant", member, t, ttl=lease.ttl
            )
        self.metrics.counter("viper_leases_granted_total").inc()
        return lease

    def heartbeat(self, member: str, now: float) -> bool:
        """Renew ``member``'s lease at ``now``; False when it has none.

        A heartbeat *always* renews a live lease (the property tests pin
        this): after ``heartbeat(m, t)`` no ``expire(now <= t + ttl)``
        can evict ``m``.  Heartbeats against an expired lease are
        rejected — the member must re-grant (resubscribe) so its queue
        state is rebuilt, not silently resurrected.
        """
        with self._lock:
            lease = self._leases.get(member)
            if lease is None or lease.expired:
                return False
            lease.last_beat = max(lease.last_beat, float(now))
            lease.beats += 1
        return True

    def expire(self, now: float) -> List[str]:
        """Evict every member silent for longer than its TTL at ``now``.

        Returns the members evicted *by this call* — calling again at the
        same ``now`` returns an empty list (idempotence).
        """
        t = float(now)
        evicted: List[str] = []
        callbacks: List[str] = []
        with self._lock:
            for member, lease in self._leases.items():
                if lease.expired or t - lease.last_beat <= lease.ttl:
                    continue
                lease.expired = True
                lease.expired_at = t
                lease.expire_reason = "ttl"
                self.expirations += 1
                evicted.append(member)
                self._event_locked(
                    "expire", member, t,
                    reason="ttl", silent_for=t - lease.last_beat,
                )
            callbacks = list(evicted)
        for member in evicted:
            self.metrics.counter("viper_leases_expired_total", reason="ttl").inc()
            if self.stats is not None:
                self.stats.record_lease_expired("ttl")
        if self.on_expire is not None:
            for member in callbacks:
                self.on_expire(member, "ttl")
        return evicted

    def evict(self, member: str, now: float, reason: str) -> bool:
        """Force-expire one member (slow-consumer escalation); idempotent."""
        with self._lock:
            lease = self._leases.get(member)
            if lease is None or lease.expired:
                return False
            lease.expired = True
            lease.expired_at = float(now)
            lease.expire_reason = reason
            self.expirations += 1
            self._event_locked("expire", member, now, reason=reason)
        self.metrics.counter("viper_leases_expired_total", reason=reason).inc()
        if self.stats is not None:
            self.stats.record_lease_expired(reason)
        if self.on_expire is not None:
            self.on_expire(member, reason)
        return True

    def release(self, member: str, now: float) -> bool:
        """Voluntary departure (clean unsubscribe); not an expiry."""
        with self._lock:
            lease = self._leases.pop(member, None)
            if lease is None:
                return False
            self._event_locked("release", member, now)
        return True

    # ------------------------------------------------------------------
    def alive(self, member: str) -> bool:
        with self._lock:
            lease = self._leases.get(member)
            return lease is not None and not lease.expired

    def lease(self, member: str) -> Optional[Lease]:
        with self._lock:
            return self._leases.get(member)

    def members(self, *, alive_only: bool = True) -> Tuple[str, ...]:
        with self._lock:
            return tuple(
                m
                for m, lease in self._leases.items()
                if not (alive_only and lease.expired)
            )

    def write_event_log(self, path) -> int:
        """Dump membership transitions as JSONL; returns the line count."""
        with self._lock:
            events = list(self.events)
        with open(path, "w", encoding="utf-8") as fh:
            for entry in events:
                fh.write(json.dumps(entry) + "\n")
        return len(events)
