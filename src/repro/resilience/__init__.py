"""Deterministic fault injection and resilient-transfer policies.

Viper's transfer engine (paper §4.3-4.4) composes DMA copies, RDMA
sends, and PFS writes — each of which fails routinely at production
scale.  This package makes partial failure a first-class, *testable*
citizen:

- :mod:`repro.resilience.faults` — a seeded :class:`FaultPlan` that
  injects link drops, stalls, tier write failures, and payload
  corruption at configurable probabilities or exact ``(site, op)``
  points, via zero-overhead hooks in the network fabric, the link
  timing laws, and the tier stores.
- :mod:`repro.resilience.retry` — a :class:`RetryPolicy` (bounded
  attempts, exponential backoff with seeded jitter on the simulated
  clock, per-attempt deadline) and the :func:`execute_with_retry`
  executor used by the transfer engine and the weights handler.

- :mod:`repro.resilience.recovery` — crash recovery: a durable
  write-ahead :class:`MetadataJournal` (JSONL append + snapshot
  compaction + idempotent replay) and the seeded :class:`CrashPlan` /
  :class:`SimulatedCrash` kill points that the crash-restart chaos
  harness uses to die mid-publish, mid-flush, or mid-notify.

- :mod:`repro.resilience.health` — fleet liveness: the
  :class:`LeaseRegistry` lease/heartbeat membership table the
  notification broker uses to evict dead subscribers and reclaim
  their queues.
- :mod:`repro.resilience.breaker` — :class:`CircuitBreaker` /
  :class:`BreakerBoard`: closed/open/half-open failure latches (with
  seeded probe jitter) in front of the handler's retry sites, so a
  persistently failing tier fails fast instead of burning the retry
  budget on every call.

Strategy failover down the paper's GPU -> HOST -> PFS chain and
checksum-verified deserialization live in the transfer layer
(:mod:`repro.core.transfer.handler`, :mod:`repro.dnn.serialization`);
this package supplies the fault model and the retry machinery they
share.
"""

from repro.resilience.faults import (
    FAULT_SEED_ENV,
    FaultKind,
    FaultPlan,
    FaultRule,
    Injection,
)
from repro.resilience.recovery import (
    CrashPlan,
    CrashPoint,
    JournalEntry,
    MetadataJournal,
    SimulatedCrash,
)
from repro.resilience.retry import (
    RETRYABLE_ERRORS,
    RetryOutcome,
    RetryPolicy,
    execute_with_retry,
)
from repro.resilience.health import Lease, LeaseRegistry
from repro.resilience.breaker import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)

__all__ = [
    "FAULT_SEED_ENV",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
    "Injection",
    "CrashPlan",
    "CrashPoint",
    "JournalEntry",
    "MetadataJournal",
    "SimulatedCrash",
    "RETRYABLE_ERRORS",
    "RetryOutcome",
    "RetryPolicy",
    "execute_with_retry",
    "Lease",
    "LeaseRegistry",
    "BreakerBoard",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
]
