"""Retry with exponential backoff and jitter, on the simulated clock.

:class:`RetryPolicy` describes the budget (attempts, delays, per-attempt
deadline); :func:`execute_with_retry` runs one operation under it.  Two
deliberate properties:

- **Simulated backoff.**  Delays are charged as simulated seconds (the
  caller folds ``backoff_seconds`` into its :class:`~repro.substrates.cost.Cost`
  timeline); the worker thread never sleeps, so chaos suites stay fast
  and deterministic.
- **Seeded jitter.**  The jitter draw comes from a caller-supplied
  :class:`random.Random`, so two runs with the same seed produce
  identical backoff sequences — the property the CI chaos job's
  "reproduce with one env var" contract rests on.

The per-attempt deadline closes the stall loophole: an injected channel
stall makes the operation *succeed* with an inflated simulated cost, and
only a deadline turns that into a detectable (and retryable) timeout —
exactly how a wall-clock timeout converts a hung RDMA send into an error.

:class:`~repro.errors.RetriesExhausted` is never retried, so nesting
retry scopes (the async engine around the handler around a tier store)
cannot multiply attempt budgets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Type

from repro.errors import (
    CapacityError,
    ConfigurationError,
    IntegrityError,
    RetriesExhausted,
    StorageError,
    TransferError,
)
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER

__all__ = [
    "RETRYABLE_ERRORS",
    "RetryPolicy",
    "RetryOutcome",
    "execute_with_retry",
]

#: Errors worth retrying: transient transport / storage / integrity
#: failures.  ``FaultInjected`` is a ``TransferError`` subclass, so every
#: injected drop is retryable by construction.
RETRYABLE_ERRORS: Tuple[Type[BaseException], ...] = (
    TransferError,
    StorageError,
    CapacityError,
    IntegrityError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and jitter.

    Attributes:
        max_attempts: total tries, including the first (1 = no retries).
        base_delay: simulated seconds before the first retry.
        multiplier: backoff growth per retry (``base * mult**(n-1)``).
        max_delay: backoff cap in simulated seconds.
        jitter: symmetric jitter fraction (0.25 = +/-25% of the delay).
        attempt_deadline: per-attempt budget in simulated seconds; an
            attempt whose simulated cost exceeds it counts as a timeout
            and is retried (None disables the check).
        total_deadline: whole-operation budget in simulated seconds
            across *all* attempts — successful attempt costs plus the
            backoff between attempts.  Once the accumulated elapsed time
            exceeds it, :class:`~repro.errors.RetriesExhausted` is
            raised with the attempts made and seconds elapsed, even if
            attempt budget remains (None disables the check).
    """

    max_attempts: int = 3
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.25
    attempt_deadline: Optional[float] = None
    total_deadline: Optional[float] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("retry delays must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigurationError("retry multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("retry jitter must be in [0, 1]")
        if self.attempt_deadline is not None and self.attempt_deadline <= 0:
            raise ConfigurationError("attempt_deadline must be positive")
        if self.total_deadline is not None and self.total_deadline <= 0:
            raise ConfigurationError("total_deadline must be positive")
        if (
            self.total_deadline is not None
            and self.attempt_deadline is not None
            and self.total_deadline < self.attempt_deadline
        ):
            raise ConfigurationError(
                "total_deadline must be >= attempt_deadline"
            )

    def delay_for(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered."""
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        delay = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)


@dataclass
class RetryOutcome:
    """A successful :func:`execute_with_retry` run."""

    value: Any
    attempts: int
    backoff_seconds: float
    errors: Tuple[BaseException, ...]

    @property
    def retried(self) -> bool:
        return self.attempts > 1


def execute_with_retry(
    op: Callable[[], Any],
    policy: RetryPolicy,
    *,
    site: str = "op",
    rng: Optional[random.Random] = None,
    retryable: Tuple[Type[BaseException], ...] = RETRYABLE_ERRORS,
    cost_fn: Optional[Callable[[Any], float]] = None,
    tracer=None,
    metrics=None,
    on_retry: Optional[Callable[[str, int, BaseException], None]] = None,
) -> RetryOutcome:
    """Run ``op`` under ``policy``; raise :class:`RetriesExhausted` on failure.

    ``cost_fn`` extracts an attempt's simulated seconds from its return
    value for the deadline check (defaults to ``value.total`` when the
    value looks like a :class:`~repro.substrates.cost.Cost`).  ``on_retry``
    fires once per abandoned attempt — the handler uses it to count
    retries into its stats snapshot.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    metrics = metrics if metrics is not None else NULL_METRICS
    errors: list = []
    backoff_total = 0.0
    # Whole-operation budget: backoff between attempts plus the simulated
    # cost of attempts whose cost is observable (a failed attempt raises
    # before its cost is known, so only successful costs accumulate).
    elapsed_total = 0.0

    def _exhaust_total(attempts: int) -> RetriesExhausted:
        metrics.counter(
            "resilience_retries_exhausted_total", site=site
        ).inc()
        exc = RetriesExhausted(
            f"{site}: total deadline {policy.total_deadline:.6f}s exceeded "
            f"after {attempts} attempt(s), {elapsed_total:.6f}s elapsed",
            site=site,
            attempts=attempts,
        )
        if errors:
            exc.__cause__ = errors[-1]
        return exc

    for attempt in range(1, policy.max_attempts + 1):
        failure: Optional[BaseException] = None
        with tracer.span(
            "resilience.attempt",
            track="resilience",
            site=site,
            attempt=attempt,
        ) as span:
            try:
                value = op()
            except RetriesExhausted:
                raise  # a nested retry scope already spent its budget
            except retryable as exc:
                failure = exc
                span.set(error=type(exc).__name__)
            else:
                sim_seconds = (
                    cost_fn(value)
                    if cost_fn is not None
                    else getattr(value, "total", None)
                )
                if (
                    policy.attempt_deadline is not None
                    and sim_seconds is not None
                    and sim_seconds > policy.attempt_deadline
                ):
                    failure = TransferError(
                        f"{site}: attempt {attempt} took {sim_seconds:.6f}s "
                        f"simulated, over the {policy.attempt_deadline:.6f}s "
                        f"deadline"
                    )
                    span.set(error="deadline", sim_seconds=sim_seconds)
                else:
                    elapsed_total = backoff_total + (
                        float(sim_seconds) if sim_seconds is not None else 0.0
                    )
                    if (
                        policy.total_deadline is not None
                        and elapsed_total > policy.total_deadline
                    ):
                        # The operation succeeded, but past its whole-run
                        # budget — the caller already gave up on it.
                        raise _exhaust_total(attempt)
                    return RetryOutcome(
                        value=value,
                        attempts=attempt,
                        backoff_seconds=backoff_total,
                        errors=tuple(errors),
                    )
        assert failure is not None  # the success branch returned above
        errors.append(failure)
        if attempt < policy.max_attempts:
            backoff_total += policy.delay_for(attempt, rng)
            elapsed_total = backoff_total
            if (
                policy.total_deadline is not None
                and elapsed_total > policy.total_deadline
            ):
                # Backoff alone has burned the whole-operation budget:
                # stop early instead of sleeping past the deadline.
                raise _exhaust_total(attempt)
            metrics.counter("resilience_retries_total", site=site).inc()
            if on_retry is not None:
                on_retry(site, attempt, failure)
    metrics.counter("resilience_retries_exhausted_total", site=site).inc()
    raise RetriesExhausted(
        f"{site}: all {policy.max_attempts} attempts failed "
        f"(last: {errors[-1]!r})",
        site=site,
        attempts=policy.max_attempts,
    ) from errors[-1]
