"""Circuit breakers for the transfer stack's retry sites.

:func:`~repro.resilience.retry.execute_with_retry` keeps a *transient*
failure cheap; a *persistently* failing site makes it expensive — every
save or load burns the full attempt budget (plus simulated backoff)
before failing over.  A :class:`CircuitBreaker` in front of each retry
site remembers the exhaustion and fails the next calls fast:

- **closed** — calls flow; consecutive retry-exhaustions count up.
- **open** — calls are refused immediately
  (:class:`~repro.errors.CircuitOpenError`, or a silent skip when the
  caller has somewhere else to go, like the handler's GPU → HOST → PFS
  failover chain).  After ``reset_timeout`` (± seeded probe jitter, so a
  fleet of breakers tripped by one outage doesn't probe in lockstep) the
  breaker half-opens.
- **half-open** — a bounded number of probe calls pass through;
  ``half_open_probes`` consecutive successes close the breaker, any
  failure reopens it and re-draws the probe delay.

Time is an explicit ``now`` everywhere, so breakers run on the simulated
clock in tests and chaos suites (deterministic trip/probe sequences
under ``VIPER_FAULT_SEED``) and on the wall clock in live deployments.

:class:`BreakerBoard` lazily manages one breaker per site behind a
single shared config — the handler asks ``board.allow("stage.gpu", now)``
without caring whether that site has ever failed.
"""

from __future__ import annotations

import enum
import random
import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import CircuitOpenError, ConfigurationError
from repro.obs.metrics import NULL_METRICS

__all__ = ["BreakerState", "BreakerConfig", "CircuitBreaker", "BreakerBoard"]


class BreakerState(enum.Enum):
    """Breaker lifecycle: closed (flowing) / open (refusing) / half-open
    (probing)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/probe policy shared by every breaker on a board.

    Attributes:
        failure_threshold: consecutive failures that trip the breaker.
        reset_timeout: seconds a tripped breaker stays open before its
            first half-open probe (simulated or wall seconds — whatever
            clock the caller passes as ``now``).
        probe_jitter: symmetric jitter fraction on ``reset_timeout``
            (0.25 = ±25%), drawn from a per-site seeded stream.
        half_open_probes: consecutive probe successes required to close.
    """

    failure_threshold: int = 3
    reset_timeout: float = 0.5
    probe_jitter: float = 0.25
    half_open_probes: int = 1

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if self.reset_timeout <= 0:
            raise ConfigurationError("reset_timeout must be positive")
        if not 0.0 <= self.probe_jitter <= 1.0:
            raise ConfigurationError("probe_jitter must be in [0, 1]")
        if self.half_open_probes < 1:
            raise ConfigurationError("half_open_probes must be >= 1")


class CircuitBreaker:
    """One site's closed/open/half-open failure latch."""

    def __init__(
        self,
        site: str,
        config: Optional[BreakerConfig] = None,
        *,
        rng: Optional[random.Random] = None,
        metrics=None,
        stats=None,
    ):
        self.site = site
        self.config = config if config is not None else BreakerConfig()
        self._rng = rng
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.stats = stats
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._failures = 0          # consecutive, while closed
        self._probe_successes = 0   # consecutive, while half-open
        self._probes_in_flight = 0
        self._open_until = 0.0
        self.trips = 0
        self.fast_fails = 0

    # ------------------------------------------------------------------
    def _probe_delay(self) -> float:
        delay = self.config.reset_timeout
        if self.config.probe_jitter and self._rng is not None:
            delay *= 1.0 + self.config.probe_jitter * (
                2.0 * self._rng.random() - 1.0
            )
        return max(0.0, delay)

    def _trip_locked(self, now: float) -> None:
        self._state = BreakerState.OPEN
        self._open_until = float(now) + self._probe_delay()
        self._failures = 0
        self._probe_successes = 0
        self._probes_in_flight = 0
        self.trips += 1

    # ------------------------------------------------------------------
    @property
    def state(self) -> BreakerState:
        with self._lock:
            return self._state

    def retry_after(self, now: float) -> float:
        """Seconds until the next probe becomes possible (0 when closed)."""
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return 0.0
            return max(0.0, self._open_until - float(now))

    def allow(self, now: float) -> bool:
        """May a call proceed at ``now``?  A refusal is counted.

        An open breaker whose probe delay has elapsed transitions to
        half-open and admits up to ``half_open_probes`` concurrent probe
        calls; further calls are refused until those report back.
        """
        tripped_refusal = False
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.OPEN:
                if float(now) >= self._open_until:
                    self._state = BreakerState.HALF_OPEN
                    self._probe_successes = 0
                    self._probes_in_flight = 1
                    return True
                tripped_refusal = True
            elif self._probes_in_flight < self.config.half_open_probes:
                self._probes_in_flight += 1
                return True
            else:
                tripped_refusal = True
            if tripped_refusal:
                self.fast_fails += 1
        self.metrics.counter(
            "viper_breaker_fast_fails_total", site=self.site
        ).inc()
        return False

    def check(self, now: float) -> None:
        """Raise :class:`CircuitOpenError` instead of returning False."""
        if not self.allow(now):
            raise CircuitOpenError(
                f"circuit open at {self.site!r}",
                site=self.site,
                retry_after=self.retry_after(now),
            )

    def record_success(self, now: float) -> None:
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.config.half_open_probes:
                    self._state = BreakerState.CLOSED
                    self._failures = 0
            else:
                self._failures = 0

    def record_failure(self, now: float) -> None:
        tripped = False
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                # A failed probe reopens immediately, new jittered delay.
                self._trip_locked(now)
                tripped = True
            elif self._state is BreakerState.CLOSED:
                self._failures += 1
                if self._failures >= self.config.failure_threshold:
                    self._trip_locked(now)
                    tripped = True
        if tripped:
            self.metrics.counter(
                "viper_breaker_trips_total", site=self.site
            ).inc()
            if self.stats is not None:
                self.stats.record_breaker_trip(self.site)


class BreakerBoard:
    """Per-site breakers behind one shared config (lazily created)."""

    def __init__(
        self,
        config: Optional[BreakerConfig] = None,
        *,
        seed: Optional[int] = None,
        metrics=None,
        stats=None,
    ):
        self.config = config if config is not None else BreakerConfig()
        self.seed = seed
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.stats = stats
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, site: str) -> CircuitBreaker:
        with self._lock:
            b = self._breakers.get(site)
            if b is None:
                rng = (
                    random.Random(f"{self.seed}/breaker.{site}")
                    if self.seed is not None
                    else None
                )
                b = self._breakers[site] = CircuitBreaker(
                    site, self.config, rng=rng,
                    metrics=self.metrics, stats=self.stats,
                )
            return b

    def allow(self, site: str, now: float) -> bool:
        return self.breaker(site).allow(now)

    def check(self, site: str, now: float) -> None:
        self.breaker(site).check(now)

    def success(self, site: str, now: float) -> None:
        self.breaker(site).record_success(now)

    def failure(self, site: str, now: float) -> None:
        self.breaker(site).record_failure(now)

    def retry_after(self, site: str, now: float) -> float:
        return self.breaker(site).retry_after(now)

    def states(self) -> Dict[str, BreakerState]:
        with self._lock:
            return {site: b.state for site, b in self._breakers.items()}

    @property
    def trips(self) -> int:
        with self._lock:
            return sum(b.trips for b in self._breakers.values())
