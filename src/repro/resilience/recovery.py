"""Crash recovery: durable metadata journal and seeded kill points.

The paper's fault-tolerance story stops at flushing historical models to
the PFS (§4.4); everything else — the metadata store's version history,
the flusher's pending queue, every broker subscription — lives in process
memory and dies with the process.  This module supplies the durable half
of the recovery protocol:

- :class:`MetadataJournal` — a write-ahead journal for
  :class:`~repro.core.metadata.MetadataStore` mutations.  Appends are
  JSONL lines; a snapshot file plus journal truncation (compaction)
  bounds replay time.  Replay is idempotent (replaying any prefix twice
  yields the same store state) and preserves the monotonic
  latest-version invariant, so a recovery interrupted by a second crash
  simply replays again.  The journal is op-agnostic: replay hands every
  entry to ``MetadataStore.apply_journal_op``, so the rollout
  controller's ``quarantine`` ops replay with no journal-side support —
  a recovered deployment re-condemns the same versions and its latest
  pointer lands back on the last-known-good checkpoint, never on a
  quarantined one (quarantine survives crashes by construction, and the
  flush-completion re-CAS of :meth:`~repro.core.transfer.handler.
  ModelWeightsHandler.recover_pending` cannot resurrect a condemned
  record because the store merges quarantine flags into every CAS).
- :class:`CrashPlan` / :class:`SimulatedCrash` — seeded kill points for
  the crash-restart chaos harness.  A plan names one ``(site, op)``
  point; the first thread to reach it dies with :class:`SimulatedCrash`
  (a ``BaseException``, so no retry/except clause on the normal error
  path can swallow it), and every later arrival at *any* armed site dies
  too — the process is dead, not just one call.

The recovery protocol itself (replay -> restore version counters ->
complete/requeue/prune non-durable checkpoints -> resubscribe with gap
detection) is driven by :class:`repro.core.api.Viper` with
``journal=...``/``recover=True``; see docs/resilience.md.
"""

from __future__ import annotations

import fnmatch
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import JournalError
from repro.obs.metrics import NULL_METRICS

__all__ = [
    "JournalEntry",
    "MetadataJournal",
    "SimulatedCrash",
    "CrashPoint",
    "CrashPlan",
]


class SimulatedCrash(BaseException):
    """A seeded kill point fired: the simulated process is dead.

    Deliberately a ``BaseException``: the production error handling
    (retry executors, failover chains, ``except StorageError`` clauses)
    must not be able to absorb a process death, exactly as a real
    ``SIGKILL`` cannot be caught.  Only the chaos harness catches it.
    """

    def __init__(self, site: str, op_index: int = 0):
        super().__init__(f"simulated crash at {site} (op {op_index})")
        self.site = site
        self.op_index = op_index


@dataclass(frozen=True)
class CrashPoint:
    """Where a :class:`CrashPlan` kills the process.

    ``site`` is an ``fnmatch`` pattern over kill-point names (e.g.
    ``"flush.staged"`` or ``"publish.*"``); ``at_op`` selects the N-th
    arrival at a matching site (0-based, counted per site).
    """

    site: str
    at_op: int = 0


class CrashPlan:
    """One armed kill point plus dead-process semantics after it fires.

    Thread-safe: the producer thread, the engine worker, and the flusher
    may all reach armed sites concurrently.  The first matching arrival
    raises; every subsequent :meth:`reached` call from any thread also
    raises, so background threads of a "dead" deployment cannot keep
    mutating durable state behind the harness's back.
    """

    def __init__(self, point: CrashPoint):
        self.point = point
        self._lock = threading.Lock()
        self._op_counts: Dict[str, int] = {}
        self.fired: Optional[SimulatedCrash] = None

    @property
    def dead(self) -> bool:
        return self.fired is not None

    def reached(self, site: str) -> None:
        """Advance the site's op counter; raise if the plan says die."""
        with self._lock:
            if self.fired is not None:
                raise SimulatedCrash(site, self._op_counts.get(site, 0))
            op = self._op_counts.get(site, 0)
            self._op_counts[site] = op + 1
            if fnmatch.fnmatchcase(site, self.point.site) and op == self.point.at_op:
                self.fired = SimulatedCrash(site, op)
                raise self.fired

    def arm(self, viper) -> "CrashPlan":
        """Install this plan's hooks on a deployment (chainable)."""
        viper.handler.crashpoints = self
        viper.handler.flusher.crashpoints = self
        viper.cluster.pfs.crashpoints = self
        for node in viper.cluster.nodes:
            node.gpu.crashpoints = self
            node.dram.crashpoints = self
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dead" if self.dead else "armed"
        return f"CrashPlan({self.point.site!r}@{self.point.at_op}, {state})"


@dataclass(frozen=True)
class JournalEntry:
    """One journaled mutation."""

    seq: int
    op: str
    data: Dict[str, Any]

    def to_line(self) -> str:
        return json.dumps(
            {"seq": self.seq, "op": self.op, "data": self.data},
            separators=(",", ":"),
        )


class MetadataJournal:
    """Write-ahead JSONL journal with snapshot/compaction for metadata.

    Layout under ``root``::

        journal.jsonl    append-only mutation log (one JSON object/line)
        snapshot.json    last compaction's full-store state + its seq

    Appends flush to the OS on every line (``fsync=True`` additionally
    forces the write to stable media); a crash mid-append leaves at most
    one torn final line, which :meth:`replay_into` detects, counts, and
    truncates so subsequent appends never splice onto a torn tail.

    Compaction writes the snapshot atomically (temp file + ``os.replace``)
    *before* truncating the journal, so a crash between the two steps
    leaves entries whose ``seq`` the snapshot already covers — replay
    skips those, and applying them anyway would be idempotent.
    """

    def __init__(
        self,
        root,
        *,
        fsync: bool = False,
        compact_every: int = 0,
        metrics=None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.compact_every = int(compact_every)
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._lock = threading.Lock()
        self._fh = None
        self._appends_since_compact = 0
        self.torn_tail_dropped = 0
        self._next_seq = self._scan_next_seq()

    @property
    def journal_path(self) -> Path:
        return self.root / "journal.jsonl"

    @property
    def snapshot_path(self) -> Path:
        return self.root / "snapshot.json"

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._next_seq - 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _scan_next_seq(self) -> int:
        last = 0
        snap = self._read_snapshot()
        if snap is not None:
            last = int(snap.get("seq", 0))
        entries, _ = self._read_entries()
        if entries:
            last = max(last, entries[-1].seq)
        return last + 1

    def _read_snapshot(self) -> Optional[Dict[str, Any]]:
        if not self.snapshot_path.exists():
            return None
        try:
            with open(self.snapshot_path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise JournalError(f"unreadable snapshot {self.snapshot_path}: {exc}")

    def _read_entries(self) -> Tuple[List[JournalEntry], int]:
        """Parse the journal; returns (entries, byte offset of good tail).

        Parsing stops at the first undecodable line — the torn tail a
        crash mid-append leaves — and reports the offset up to which the
        file is intact so the caller can truncate.
        """
        entries: List[JournalEntry] = []
        good_offset = 0
        if not self.journal_path.exists():
            return entries, good_offset
        with open(self.journal_path, "rb") as fh:
            for raw in fh:
                if not raw.endswith(b"\n"):
                    break  # torn: the final newline never made it out
                try:
                    obj = json.loads(raw)
                    entry = JournalEntry(
                        seq=int(obj["seq"]), op=str(obj["op"]), data=obj["data"]
                    )
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    break
                entries.append(entry)
                good_offset += len(raw)
        return entries, good_offset

    def entries(self) -> List[JournalEntry]:
        """The decodable journal tail (excludes snapshotted history)."""
        with self._lock:
            return self._read_entries()[0]

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, op: str, data: Dict[str, Any]) -> int:
        """Durably append one mutation; returns its sequence number."""
        with self._lock:
            if self._fh is None:
                self._fh = open(self.journal_path, "ab")
            seq = self._next_seq
            self._next_seq += 1
            entry = JournalEntry(seq=seq, op=op, data=data)
            self._fh.write(entry.to_line().encode("utf-8") + b"\n")
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self._appends_since_compact += 1
            self.metrics.counter("journal_appends_total", op=op).inc()
            return seq

    # ------------------------------------------------------------------
    # Snapshot / compaction
    # ------------------------------------------------------------------
    def maybe_compact(self, state_fn: Callable[[], Dict[str, Any]]) -> bool:
        """Compact when the configured append budget is exhausted."""
        if self.compact_every <= 0:
            return False
        with self._lock:
            if self._appends_since_compact < self.compact_every:
                return False
        self.compact(state_fn())
        return True

    def compact(self, state: Dict[str, Any]) -> None:
        """Write ``state`` as the new snapshot and truncate the journal."""
        with self._lock:
            snap = {"seq": self._next_seq - 1, "state": state}
            tmp = self.snapshot_path.with_suffix(".json.tmp")
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(snap, fh, separators=(",", ":"))
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            os.replace(tmp, self.snapshot_path)
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            open(self.journal_path, "wb").close()  # truncate
            self._appends_since_compact = 0
            self.metrics.counter("journal_compactions_total").inc()

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay_into(self, store) -> int:
        """Restore a :class:`MetadataStore` from snapshot + journal tail.

        Returns the number of journal operations applied (snapshot load
        excluded).  Truncates any torn tail so appends can resume safely.
        Safe to call more than once: replay is idempotent.
        """
        with self._lock:
            snap = self._read_snapshot()
            snap_seq = 0
            if snap is not None:
                snap_seq = int(snap.get("seq", 0))
                store.load_state(snap.get("state", {}))
            entries, good_offset = self._read_entries()
            if self.journal_path.exists():
                size = self.journal_path.stat().st_size
                if good_offset < size:
                    self.torn_tail_dropped += 1
                    if self._fh is not None:
                        self._fh.close()
                        self._fh = None
                    with open(self.journal_path, "ab") as fh:
                        fh.truncate(good_offset)
            replayed = 0
            for entry in entries:
                if entry.seq <= snap_seq:
                    continue  # the snapshot already covers this mutation
                store.apply_journal_op(entry.op, entry.data)
                replayed += 1
            if entries:
                self._next_seq = max(self._next_seq, entries[-1].seq + 1)
            self._next_seq = max(self._next_seq, snap_seq + 1)
        self.metrics.counter("journal_replays_total").inc()
        return replayed

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "MetadataJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetadataJournal({str(self.root)!r}, last_seq={self.last_seq})"
