"""Seeded, deterministic fault injection for the transfer stack.

A :class:`FaultPlan` is a list of :class:`FaultRule` s plus a seed.  Each
hookable operation in the stack names a *site* — e.g.
``"store.put:polaris.lustre"`` or ``"link.send:producer.gpu->consumer.gpu"``
— and asks the armed plan to :meth:`~FaultPlan.fire`.  The plan keeps a
per-site operation counter, so a rule can target an exact ``(site, op)``
point (fully reproducible single faults) or a probability (chaos testing);
the probabilistic draws come from one :class:`random.Random` stream *per
site*, so the injection sequence at a site depends only on the seed and
that site's own operation order, never on cross-thread interleaving with
other sites.

Fault kinds and their effect at a site:

===========  ==============================================================
kind         effect
===========  ==============================================================
DROP         raise :class:`~repro.errors.FaultInjected` (a transport loss)
STALL        multiply the operation's simulated cost by ``stall_factor``
             (a congested link / overloaded OST; surfaces as a deadline
             miss to the retry layer)
WRITE_FAIL   raise :class:`~repro.errors.StorageError` (failed tier write)
CAPACITY     raise :class:`~repro.errors.CapacityError` (tier out of space)
CORRUPT      flip one payload byte (silent data corruption, caught by the
             serialization checksum)
===========  ==============================================================

Hook sites (armed via :meth:`FaultPlan.arm`) live in
:class:`~repro.substrates.network.channels.Fabric` (``link.send:*``),
:class:`~repro.substrates.memory.storage.TierStore` (``store.put:*`` /
``store.get:*``), and the :mod:`~repro.substrates.network.links` timing
laws (``link.time:*``).  Every hook is a single ``is None`` check when no
plan is armed — the unfaulted hot path pays nothing.

The default seed comes from the ``VIPER_FAULT_SEED`` environment
variable (the CI chaos job sets it to the run id and echoes it), so any
CI failure is reproducible locally with one env var.
"""

from __future__ import annotations

import enum
import fnmatch
import os
import random
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import (
    CapacityError,
    ConfigurationError,
    FaultInjected,
    StorageError,
)
from repro.obs.metrics import NULL_METRICS

__all__ = [
    "FAULT_SEED_ENV",
    "FaultKind",
    "FaultRule",
    "FaultEffect",
    "Injection",
    "FaultPlan",
]

#: Environment variable supplying the default plan seed (CI sets it to
#: the workflow run id so chaos failures replay locally).
FAULT_SEED_ENV = "VIPER_FAULT_SEED"


def default_seed() -> int:
    """The plan seed from ``VIPER_FAULT_SEED`` (0 when unset/invalid)."""
    raw = os.environ.get(FAULT_SEED_ENV, "0")
    try:
        return int(raw)
    except ValueError:
        return 0


class FaultKind(enum.Enum):
    """What an injected fault does at its site."""

    DROP = "drop"
    STALL = "stall"
    WRITE_FAIL = "write_fail"
    CAPACITY = "capacity"
    CORRUPT = "corrupt"


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: where, what, and how often.

    Attributes:
        site: ``fnmatch`` pattern over site names, e.g. ``"store.put:*"``
            or ``"link.send:*->consumer.gpu"``.
        kind: the fault to inject when the rule fires.
        probability: chance of firing per matching operation (0 disables
            the probabilistic path).
        at_ops: exact per-site operation indices (0-based) at which the
            rule always fires, independent of ``probability``.
        max_injections: total firing budget for this rule (None = no cap).
        stall_factor: simulated-cost multiplier for ``STALL`` faults.
    """

    site: str
    kind: FaultKind
    probability: float = 0.0
    at_ops: Tuple[int, ...] = ()
    max_injections: Optional[int] = None
    stall_factor: float = 50.0

    def __post_init__(self):
        if not self.site:
            raise ConfigurationError("fault rule needs a site pattern")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"fault probability {self.probability} outside [0, 1]",
            )
        if any(op < 0 for op in self.at_ops):
            raise ConfigurationError(f"negative op index in {self.at_ops}")
        if self.max_injections is not None and self.max_injections < 0:
            raise ConfigurationError("max_injections must be non-negative")
        if self.stall_factor < 1.0:
            raise ConfigurationError("stall_factor must be >= 1")
        object.__setattr__(self, "at_ops", tuple(int(op) for op in self.at_ops))

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"site": self.site, "kind": self.kind.value}
        if self.probability:
            out["probability"] = self.probability
        if self.at_ops:
            out["at_ops"] = list(self.at_ops)
        if self.max_injections is not None:
            out["max_injections"] = self.max_injections
        if self.stall_factor != 50.0:
            out["stall_factor"] = self.stall_factor
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultRule":
        known = {
            "site",
            "kind",
            "probability",
            "at_ops",
            "max_injections",
            "stall_factor",
        }
        extra = set(data) - known
        if extra:
            raise ConfigurationError(f"unknown fault-rule keys: {sorted(extra)}")
        kwargs = dict(data)
        kwargs["kind"] = FaultKind(kwargs["kind"])
        if "at_ops" in kwargs:
            kwargs["at_ops"] = tuple(kwargs["at_ops"])
        return cls(**kwargs)


@dataclass(frozen=True)
class Injection:
    """Record of one fired fault (the plan's reproducibility log)."""

    site: str
    op_index: int
    kind: FaultKind


@dataclass
class FaultEffect:
    """Non-raising outcome of :meth:`FaultPlan.fire` for one operation."""

    payload: Optional[bytes] = None  # replacement payload (CORRUPT)
    cost_scale: float = 1.0  # simulated-cost multiplier (STALL)


#: Shared no-effect singleton so unfaulted fired sites allocate nothing.
_NO_EFFECT = FaultEffect()


class FaultPlan:
    """A seeded set of fault rules plus deterministic firing state.

    Thread-safe: the engine worker, the flusher, and the caller's thread
    may all hit armed sites concurrently.  Determinism holds per site:
    two runs issuing the same operation sequence at a site see the same
    injections for the same seed.
    """

    def __init__(
        self,
        rules: Iterable[FaultRule] = (),
        *,
        seed: Optional[int] = None,
        metrics=None,
    ):
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = default_seed() if seed is None else int(seed)
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._lock = threading.Lock()
        self._op_counts: Dict[str, int] = {}
        self._rngs: Dict[str, random.Random] = {}
        self._rule_hits: Dict[int, int] = {}
        self._injections: List[Injection] = []
        self._armed_stores: List[Any] = []
        self._armed_fabrics: List[Any] = []
        self._links_hooked = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def injections(self) -> Tuple[Injection, ...]:
        with self._lock:
            return tuple(self._injections)

    def injection_count(self, kind: Optional[FaultKind] = None) -> int:
        with self._lock:
            if kind is None:
                return len(self._injections)
            return sum(1 for inj in self._injections if inj.kind is kind)

    def op_count(self, site: str) -> int:
        with self._lock:
            return self._op_counts.get(site, 0)

    def bind_metrics(self, metrics) -> "FaultPlan":
        """Point injection counters at a live registry (chainable)."""
        self.metrics = metrics if metrics is not None else NULL_METRICS
        return self

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def _decide(self, site: str) -> Optional[FaultRule]:
        """Advance the site's op counter and return the rule to fire."""
        with self._lock:
            op = self._op_counts.get(site, 0)
            self._op_counts[site] = op + 1
            for idx, rule in enumerate(self.rules):
                if not fnmatch.fnmatchcase(site, rule.site):
                    continue
                if (
                    rule.max_injections is not None
                    and self._rule_hits.get(idx, 0) >= rule.max_injections
                ):
                    continue
                hit = op in rule.at_ops
                if not hit and rule.probability > 0.0:
                    rng = self._rngs.get(site)
                    if rng is None:
                        # String seeds hash via SHA-512 in CPython, so the
                        # stream is stable across processes and runs.
                        rng = random.Random(f"{self.seed}/{site}")
                        self._rngs[site] = rng
                    hit = rng.random() < rule.probability
                if hit:
                    self._rule_hits[idx] = self._rule_hits.get(idx, 0) + 1
                    self._injections.append(Injection(site, op, rule.kind))
                    return rule
        return None

    def fire(self, site: str, payload=None) -> FaultEffect:
        """Evaluate the plan at ``site`` for one operation.

        Raises the mapped error for DROP / WRITE_FAIL / CAPACITY rules;
        returns a :class:`FaultEffect` carrying a corrupted payload copy
        and/or a cost multiplier otherwise.
        """
        rule = self._decide(site)
        if rule is None:
            return _NO_EFFECT
        kind = rule.kind
        self.metrics.counter(
            "resilience_faults_injected_total",
            site=site,
            kind=kind.value,
        ).inc()
        if kind is FaultKind.DROP:
            raise FaultInjected(
                f"injected fault: dropped operation at {site}",
                site=site,
                kind=kind.value,
            )
        if kind is FaultKind.WRITE_FAIL:
            raise StorageError(f"injected fault: write failed at {site}")
        if kind is FaultKind.CAPACITY:
            raise CapacityError(f"injected fault: no capacity at {site}")
        if kind is FaultKind.STALL:
            return FaultEffect(cost_scale=rule.stall_factor)
        # CORRUPT: flip one byte at a position drawn from the site stream.
        if payload is None:
            return _NO_EFFECT
        return FaultEffect(payload=self._corrupt(site, payload))

    def _corrupt(self, site: str, payload) -> bytes:
        mv = memoryview(payload)
        if mv.ndim != 1 or mv.itemsize != 1:
            mv = mv.cast("B")
        if mv.nbytes == 0:
            return bytes(mv)
        with self._lock:
            rng = self._rngs.get(site)
            if rng is None:
                rng = random.Random(f"{self.seed}/{site}")
                self._rngs[site] = rng
            pos = rng.randrange(mv.nbytes)
        out = bytearray(mv)
        out[pos] ^= 0xFF
        return bytes(out)

    # ------------------------------------------------------------------
    # Arming / disarming
    # ------------------------------------------------------------------
    def arm(
        self,
        cluster=None,
        *,
        stores: Iterable[Any] = (),
        fabrics: Iterable[Any] = (),
        links_hook: bool = False,
    ) -> "FaultPlan":
        """Install this plan's hooks on a cluster and/or explicit targets.

        ``cluster`` arms its fabric, PFS store, and every node's GPU and
        DRAM stores.  ``links_hook=True`` additionally installs the
        module-level hook in :mod:`repro.substrates.network.links`, so
        ``link.time:*`` rules can stall the timing laws themselves.
        """
        stores = list(stores)
        fabrics = list(fabrics)
        if cluster is not None:
            fabrics.append(cluster.fabric)
            stores.append(cluster.pfs)
            for node in cluster.nodes:
                stores.extend((node.gpu, node.dram))
        for store in stores:
            store.faults = self
            self._armed_stores.append(store)
        for fabric in fabrics:
            fabric.faults = self
            self._armed_fabrics.append(fabric)
        if links_hook:
            from repro.substrates.network import links

            links.install_fault_hook(self)
            self._links_hooked = True
        return self

    def disarm(self) -> None:
        """Remove every hook this plan installed via :meth:`arm`."""
        for store in self._armed_stores:
            if getattr(store, "faults", None) is self:
                store.faults = None
        self._armed_stores.clear()
        for fabric in self._armed_fabrics:
            if getattr(fabric, "faults", None) is self:
                fabric.faults = None
        self._armed_fabrics.clear()
        if self._links_hooked:
            from repro.substrates.network import links

            links.uninstall_fault_hook(self)
            self._links_hooked = False

    def __enter__(self) -> "FaultPlan":
        return self

    def __exit__(self, *exc) -> None:
        self.disarm()

    # ------------------------------------------------------------------
    # Serialization (ViperConfig carries plans as plain dicts)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        known = {"seed", "rules"}
        extra = set(data) - known
        if extra:
            raise ConfigurationError(f"unknown fault-plan keys: {sorted(extra)}")
        rules = [FaultRule.from_dict(r) for r in data.get("rules", [])]
        return cls(rules, seed=data.get("seed"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(seed={self.seed}, rules={len(self.rules)}, "
            f"injected={len(self._injections)})"
        )
