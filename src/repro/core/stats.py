"""Stats Manager: load-source accounting (paper Fig. 3, optional).

The architecture figure lists an optional *Stats Manager* holding
"cached models on each producer ... used when selecting where to load
the model".  :class:`StatsManager` implements that role for the Model
Weights Handler's location-aware load path: it records, per location,
how many loads were served, the simulated bytes and time spent, and how
often the preferred (cheapest) replica was missing so the load fell back
to a slower tier.

When constructed with a :class:`~repro.obs.metrics.MetricsRegistry`,
every counter is mirrored into the registry (``viper_loads_total``,
``viper_load_bytes_total``, ``viper_load_seconds`` histogram,
``viper_load_fallbacks_total``, ``viper_load_misses_total``) so
location-aware load accounting shows up in Prometheus/JSONL exports,
not only in the ad-hoc :meth:`summary` string.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

__all__ = ["LocationStats", "StatsSnapshot", "StatsManager", "LOCATION_RANK"]

#: Cheapest-first order of checkpoint locations (the load path prefers
#: the fastest tier that still holds the replica).
LOCATION_RANK: Dict[str, int] = {"gpu": 0, "host_dram": 1, "pfs": 2}


@dataclass
class LocationStats:
    """Counters for one location."""

    loads: int = 0
    bytes_loaded: int = 0
    seconds: float = 0.0


@dataclass(frozen=True)
class StatsSnapshot:
    """Consistent point-in-time copy of every StatsManager counter.

    Indexing by location (``snap["gpu"]``) keeps the historical
    dict-of-:class:`LocationStats` shape working.
    """

    locations: Dict[str, LocationStats]
    fallbacks: int
    misses: int
    retries: int = 0      # transfer attempts abandoned and re-tried
    failovers: int = 0    # strategy demotions down the GPU->HOST->PFS chain
    corruptions: int = 0  # checksum mismatches caught before deserialization
    recoveries: int = 0         # crash-recovery replays completed
    replayed_ops: int = 0       # journal operations applied across recoveries
    notification_gaps: int = 0  # sequence gaps observed by consumers
    stale_fallbacks: int = 0    # staleness-watchdog polls after silent pushes
    swaps_rejected: int = 0     # corrupt loads that never reached the buffer
    bytes_total: int = 0             # full bytes the saves represented
    bytes_on_wire: int = 0           # bytes that actually moved
    bytes_saved_dedup: int = 0       # satisfied by reuse ops against a base
    bytes_saved_compression: int = 0 # removed by the literal codec
    delta_chunks_total: int = 0      # chunks considered by delta encodes
    delta_chunks_reused: int = 0     # chunks served from the held base
    delta_hits: int = 0              # saves that shipped a delta frame
    delta_fallbacks: int = 0         # delta path degraded to monolithic
    canary_promotions: int = 0       # candidates promoted by the health gate
    canary_rollbacks: int = 0        # candidates quarantined by the gate
    requests_shed: int = 0           # requests refused by admission control
    leases_expired: int = 0          # subscribers evicted by the registry
    breaker_trips: int = 0           # circuit breakers tripped open
    degraded_entries: int = 0        # servers that entered degraded mode

    @property
    def dedup_hit_ratio(self) -> float:
        """Fraction of delta-considered chunks served from the base."""
        if self.delta_chunks_total == 0:
            return 0.0
        return self.delta_chunks_reused / self.delta_chunks_total

    def __getitem__(self, location: str) -> LocationStats:
        return self.locations[location]

    def __contains__(self, location: str) -> bool:
        return location in self.locations

    def __iter__(self) -> Iterator[str]:
        return iter(self.locations)


class StatsManager:
    """Thread-safe load-source counters."""

    def __init__(self, metrics=None):
        from repro.obs.metrics import NULL_METRICS

        self._lock = threading.Lock()
        self._per_location: Dict[str, LocationStats] = {}
        self.fallbacks = 0   # preferred replica missing, used a slower one
        self.misses = 0      # no replica present anywhere
        self.retries = 0     # see StatsSnapshot.retries
        self.failovers = 0   # see StatsSnapshot.failovers
        self.corruptions = 0  # see StatsSnapshot.corruptions
        self.recoveries = 0         # see StatsSnapshot.recoveries
        self.replayed_ops = 0       # see StatsSnapshot.replayed_ops
        self.notification_gaps = 0  # see StatsSnapshot.notification_gaps
        self.stale_fallbacks = 0    # see StatsSnapshot.stale_fallbacks
        self.swaps_rejected = 0     # see StatsSnapshot.swaps_rejected
        self.bytes_total = 0             # see StatsSnapshot.bytes_total
        self.bytes_on_wire = 0           # see StatsSnapshot.bytes_on_wire
        self.bytes_saved_dedup = 0       # see StatsSnapshot.bytes_saved_dedup
        self.bytes_saved_compression = 0
        self.delta_chunks_total = 0
        self.delta_chunks_reused = 0
        self.delta_hits = 0
        self.delta_fallbacks = 0
        self.canary_promotions = 0   # see StatsSnapshot.canary_promotions
        self.canary_rollbacks = 0    # see StatsSnapshot.canary_rollbacks
        self.requests_shed = 0       # see StatsSnapshot.requests_shed
        self.leases_expired = 0      # see StatsSnapshot.leases_expired
        self.breaker_trips = 0       # see StatsSnapshot.breaker_trips
        self.degraded_entries = 0    # see StatsSnapshot.degraded_entries
        self.metrics = metrics if metrics is not None else NULL_METRICS

    def rank(self, location: str) -> int:
        return LOCATION_RANK.get(location, len(LOCATION_RANK))

    def order(self, replicas) -> Tuple[str, ...]:
        """Replicas sorted cheapest-first."""
        return tuple(sorted(replicas, key=self.rank))

    # ------------------------------------------------------------------
    def record_load(
        self,
        location: str,
        nbytes: int,
        seconds: float,
        fallback: bool = False,
    ) -> None:
        with self._lock:
            stats = self._per_location.setdefault(location, LocationStats())
            stats.loads += 1
            stats.bytes_loaded += int(nbytes)
            stats.seconds += float(seconds)
            if fallback:
                self.fallbacks += 1
        self.metrics.counter("viper_loads_total", location=location).inc()
        self.metrics.counter("viper_load_bytes_total", location=location).inc(int(nbytes))
        self.metrics.histogram("viper_load_seconds", location=location).observe(float(seconds))
        if fallback:
            self.metrics.counter("viper_load_fallbacks_total").inc()

    def record_miss(self) -> None:
        with self._lock:
            self.misses += 1
        self.metrics.counter("viper_load_misses_total").inc()

    def record_retry(self, site: str = "") -> None:
        """One transfer attempt failed and was retried at ``site``."""
        with self._lock:
            self.retries += 1
        self.metrics.counter("viper_retries_total", site=site).inc()

    def record_failover(self, src: str = "", dst: str = "") -> None:
        """The strategy chain demoted ``src`` -> ``dst`` after exhaustion."""
        with self._lock:
            self.failovers += 1
        self.metrics.counter("viper_failovers_total", src=src, dst=dst).inc()

    def record_corruption(self, location: str = "") -> None:
        """A checksum mismatch was caught loading from ``location``."""
        with self._lock:
            self.corruptions += 1
        self.metrics.counter("viper_corruptions_total", location=location).inc()

    def record_recovery(self, replayed_ops: int = 0) -> None:
        """One crash-recovery replay finished, applying ``replayed_ops``."""
        with self._lock:
            self.recoveries += 1
            self.replayed_ops += int(replayed_ops)
        self.metrics.counter("viper_recoveries_total").inc()
        self.metrics.counter("viper_replayed_ops_total").inc(int(replayed_ops))

    def record_notification_gap(self) -> None:
        """A consumer observed a non-contiguous notification sequence."""
        with self._lock:
            self.notification_gaps += 1
        self.metrics.counter("viper_notification_gaps_total").inc()

    def record_stale_fallback(self) -> None:
        """The staleness watchdog fell back to a metadata poll."""
        with self._lock:
            self.stale_fallbacks += 1
        self.metrics.counter("viper_stale_fallbacks_total").inc()

    def record_swap_rejected(self) -> None:
        """A corrupt load was rejected before touching the live model."""
        with self._lock:
            self.swaps_rejected += 1
        self.metrics.counter("viper_swaps_rejected_total").inc()

    def record_promotion(self) -> None:
        """A canary candidate passed its health gate and was swapped in."""
        with self._lock:
            self.canary_promotions += 1
        self.metrics.counter("viper_promotions_total").inc()

    def record_rollback(self, reason: str = "") -> None:
        """A canary candidate was quarantined with ``reason``."""
        with self._lock:
            self.canary_rollbacks += 1
        self.metrics.counter("viper_rollbacks_total", reason=reason).inc()

    def record_shed(self, reason: str = "") -> None:
        """Admission control refused one request (``reason`` says why)."""
        with self._lock:
            self.requests_shed += 1
        self.metrics.counter("viper_requests_shed_total", reason=reason).inc()

    def record_lease_expired(self, reason: str = "") -> None:
        """The lease registry evicted one subscriber."""
        with self._lock:
            self.leases_expired += 1
        self.metrics.counter("viper_lease_evictions_total", reason=reason).inc()

    def record_breaker_trip(self, site: str = "") -> None:
        """A circuit breaker at ``site`` tripped open."""
        with self._lock:
            self.breaker_trips += 1
        self.metrics.counter("viper_breaker_trips_stats_total", site=site).inc()

    def record_degraded_entry(self) -> None:
        """One server entered degraded (serve-last-known-good) mode."""
        with self._lock:
            self.degraded_entries += 1
        self.metrics.counter("viper_degraded_entries_total").inc()

    def record_wire(
        self,
        bytes_total: int,
        bytes_on_wire: int,
        *,
        saved_dedup: int = 0,
        saved_compression: int = 0,
        chunks_total: int = 0,
        chunks_reused: int = 0,
        delta: bool = False,
    ) -> None:
        """One save's wire accounting (delta or monolithic).

        ``bytes_total`` is what the monolithic path would have moved;
        ``bytes_on_wire`` is what actually moved.  The difference splits
        into dedup (reuse ops) and compression (codec) savings.
        """
        with self._lock:
            self.bytes_total += int(bytes_total)
            self.bytes_on_wire += int(bytes_on_wire)
            self.bytes_saved_dedup += int(saved_dedup)
            self.bytes_saved_compression += int(saved_compression)
            self.delta_chunks_total += int(chunks_total)
            self.delta_chunks_reused += int(chunks_reused)
            if delta:
                self.delta_hits += 1
        self.metrics.counter("viper_bytes_total").inc(int(bytes_total))
        self.metrics.counter("viper_bytes_on_wire_total").inc(int(bytes_on_wire))
        if saved_dedup:
            self.metrics.counter("viper_bytes_saved_dedup_total").inc(int(saved_dedup))
        if saved_compression:
            self.metrics.counter("viper_bytes_saved_compression_total").inc(
                int(saved_compression)
            )
        if delta:
            self.metrics.counter("viper_delta_hits_total").inc()

    def record_delta_fallback(self, reason: str = "") -> None:
        """The delta path degraded to monolithic (by design, not error)."""
        with self._lock:
            self.delta_fallbacks += 1
        self.metrics.counter("viper_delta_fallbacks_total", reason=reason).inc()

    def revert_wire_savings(
        self,
        bytes_total: int,
        bytes_on_wire: int,
        *,
        saved_dedup: int = 0,
        saved_compression: int = 0,
        chunks_total: int = 0,
        chunks_reused: int = 0,
    ) -> None:
        """Undo one save's delta savings after staging failed over.

        ``record_wire`` runs optimistically at encode time; when the
        blob later fails over into the PFS the monolithic form actually
        ships, so the save's full ``bytes_total`` moved and the recorded
        dedup/compression savings never happened.  Pass the same values
        the original ``record_wire`` call saw.
        """
        extra = max(0, int(bytes_total) - int(bytes_on_wire))
        with self._lock:
            self.bytes_on_wire += extra
            self.bytes_saved_dedup -= min(int(saved_dedup), self.bytes_saved_dedup)
            self.bytes_saved_compression -= min(
                int(saved_compression), self.bytes_saved_compression
            )
            self.delta_chunks_total -= min(
                int(chunks_total), self.delta_chunks_total
            )
            self.delta_chunks_reused -= min(
                int(chunks_reused), self.delta_chunks_reused
            )
            if self.delta_hits:
                self.delta_hits -= 1
        if extra:
            self.metrics.counter("viper_bytes_on_wire_total").inc(extra)

    # ------------------------------------------------------------------
    def loads_from(self, location: str) -> int:
        with self._lock:
            stats = self._per_location.get(location)
            return stats.loads if stats else 0

    def snapshot(self) -> StatsSnapshot:
        with self._lock:
            return StatsSnapshot(
                locations={
                    loc: LocationStats(s.loads, s.bytes_loaded, s.seconds)
                    for loc, s in self._per_location.items()
                },
                fallbacks=self.fallbacks,
                misses=self.misses,
                retries=self.retries,
                failovers=self.failovers,
                corruptions=self.corruptions,
                recoveries=self.recoveries,
                replayed_ops=self.replayed_ops,
                notification_gaps=self.notification_gaps,
                stale_fallbacks=self.stale_fallbacks,
                swaps_rejected=self.swaps_rejected,
                bytes_total=self.bytes_total,
                bytes_on_wire=self.bytes_on_wire,
                bytes_saved_dedup=self.bytes_saved_dedup,
                bytes_saved_compression=self.bytes_saved_compression,
                delta_chunks_total=self.delta_chunks_total,
                delta_chunks_reused=self.delta_chunks_reused,
                delta_hits=self.delta_hits,
                delta_fallbacks=self.delta_fallbacks,
                canary_promotions=self.canary_promotions,
                canary_rollbacks=self.canary_rollbacks,
                requests_shed=self.requests_shed,
                leases_expired=self.leases_expired,
                breaker_trips=self.breaker_trips,
                degraded_entries=self.degraded_entries,
            )

    def summary(self) -> str:
        snap = self.snapshot()
        parts = []
        for loc in sorted(snap.locations, key=self.rank):
            stats = snap.locations[loc]
            parts.append(
                f"{loc}: {stats.loads} loads, {stats.bytes_loaded} B, "
                f"{stats.seconds:.3f}s"
            )
        parts.append(f"fallbacks: {snap.fallbacks}, misses: {snap.misses}")
        if snap.retries or snap.failovers or snap.corruptions:
            parts.append(
                f"retries: {snap.retries}, failovers: {snap.failovers}, "
                f"corruptions: {snap.corruptions}"
            )
        if snap.recoveries or snap.notification_gaps or snap.stale_fallbacks:
            parts.append(
                f"recoveries: {snap.recoveries} ({snap.replayed_ops} ops), "
                f"gaps: {snap.notification_gaps}, "
                f"stale fallbacks: {snap.stale_fallbacks}, "
                f"swaps rejected: {snap.swaps_rejected}"
            )
        if snap.canary_promotions or snap.canary_rollbacks:
            parts.append(
                f"rollout: {snap.canary_promotions} promotions, "
                f"{snap.canary_rollbacks} rollbacks"
            )
        if (
            snap.requests_shed or snap.leases_expired
            or snap.breaker_trips or snap.degraded_entries
        ):
            parts.append(
                f"overload: {snap.requests_shed} shed, "
                f"{snap.leases_expired} leases expired, "
                f"{snap.breaker_trips} breaker trips, "
                f"{snap.degraded_entries} degraded entries"
            )
        if snap.bytes_total:
            parts.append(
                f"wire: {snap.bytes_on_wire}/{snap.bytes_total} B "
                f"(dedup {snap.bytes_saved_dedup} B @ "
                f"{snap.dedup_hit_ratio:.0%} hit, "
                f"codec {snap.bytes_saved_compression} B; "
                f"{snap.delta_hits} delta, {snap.delta_fallbacks} fallback)"
            )
        return "; ".join(parts)
