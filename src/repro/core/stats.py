"""Stats Manager: load-source accounting (paper Fig. 3, optional).

The architecture figure lists an optional *Stats Manager* holding
"cached models on each producer ... used when selecting where to load
the model".  :class:`StatsManager` implements that role for the Model
Weights Handler's location-aware load path: it records, per location,
how many loads were served, the simulated bytes and time spent, and how
often the preferred (cheapest) replica was missing so the load fell back
to a slower tier.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["LocationStats", "StatsManager", "LOCATION_RANK"]

#: Cheapest-first order of checkpoint locations (the load path prefers
#: the fastest tier that still holds the replica).
LOCATION_RANK: Dict[str, int] = {"gpu": 0, "host_dram": 1, "pfs": 2}


@dataclass
class LocationStats:
    """Counters for one location."""

    loads: int = 0
    bytes_loaded: int = 0
    seconds: float = 0.0


class StatsManager:
    """Thread-safe load-source counters."""

    def __init__(self):
        self._lock = threading.Lock()
        self._per_location: Dict[str, LocationStats] = {}
        self.fallbacks = 0   # preferred replica missing, used a slower one
        self.misses = 0      # no replica present anywhere

    def rank(self, location: str) -> int:
        return LOCATION_RANK.get(location, len(LOCATION_RANK))

    def order(self, replicas) -> Tuple[str, ...]:
        """Replicas sorted cheapest-first."""
        return tuple(sorted(replicas, key=self.rank))

    # ------------------------------------------------------------------
    def record_load(
        self,
        location: str,
        nbytes: int,
        seconds: float,
        fallback: bool = False,
    ) -> None:
        with self._lock:
            stats = self._per_location.setdefault(location, LocationStats())
            stats.loads += 1
            stats.bytes_loaded += int(nbytes)
            stats.seconds += float(seconds)
            if fallback:
                self.fallbacks += 1

    def record_miss(self) -> None:
        with self._lock:
            self.misses += 1

    # ------------------------------------------------------------------
    def loads_from(self, location: str) -> int:
        with self._lock:
            stats = self._per_location.get(location)
            return stats.loads if stats else 0

    def snapshot(self) -> Dict[str, LocationStats]:
        with self._lock:
            return {
                loc: LocationStats(s.loads, s.bytes_loaded, s.seconds)
                for loc, s in self._per_location.items()
            }

    def summary(self) -> str:
        parts = []
        for loc in sorted(self._per_location, key=self.rank):
            stats = self._per_location[loc]
            parts.append(
                f"{loc}: {stats.loads} loads, {stats.bytes_loaded} B, "
                f"{stats.seconds:.3f}s"
            )
        parts.append(f"fallbacks: {self.fallbacks}, misses: {self.misses}")
        return "; ".join(parts)
