"""Publish-subscribe notification module.

Instead of the fixed-interval polling that TensorFlow-Serving and Triton
use to watch a model repository (minimum ~1 ms poll interval, plus the load
polling puts on the storage system), Viper pushes an update message to
subscribed consumers the moment a new checkpoint is published (paper §4.4,
"less than 1 ms notification latency").

:class:`NotificationBroker` reproduces the Redis pub/sub semantics
in-process: topics, fan-out to all current subscribers, per-subscriber
FIFO queues, and fire-and-forget publishes.  Delivery latency is charged
as simulated time on each message (`PUSH_LATENCY`), so the workflow layer
can compare push-based discovery against polling baselines quantitatively.

Exactly-once discovery additions (crash recovery):

- every publish carries a **per-topic monotonic sequence number**, and the
  broker retains the last notification per topic;
- subscriber queues may be **bounded** (``queue_max``): on overflow the
  oldest message is coalesced away — Viper consumers only ever want the
  latest model, so dropping stale versions loses nothing but is *counted*;
- a consumer that restarts calls :meth:`NotificationBroker.resubscribe`
  with the last sequence number it consumed.  A mismatch against the
  topic's current sequence (missed publishes, or a broker restart that
  reset the counter) flags the new subscription ``needs_catchup`` so the
  consumer performs one metadata catch-up read instead of trusting the
  push stream; the retained notification is re-delivered so the happy
  path converges without any polling.
"""

from __future__ import annotations

import collections
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import NotificationError
from repro.obs.metrics import NULL_METRICS

__all__ = [
    "Notification",
    "Subscription",
    "NotificationBroker",
    "PUSH_LATENCY",
    "QUARANTINE_EVENT",
    "is_quarantine",
]

#: Simulated publish->deliver latency (paper: "less than 1 ms").
PUSH_LATENCY = 0.0005

#: ``payload["event"]`` marker on a quarantine fan-out: the named version
#: was condemned by a rollout controller and peers must drop any canary
#: they hold for it (``payload["reason"]`` carries the reason code).
#: Ordinary update notifications carry no ``event`` key.
QUARANTINE_EVENT = "quarantine"


def is_quarantine(note: "Notification") -> bool:
    """True when ``note`` announces a quarantine, not a new version."""
    return note.payload.get("event") == QUARANTINE_EVENT


@dataclass(frozen=True)
class Notification:
    """One update message: which model, which version, where it lives."""

    topic: str
    model_name: str
    version: int
    location: str
    published_at: float   # simulated publish timestamp
    deliver_at: float     # published_at + PUSH_LATENCY
    payload: Dict[str, Any] = field(default_factory=dict)
    #: Per-topic monotonic sequence number (1-based; 0 = unsequenced,
    #: for notifications constructed outside a broker).
    seq: int = 0
    #: Lineage trace header carried from the publishing handler (see
    #: :meth:`repro.obs.lineage.TraceContext.to_header`); empty when the
    #: publisher had no lineage armed.
    trace_ctx: str = ""


class Subscription:
    """A consumer's handle on a topic: a FIFO of notifications.

    Supports both blocking :meth:`get` (live mode — the consumer's update
    thread parks here) and non-blocking :meth:`poll` (DES mode).
    An optional callback fires synchronously on publish for push-driven
    consumers.

    With ``maxlen > 0`` the queue is bounded: a push that would overflow
    drops the oldest queued *ordinary* message instead (counted in
    :attr:`coalesced`).  Quarantine events are never the dropped
    message — a full queue must not silently discard a peer-rollback
    order — so when everything queued is a quarantine event the queue
    temporarily exceeds ``maxlen`` (bounded by the number of condemned
    versions, which retention keeps small).  Consuming a notification
    whose ``seq`` is not the successor of the last consumed one records
    a **gap** and sets :attr:`needs_catchup`, telling the consumer its
    view of the topic is no longer contiguous and one metadata catch-up
    read is due.
    """

    def __init__(
        self,
        topic: str,
        callback: Optional[Callable[[Notification], None]] = None,
        metrics=None,
        maxlen: int = 0,
        member: str = "",
    ):
        self.topic = topic
        self.callback = callback
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.maxlen = int(maxlen)
        #: Lease identity when the broker runs a membership registry
        #: (empty = anonymous, never lease-evicted).
        self.member = member
        self._cond = threading.Condition()
        # (notification, wall-clock push time) pairs, FIFO, so get/poll
        # can report the real publish->consume delivery delay.
        self._items: Deque[Tuple[Notification, float]] = collections.deque()
        self._closed = False
        self.delivered = 0
        self.coalesced = 0
        self.gaps = 0
        #: Highest sequence number consumed (or reconciled on resubscribe).
        self.last_seq = 0
        self.needs_catchup = False
        #: Set when the broker evicted this subscription (lease expiry or
        #: slow-consumer escalation) and reclaimed its queue; the owning
        #: consumer must ``resubscribe`` and catch up.
        self.evicted = False
        self.evict_reason = ""
        #: Consecutive pushes observed with the queue at its high
        #: watermark — the broker's slow-consumer signal.
        self.hot_pushes = 0

    @property
    def pending(self) -> int:
        """Messages queued but not yet consumed."""
        with self._cond:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def _push(self, note: Notification) -> None:
        with self._cond:
            if self._closed:
                return
            if self.maxlen > 0 and len(self._items) >= self.maxlen:
                # Bounded queue: coalesce toward the newest messages.  A
                # Viper consumer only ever loads the latest model, so the
                # dropped (older) ordinary notification carries no
                # information the surviving ones don't — but the drop
                # creates a seq gap the consumer will observe and count.
                # Quarantine orders are exempt: dropping one would lose a
                # peer rollback, so the oldest *ordinary* message goes.
                for i, (queued, _pushed) in enumerate(self._items):
                    if not is_quarantine(queued):
                        del self._items[i]
                        self.coalesced += 1
                        self.metrics.counter(
                            "notifications_coalesced_total", topic=self.topic
                        ).inc()
                        break
            if self.maxlen > 0 and len(self._items) + 1 >= self.maxlen:
                # Queue sits at (or past) its high watermark after this
                # push: one more tick toward slow-consumer escalation.
                self.hot_pushes += 1
            else:
                self.hot_pushes = 0
            self._items.append((note, time.perf_counter()))
            self.delivered += 1
            self._cond.notify_all()
        if self.callback is not None:
            self.callback(note)

    def _observe_delivery(self, note: Notification, pushed_wall: float) -> None:
        self.metrics.histogram(
            "notification_delivery_wall_seconds", topic=self.topic
        ).observe(time.perf_counter() - pushed_wall)
        self.metrics.histogram(
            "notification_delivery_sim_seconds", topic=self.topic
        ).observe(note.deliver_at - note.published_at)
        self.metrics.counter(
            "notifications_consumed_total", topic=self.topic
        ).inc()
        if note.seq:
            if self.last_seq and note.seq > self.last_seq + 1:
                self.gaps += 1
                self.needs_catchup = True
                self.metrics.counter(
                    "notification_gaps_total", topic=self.topic
                ).inc()
            if note.seq > self.last_seq:
                self.last_seq = note.seq

    def get(self, timeout: Optional[float] = None) -> Notification:
        """Block until the next notification arrives."""
        with self._cond:
            if not self._items:
                if self._closed:
                    raise NotificationError(
                        f"subscription to {self.topic!r} is closed"
                    )
                self._cond.wait_for(
                    lambda: self._items or self._closed, timeout
                )
            if not self._items:
                if self._closed:
                    raise NotificationError(
                        f"subscription to {self.topic!r} closed"
                    )
                raise NotificationError(
                    f"no notification on {self.topic!r} within {timeout}s"
                )
            note, pushed_wall = self._items.popleft()
        self._observe_delivery(note, pushed_wall)
        return note

    def poll(self) -> Optional[Notification]:
        """Non-blocking fetch; None when the queue is empty."""
        with self._cond:
            if not self._items:
                return None
            note, pushed_wall = self._items.popleft()
        self._observe_delivery(note, pushed_wall)
        return note

    def drain(self) -> List[Notification]:
        """Fetch everything currently queued (newest model wins logic is
        the caller's: Viper consumers typically keep only the last one)."""
        out: List[Notification] = []
        while True:
            note = self.poll()
            if note is None:
                return out
            out.append(note)

    def evict(self, reason: str) -> int:
        """Broker-side eviction: reclaim the queue, mark, and close.

        Returns the number of reclaimed (still-queued) messages.  The
        owning consumer observes :attr:`evicted` on its next poll and
        re-joins through ``resubscribe`` — which flags the catch-up read
        that replaces everything reclaimed here.
        """
        with self._cond:
            reclaimed = len(self._items)
            self._items.clear()
            self.evicted = True
            self.evict_reason = reason
            self.needs_catchup = True
            self._closed = True
            self._cond.notify_all()
        return reclaimed

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()


class NotificationBroker:
    """Topic-based fan-out broker (the Redis pub/sub stand-in).

    With ``lease_ttl`` set the broker runs a
    :class:`~repro.resilience.health.LeaseRegistry`: each named
    subscriber holds a lease, heartbeats renew it (consumers heartbeat
    through :meth:`heartbeat` on every update poll), and every publish
    sweeps the table — members silent past the TTL are **evicted**:
    their queues reclaimed, their subscriptions closed and flagged for a
    ``resubscribe`` catch-up on return.  So one dead consumer bounds the
    broker state it can strand at one queue, for one TTL.

    ``slow_consumer_cycles`` escalates the bounded-queue coalescing: a
    subscriber whose queue sits at its high watermark for that many
    consecutive pushes is evicted like a dead one (reason
    ``"slow_consumer"``) — it was consuming broker CPU and memory on
    every publish while falling ever further behind.
    """

    def __init__(
        self,
        push_latency: float = PUSH_LATENCY,
        *,
        metrics=None,
        queue_max: int = 0,
        lease_ttl: Optional[float] = None,
        slow_consumer_cycles: int = 0,
        stats=None,
    ):
        if push_latency < 0:
            raise NotificationError("push latency must be non-negative")
        if queue_max < 0:
            raise NotificationError("queue_max must be non-negative")
        if slow_consumer_cycles < 0:
            raise NotificationError("slow_consumer_cycles must be non-negative")
        if slow_consumer_cycles and not queue_max:
            raise NotificationError(
                "slow_consumer_cycles requires a bounded queue (queue_max > 0)"
            )
        self.push_latency = push_latency
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.stats = stats
        self.queue_max = int(queue_max)
        self.slow_consumer_cycles = int(slow_consumer_cycles)
        self._lock = threading.RLock()
        self._subs: Dict[str, List[Subscription]] = {}
        self._seqs: Dict[str, int] = {}
        self._retained: Dict[str, Notification] = {}
        self.published = 0
        self.evictions = 0
        self.reclaimed_messages = 0
        self.health = None
        if lease_ttl is not None:
            from repro.resilience.health import LeaseRegistry

            self.health = LeaseRegistry(
                lease_ttl, metrics=self.metrics, stats=stats
            )

    def subscribe(
        self,
        topic: str,
        callback: Optional[Callable[[Notification], None]] = None,
        *,
        member: str = "",
        now: float = 0.0,
    ) -> Subscription:
        sub = Subscription(
            topic, callback, metrics=self.metrics, maxlen=self.queue_max,
            member=member,
        )
        with self._lock:
            self._subs.setdefault(topic, []).append(sub)
            sub.last_seq = self._seqs.get(topic, 0)
        if self.health is not None and member:
            self.health.grant(member, now)
        return sub

    def resubscribe(
        self,
        topic: str,
        since: int,
        callback: Optional[Callable[[Notification], None]] = None,
        *,
        member: str = "",
        now: float = 0.0,
    ) -> Subscription:
        """Re-attach after a restart, reconciling sequence numbers.

        ``since`` is the last sequence number the consumer consumed in
        its previous incarnation.  If the topic's current sequence
        differs — publishes happened while the consumer was dead, *or*
        the broker itself restarted and its counter regressed — the new
        subscription is flagged ``needs_catchup`` (one metadata read is
        required) and the gap is counted.  The retained notification, if
        newer than ``since``, is re-delivered so a live broker's latest
        model reaches the consumer without any polling.
        """
        sub = Subscription(
            topic, callback, metrics=self.metrics, maxlen=self.queue_max,
            member=member,
        )
        with self._lock:
            current = self._seqs.get(topic, 0)
            retained = self._retained.get(topic)
            self._subs.setdefault(topic, []).append(sub)
        if current != int(since):
            sub.gaps += 1
            sub.needs_catchup = True
            self.metrics.counter("notification_gaps_total", topic=topic).inc()
        sub.last_seq = min(int(since), current)
        if retained is not None and retained.seq > sub.last_seq:
            sub._push(retained)
        if self.health is not None and member:
            # Re-granting revives an evicted member; the seq reconciliation
            # above already decided whether it owes a catch-up read.
            self.health.grant(member, now)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            subs = self._subs.get(sub.topic, [])
            if sub in subs:
                subs.remove(sub)
        if self.health is not None and sub.member:
            self.health.release(sub.member, 0.0)
        sub.close()

    # -- liveness ------------------------------------------------------
    def heartbeat(self, member: str, now: float) -> bool:
        """Renew ``member``'s lease; False when leases are off or lapsed."""
        if self.health is None or not member:
            return False
        return self.health.heartbeat(member, now)

    def expire_leases(self, now: float) -> List[str]:
        """Sweep the lease table at ``now`` and evict lapsed members.

        Eviction reclaims the member's queued notifications (broker
        memory), closes its subscriptions, and flags them for catch-up.
        Returns the members evicted by this sweep (idempotent — a second
        sweep at the same ``now`` returns nothing).
        """
        if self.health is None:
            return []
        lapsed = self.health.expire(now)
        for member in lapsed:
            self._evict_member(member, "ttl")
        return lapsed

    def _evict_member(self, member: str, reason: str) -> None:
        with self._lock:
            doomed = [
                sub
                for subs in self._subs.values()
                for sub in subs
                if sub.member == member
            ]
            for subs in self._subs.values():
                subs[:] = [s for s in subs if s.member != member]
        for sub in doomed:
            self.reclaimed_messages += sub.evict(reason)
            self.evictions += 1
            self.metrics.counter(
                "notifications_evicted_total", reason=reason
            ).inc()

    def current_seq(self, topic: str) -> int:
        """The topic's latest assigned sequence number (0 = never published)."""
        with self._lock:
            return self._seqs.get(topic, 0)

    def retained(self, topic: str) -> Optional[Notification]:
        """The last notification published on ``topic`` (None if none)."""
        with self._lock:
            return self._retained.get(topic)

    def publish(
        self,
        topic: str,
        *,
        model_name: str,
        version: int,
        location: str,
        now: float,
        payload: Optional[Dict[str, Any]] = None,
        trace_ctx: str = "",
    ) -> Notification:
        """Fan a notification out to every subscriber of ``topic``.

        Returns the notification (with its simulated delivery timestamp)
        even when there are no subscribers — publishes are fire-and-forget,
        matching Redis semantics.
        """
        with self._lock:
            seq = self._seqs.get(topic, 0) + 1
            self._seqs[topic] = seq
            note = Notification(
                topic=topic,
                model_name=model_name,
                version=version,
                location=location,
                published_at=now,
                deliver_at=now + self.push_latency,
                payload=dict(payload or {}),
                seq=seq,
                trace_ctx=trace_ctx,
            )
            self._retained[topic] = note
            subs = list(self._subs.get(topic, ()))
            self.published += 1
        self.metrics.counter("notifications_published_total", topic=topic).inc()
        slow: List[Subscription] = []
        for sub in subs:
            sub._push(note)
            if (
                self.slow_consumer_cycles
                and sub.member
                and self.health is not None
                and sub.hot_pushes >= self.slow_consumer_cycles
            ):
                slow.append(sub)
        for sub in slow:
            # Coalescing wasn't enough: the queue has sat at its high
            # watermark for `slow_consumer_cycles` straight publishes.
            # Escalate to eviction — the member rejoins via resubscribe
            # with one catch-up read instead of draining a stale backlog.
            if self.health.evict(sub.member, now, "slow_consumer"):
                self._evict_member(sub.member, "slow_consumer")
        # Publish doubles as the liveness sweep: dead subscribers are the
        # ones that would otherwise accumulate queue memory right now.
        self.expire_leases(now)
        return note

    def subscriber_count(self, topic: str) -> int:
        with self._lock:
            return len(self._subs.get(topic, ()))

    def pending_total(self) -> int:
        """Notifications queued across every live subscription.

        This is the broker's fan-out memory; the overload chaos harness
        asserts it stays bounded by ``queue_max * live subscribers`` even
        with dead and stalled consumers in the fleet.
        """
        with self._lock:
            subs = [s for lst in self._subs.values() for s in lst]
        return sum(s.pending for s in subs)

    def close(self) -> None:
        with self._lock:
            all_subs = [s for subs in self._subs.values() for s in subs]
            self._subs.clear()
        for sub in all_subs:
            sub.close()
