"""Publish-subscribe notification module.

Instead of the fixed-interval polling that TensorFlow-Serving and Triton
use to watch a model repository (minimum ~1 ms poll interval, plus the load
polling puts on the storage system), Viper pushes an update message to
subscribed consumers the moment a new checkpoint is published (paper §4.4,
"less than 1 ms notification latency").

:class:`NotificationBroker` reproduces the Redis pub/sub semantics
in-process: topics, fan-out to all current subscribers, per-subscriber
FIFO queues, and fire-and-forget publishes.  Delivery latency is charged
as simulated time on each message (`PUSH_LATENCY`), so the workflow layer
can compare push-based discovery against polling baselines quantitatively.
"""

from __future__ import annotations

import collections
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import NotificationError
from repro.obs.metrics import NULL_METRICS

__all__ = ["Notification", "Subscription", "NotificationBroker", "PUSH_LATENCY"]

#: Simulated publish->deliver latency (paper: "less than 1 ms").
PUSH_LATENCY = 0.0005


@dataclass(frozen=True)
class Notification:
    """One update message: which model, which version, where it lives."""

    topic: str
    model_name: str
    version: int
    location: str
    published_at: float   # simulated publish timestamp
    deliver_at: float     # published_at + PUSH_LATENCY
    payload: Dict[str, Any] = field(default_factory=dict)


class Subscription:
    """A consumer's handle on a topic: a FIFO of notifications.

    Supports both blocking :meth:`get` (live mode — the consumer's update
    thread parks here) and non-blocking :meth:`poll` (DES mode).
    An optional callback fires synchronously on publish for push-driven
    consumers.
    """

    def __init__(
        self,
        topic: str,
        callback: Optional[Callable[[Notification], None]] = None,
        metrics=None,
    ):
        self.topic = topic
        self.callback = callback
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._queue: "queue.Queue[Notification]" = queue.Queue()
        # Wall-clock push timestamps, FIFO like the queue itself, so
        # get/poll can report the real publish->consume delivery delay.
        self._push_walls: "collections.deque[float]" = collections.deque()
        self._closed = False
        self.delivered = 0

    def _push(self, note: Notification) -> None:
        if self._closed:
            return
        self._push_walls.append(time.perf_counter())
        self._queue.put(note)
        self.delivered += 1
        if self.callback is not None:
            self.callback(note)

    def _observe_delivery(self, note: Notification) -> None:
        try:
            pushed_wall = self._push_walls.popleft()
        except IndexError:
            return
        self.metrics.histogram(
            "notification_delivery_wall_seconds", topic=self.topic
        ).observe(time.perf_counter() - pushed_wall)
        self.metrics.histogram(
            "notification_delivery_sim_seconds", topic=self.topic
        ).observe(note.deliver_at - note.published_at)
        self.metrics.counter(
            "notifications_consumed_total", topic=self.topic
        ).inc()

    def get(self, timeout: Optional[float] = None) -> Notification:
        """Block until the next notification arrives."""
        if self._closed and self._queue.empty():
            raise NotificationError(f"subscription to {self.topic!r} is closed")
        try:
            note = self._queue.get(timeout=timeout)
        except queue.Empty:
            raise NotificationError(
                f"no notification on {self.topic!r} within {timeout}s"
            ) from None
        if note is _CLOSE:
            raise NotificationError(f"subscription to {self.topic!r} closed")
        self._observe_delivery(note)
        return note

    def poll(self) -> Optional[Notification]:
        """Non-blocking fetch; None when the queue is empty."""
        try:
            note = self._queue.get_nowait()
        except queue.Empty:
            return None
        if note is _CLOSE:
            return None
        self._observe_delivery(note)
        return note

    def drain(self) -> List[Notification]:
        """Fetch everything currently queued (newest model wins logic is
        the caller's: Viper consumers typically keep only the last one)."""
        out: List[Notification] = []
        while True:
            note = self.poll()
            if note is None:
                return out
            out.append(note)

    def close(self) -> None:
        self._closed = True
        self._queue.put(_CLOSE)


_CLOSE = object()  # type: ignore[assignment]


class NotificationBroker:
    """Topic-based fan-out broker (the Redis pub/sub stand-in)."""

    def __init__(self, push_latency: float = PUSH_LATENCY, *, metrics=None):
        if push_latency < 0:
            raise NotificationError("push latency must be non-negative")
        self.push_latency = push_latency
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._lock = threading.RLock()
        self._subs: Dict[str, List[Subscription]] = {}
        self.published = 0

    def subscribe(
        self,
        topic: str,
        callback: Optional[Callable[[Notification], None]] = None,
    ) -> Subscription:
        sub = Subscription(topic, callback, metrics=self.metrics)
        with self._lock:
            self._subs.setdefault(topic, []).append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            subs = self._subs.get(sub.topic, [])
            if sub in subs:
                subs.remove(sub)
        sub.close()

    def publish(
        self,
        topic: str,
        *,
        model_name: str,
        version: int,
        location: str,
        now: float,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Notification:
        """Fan a notification out to every subscriber of ``topic``.

        Returns the notification (with its simulated delivery timestamp)
        even when there are no subscribers — publishes are fire-and-forget,
        matching Redis semantics.
        """
        note = Notification(
            topic=topic,
            model_name=model_name,
            version=version,
            location=location,
            published_at=now,
            deliver_at=now + self.push_latency,
            payload=dict(payload or {}),
        )
        with self._lock:
            subs = list(self._subs.get(topic, ()))
            self.published += 1
        self.metrics.counter("notifications_published_total", topic=topic).inc()
        for sub in subs:
            sub._push(note)
        return note

    def subscriber_count(self, topic: str) -> int:
        with self._lock:
            return len(self._subs.get(topic, ()))

    def close(self) -> None:
        with self._lock:
            all_subs = [s for subs in self._subs.values() for s in subs]
            self._subs.clear()
        for sub in all_subs:
            sub.close()
