"""Publish-subscribe notification module.

Instead of the fixed-interval polling that TensorFlow-Serving and Triton
use to watch a model repository (minimum ~1 ms poll interval, plus the load
polling puts on the storage system), Viper pushes an update message to
subscribed consumers the moment a new checkpoint is published (paper §4.4,
"less than 1 ms notification latency").

:class:`NotificationBroker` reproduces the Redis pub/sub semantics
in-process: topics, fan-out to all current subscribers, per-subscriber
FIFO queues, and fire-and-forget publishes.  Delivery latency is charged
as simulated time on each message (`PUSH_LATENCY`), so the workflow layer
can compare push-based discovery against polling baselines quantitatively.

Exactly-once discovery additions (crash recovery):

- every publish carries a **per-topic monotonic sequence number**, and the
  broker retains the last notification per topic;
- subscriber queues may be **bounded** (``queue_max``): on overflow the
  oldest message is coalesced away — Viper consumers only ever want the
  latest model, so dropping stale versions loses nothing but is *counted*;
- a consumer that restarts calls :meth:`NotificationBroker.resubscribe`
  with the last sequence number it consumed.  A mismatch against the
  topic's current sequence (missed publishes, or a broker restart that
  reset the counter) flags the new subscription ``needs_catchup`` so the
  consumer performs one metadata catch-up read instead of trusting the
  push stream; the retained notification is re-delivered so the happy
  path converges without any polling.
"""

from __future__ import annotations

import collections
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import NotificationError
from repro.obs.metrics import NULL_METRICS

__all__ = [
    "Notification",
    "Subscription",
    "NotificationBroker",
    "PUSH_LATENCY",
    "QUARANTINE_EVENT",
    "is_quarantine",
]

#: Simulated publish->deliver latency (paper: "less than 1 ms").
PUSH_LATENCY = 0.0005

#: ``payload["event"]`` marker on a quarantine fan-out: the named version
#: was condemned by a rollout controller and peers must drop any canary
#: they hold for it (``payload["reason"]`` carries the reason code).
#: Ordinary update notifications carry no ``event`` key.
QUARANTINE_EVENT = "quarantine"


def is_quarantine(note: "Notification") -> bool:
    """True when ``note`` announces a quarantine, not a new version."""
    return note.payload.get("event") == QUARANTINE_EVENT


@dataclass(frozen=True)
class Notification:
    """One update message: which model, which version, where it lives."""

    topic: str
    model_name: str
    version: int
    location: str
    published_at: float   # simulated publish timestamp
    deliver_at: float     # published_at + PUSH_LATENCY
    payload: Dict[str, Any] = field(default_factory=dict)
    #: Per-topic monotonic sequence number (1-based; 0 = unsequenced,
    #: for notifications constructed outside a broker).
    seq: int = 0
    #: Lineage trace header carried from the publishing handler (see
    #: :meth:`repro.obs.lineage.TraceContext.to_header`); empty when the
    #: publisher had no lineage armed.
    trace_ctx: str = ""


class Subscription:
    """A consumer's handle on a topic: a FIFO of notifications.

    Supports both blocking :meth:`get` (live mode — the consumer's update
    thread parks here) and non-blocking :meth:`poll` (DES mode).
    An optional callback fires synchronously on publish for push-driven
    consumers.

    With ``maxlen > 0`` the queue is bounded: a push that would overflow
    drops the oldest queued message instead (counted in
    :attr:`coalesced`).  Consuming a notification whose ``seq`` is not
    the successor of the last consumed one records a **gap** and sets
    :attr:`needs_catchup`, telling the consumer its view of the topic is
    no longer contiguous and one metadata catch-up read is due.
    """

    def __init__(
        self,
        topic: str,
        callback: Optional[Callable[[Notification], None]] = None,
        metrics=None,
        maxlen: int = 0,
    ):
        self.topic = topic
        self.callback = callback
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.maxlen = int(maxlen)
        self._cond = threading.Condition()
        # (notification, wall-clock push time) pairs, FIFO, so get/poll
        # can report the real publish->consume delivery delay.
        self._items: Deque[Tuple[Notification, float]] = collections.deque()
        self._closed = False
        self.delivered = 0
        self.coalesced = 0
        self.gaps = 0
        #: Highest sequence number consumed (or reconciled on resubscribe).
        self.last_seq = 0
        self.needs_catchup = False

    @property
    def pending(self) -> int:
        """Messages queued but not yet consumed."""
        with self._cond:
            return len(self._items)

    def _push(self, note: Notification) -> None:
        with self._cond:
            if self._closed:
                return
            if self.maxlen > 0 and len(self._items) >= self.maxlen:
                # Bounded queue: coalesce toward the newest messages.  A
                # Viper consumer only ever loads the latest model, so the
                # dropped (older) notification carries no information the
                # surviving ones don't — but the drop creates a seq gap
                # the consumer will observe and count.
                self._items.popleft()
                self.coalesced += 1
                self.metrics.counter(
                    "notifications_coalesced_total", topic=self.topic
                ).inc()
            self._items.append((note, time.perf_counter()))
            self.delivered += 1
            self._cond.notify_all()
        if self.callback is not None:
            self.callback(note)

    def _observe_delivery(self, note: Notification, pushed_wall: float) -> None:
        self.metrics.histogram(
            "notification_delivery_wall_seconds", topic=self.topic
        ).observe(time.perf_counter() - pushed_wall)
        self.metrics.histogram(
            "notification_delivery_sim_seconds", topic=self.topic
        ).observe(note.deliver_at - note.published_at)
        self.metrics.counter(
            "notifications_consumed_total", topic=self.topic
        ).inc()
        if note.seq:
            if self.last_seq and note.seq > self.last_seq + 1:
                self.gaps += 1
                self.needs_catchup = True
                self.metrics.counter(
                    "notification_gaps_total", topic=self.topic
                ).inc()
            if note.seq > self.last_seq:
                self.last_seq = note.seq

    def get(self, timeout: Optional[float] = None) -> Notification:
        """Block until the next notification arrives."""
        with self._cond:
            if not self._items:
                if self._closed:
                    raise NotificationError(
                        f"subscription to {self.topic!r} is closed"
                    )
                self._cond.wait_for(
                    lambda: self._items or self._closed, timeout
                )
            if not self._items:
                if self._closed:
                    raise NotificationError(
                        f"subscription to {self.topic!r} closed"
                    )
                raise NotificationError(
                    f"no notification on {self.topic!r} within {timeout}s"
                )
            note, pushed_wall = self._items.popleft()
        self._observe_delivery(note, pushed_wall)
        return note

    def poll(self) -> Optional[Notification]:
        """Non-blocking fetch; None when the queue is empty."""
        with self._cond:
            if not self._items:
                return None
            note, pushed_wall = self._items.popleft()
        self._observe_delivery(note, pushed_wall)
        return note

    def drain(self) -> List[Notification]:
        """Fetch everything currently queued (newest model wins logic is
        the caller's: Viper consumers typically keep only the last one)."""
        out: List[Notification] = []
        while True:
            note = self.poll()
            if note is None:
                return out
            out.append(note)

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()


class NotificationBroker:
    """Topic-based fan-out broker (the Redis pub/sub stand-in)."""

    def __init__(
        self,
        push_latency: float = PUSH_LATENCY,
        *,
        metrics=None,
        queue_max: int = 0,
    ):
        if push_latency < 0:
            raise NotificationError("push latency must be non-negative")
        if queue_max < 0:
            raise NotificationError("queue_max must be non-negative")
        self.push_latency = push_latency
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.queue_max = int(queue_max)
        self._lock = threading.RLock()
        self._subs: Dict[str, List[Subscription]] = {}
        self._seqs: Dict[str, int] = {}
        self._retained: Dict[str, Notification] = {}
        self.published = 0

    def subscribe(
        self,
        topic: str,
        callback: Optional[Callable[[Notification], None]] = None,
    ) -> Subscription:
        sub = Subscription(
            topic, callback, metrics=self.metrics, maxlen=self.queue_max
        )
        with self._lock:
            self._subs.setdefault(topic, []).append(sub)
            sub.last_seq = self._seqs.get(topic, 0)
        return sub

    def resubscribe(
        self,
        topic: str,
        since: int,
        callback: Optional[Callable[[Notification], None]] = None,
    ) -> Subscription:
        """Re-attach after a restart, reconciling sequence numbers.

        ``since`` is the last sequence number the consumer consumed in
        its previous incarnation.  If the topic's current sequence
        differs — publishes happened while the consumer was dead, *or*
        the broker itself restarted and its counter regressed — the new
        subscription is flagged ``needs_catchup`` (one metadata read is
        required) and the gap is counted.  The retained notification, if
        newer than ``since``, is re-delivered so a live broker's latest
        model reaches the consumer without any polling.
        """
        sub = Subscription(
            topic, callback, metrics=self.metrics, maxlen=self.queue_max
        )
        with self._lock:
            current = self._seqs.get(topic, 0)
            retained = self._retained.get(topic)
            self._subs.setdefault(topic, []).append(sub)
        if current != int(since):
            sub.gaps += 1
            sub.needs_catchup = True
            self.metrics.counter("notification_gaps_total", topic=topic).inc()
        sub.last_seq = min(int(since), current)
        if retained is not None and retained.seq > sub.last_seq:
            sub._push(retained)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            subs = self._subs.get(sub.topic, [])
            if sub in subs:
                subs.remove(sub)
        sub.close()

    def current_seq(self, topic: str) -> int:
        """The topic's latest assigned sequence number (0 = never published)."""
        with self._lock:
            return self._seqs.get(topic, 0)

    def retained(self, topic: str) -> Optional[Notification]:
        """The last notification published on ``topic`` (None if none)."""
        with self._lock:
            return self._retained.get(topic)

    def publish(
        self,
        topic: str,
        *,
        model_name: str,
        version: int,
        location: str,
        now: float,
        payload: Optional[Dict[str, Any]] = None,
        trace_ctx: str = "",
    ) -> Notification:
        """Fan a notification out to every subscriber of ``topic``.

        Returns the notification (with its simulated delivery timestamp)
        even when there are no subscribers — publishes are fire-and-forget,
        matching Redis semantics.
        """
        with self._lock:
            seq = self._seqs.get(topic, 0) + 1
            self._seqs[topic] = seq
            note = Notification(
                topic=topic,
                model_name=model_name,
                version=version,
                location=location,
                published_at=now,
                deliver_at=now + self.push_latency,
                payload=dict(payload or {}),
                seq=seq,
                trace_ctx=trace_ctx,
            )
            self._retained[topic] = note
            subs = list(self._subs.get(topic, ()))
            self.published += 1
        self.metrics.counter("notifications_published_total", topic=topic).inc()
        for sub in subs:
            sub._push(note)
        return note

    def subscriber_count(self, topic: str) -> int:
        with self._lock:
            return len(self._subs.get(topic, ()))

    def close(self) -> None:
        with self._lock:
            all_subs = [s for subs in self._subs.values() for s in subs]
            self._subs.clear()
        for sub in all_subs:
            sub.close()
