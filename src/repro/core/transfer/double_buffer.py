"""Consumer-side double buffering with an atomic swap (paper §4.2).

"The updated model is written to an alternative copy, while the primary
copy is used to serve inferences.  When the I/O to the alternative copy is
finished, then the primary copy and alternative copy are swapped
atomically, which has a negligible overhead that causes imperceptible
downtime."

:class:`DoubleBuffer` holds two slots.  Inference threads read the primary
through :meth:`acquire` (a constant-time reference grab under a lock held
for nanoseconds — never across an inference).  The update thread stages
into the alternate with :meth:`stage` and flips with :meth:`commit`.
Readers always see either the old or the new model, never a torn mix —
the invariant the property tests hammer on.

A third, optional **canary** slot carries a candidate version under
rollout evaluation.  It is deliberately separate from the alternate slot:
the alternate is a transient staging area consumed by :meth:`commit`,
while the canary serves live (fractional) traffic for as long as the
health gate deliberates, then is either promoted into the primary
(:meth:`promote_canary` — same atomic flip, same swap accounting) or
dropped (:meth:`drop_canary`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Generic, Optional, TypeVar

from repro.errors import ServingError
from repro.obs.freshness import NULL_FRESHNESS
from repro.obs.metrics import NULL_METRICS

__all__ = ["DoubleBuffer", "BufferSnapshot"]

T = TypeVar("T")


@dataclass(frozen=True)
class BufferSnapshot(Generic[T]):
    """What a reader sees: the model object and its version."""

    model: T
    version: int


class DoubleBuffer(Generic[T]):
    """Two model slots with an atomic primary/alternate swap."""

    def __init__(
        self,
        initial: T,
        version: int = 0,
        *,
        metrics=None,
        name: str = "model",
        freshness=None,
        owner: str = "",
    ):
        self._lock = threading.Lock()
        self._primary: BufferSnapshot[T] = BufferSnapshot(initial, version)
        self._alternate: Optional[BufferSnapshot[T]] = None
        self._canary: Optional[BufferSnapshot[T]] = None
        self._staging = False
        self._staged_wall = 0.0
        self.swaps = 0
        self.swaps_rejected = 0
        self.canary_promotions = 0
        self.canary_drops = 0
        self.metrics = metrics if metrics is not None else NULL_METRICS
        #: Freshness tracker + owning consumer name: stale rejections at
        #: the buffer feed the same staleness accounting as the server.
        self.freshness = freshness if freshness is not None else NULL_FRESHNESS
        self.owner = owner
        self._name = name
        self._m_swaps = self.metrics.counter("buffer_swaps_total", buffer=name)
        self._m_rejected = self.metrics.counter(
            "buffer_swaps_rejected_total", buffer=name
        )
        self._m_version = self.metrics.gauge("buffer_live_version", buffer=name)
        self._m_version.set(version)
        self._m_stage_to_commit = self.metrics.histogram(
            "buffer_stage_to_commit_wall_seconds", buffer=name
        )
        self._m_canary_version = self.metrics.gauge(
            "buffer_canary_version", buffer=name
        )
        self._m_canary_version.set(-1)
        self._m_canary_promotions = self.metrics.counter(
            "buffer_canary_promotions_total", buffer=name
        )
        self._m_canary_drops = self.metrics.counter(
            "buffer_canary_drops_total", buffer=name
        )

    # ------------------------------------------------------------------
    # Reader side (inference serving thread)
    # ------------------------------------------------------------------
    def acquire(self) -> BufferSnapshot[T]:
        """Grab the current primary; O(1) and effectively wait-free."""
        with self._lock:
            return self._primary

    @property
    def version(self) -> int:
        return self.acquire().version

    # ------------------------------------------------------------------
    # Writer side (model update thread)
    # ------------------------------------------------------------------
    def stage(self, model: T, version: int) -> None:
        """Write the new model into the alternate slot (slow I/O happens
        before this call; staging itself is just installing the object)."""
        error = None
        with self._lock:
            if version <= self._primary.version and self._alternate is None:
                # Stale update: a newer model is already live.  Viper keeps
                # only the latest (paper: memory channels "only buffer and
                # transfer the latest DNN model").
                error = ServingError(
                    f"stale stage: version {version} <= live "
                    f"{self._primary.version}"
                )
            elif self._alternate is not None and version <= self._alternate.version:
                error = ServingError(
                    f"stale stage: version {version} <= staged "
                    f"{self._alternate.version}"
                )
            else:
                self._alternate = BufferSnapshot(model, version)
                self._staging = True
                self._staged_wall = time.perf_counter()
        if error is not None:
            self.freshness.record_stale_rejection(self.owner, self._name)
            raise error

    def commit(self) -> BufferSnapshot[T]:
        """Atomically swap alternate into primary; returns the new primary."""
        with self._lock:
            if self._alternate is None:
                raise ServingError("commit() with nothing staged")
            self._primary = self._alternate
            # Keep the displaced model as the next staging target's slot;
            # its object can be reused by zero-copy loaders.
            self._alternate = None
            self._staging = False
            self.swaps += 1
            self._m_swaps.inc()
            self._m_version.set(self._primary.version)
            self._m_stage_to_commit.observe(time.perf_counter() - self._staged_wall)
            return self._primary

    def update(self, model: T, version: int) -> BufferSnapshot[T]:
        """Convenience: stage + commit in one call."""
        self.stage(model, version)
        return self.commit()

    # ------------------------------------------------------------------
    # Canary slot (rollout controller)
    # ------------------------------------------------------------------
    def stage_canary(self, model: T, version: int) -> None:
        """Install a candidate version into the canary slot.

        Same staleness discipline as :meth:`stage`: a candidate no newer
        than the live primary (or an already-staged canary) is rejected,
        and the rejection feeds stale-serve accounting.  A strictly newer
        candidate silently replaces an older one — Viper keeps only the
        latest model in flight.
        """
        error = None
        with self._lock:
            if version <= self._primary.version:
                error = ServingError(
                    f"stale canary: version {version} <= live "
                    f"{self._primary.version}"
                )
            elif self._canary is not None and version <= self._canary.version:
                error = ServingError(
                    f"stale canary: version {version} <= staged canary "
                    f"{self._canary.version}"
                )
            else:
                self._canary = BufferSnapshot(model, version)
        if error is not None:
            self.freshness.record_stale_rejection(self.owner, self._name)
            raise error
        self._m_canary_version.set(version)

    def acquire_canary(self) -> Optional[BufferSnapshot[T]]:
        """Grab the canary snapshot, or None when no candidate is staged."""
        with self._lock:
            return self._canary

    @property
    def canary_version(self) -> Optional[int]:
        snap = self.acquire_canary()
        return snap.version if snap is not None else None

    def promote_canary(self) -> BufferSnapshot[T]:
        """Atomically swap the canary into the primary; returns the
        displaced primary snapshot (its model object is reusable)."""
        with self._lock:
            if self._canary is None:
                raise ServingError("promote_canary() with no canary staged")
            if self._canary.version <= self._primary.version:
                # A direct commit of an even newer version raced us; the
                # candidate is obsolete, not promotable.
                stale = self._canary.version
                self._canary = None
                self.canary_drops += 1
                raise ServingError(
                    f"stale canary promote: version {stale} <= live "
                    f"{self._primary.version}"
                )
            displaced = self._primary
            self._primary = self._canary
            self._canary = None
            self.swaps += 1
            self.canary_promotions += 1
            self._m_swaps.inc()
            self._m_version.set(self._primary.version)
        self._m_canary_promotions.inc()
        self._m_canary_version.set(-1)
        return displaced

    def drop_canary(self) -> Optional[int]:
        """Discard the canary (rollback / supersede); returns its version
        or None when the slot was already empty."""
        with self._lock:
            if self._canary is None:
                return None
            version = self._canary.version
            self._canary = None
            self.canary_drops += 1
        self._m_canary_drops.inc()
        self._m_canary_version.set(-1)
        return version

    def record_rejection(self) -> None:
        """Count an update that was refused before reaching either slot
        (e.g. a corrupt load); the primary stays untouched by design."""
        with self._lock:
            self.swaps_rejected += 1
        self._m_rejected.inc()

    @property
    def staging(self) -> bool:
        with self._lock:
            return self._staging
