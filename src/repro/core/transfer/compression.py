"""Pluggable lossless compression codecs for the delta wire format.

"Reducing the GPU Memory Bottleneck with Lossless Compression for ML"
(PAPERS.md) observes that DNN tensor streams compress well losslessly —
exponent bytes repeat, fine-tuned weights cluster, and optimizer state
is highly structured.  The delta transfer path
(:mod:`repro.core.transfer.delta`) therefore compresses the *literal*
chunks of a recipe (the bytes that actually move) through one of these
codecs, chosen by ``ViperConfig(compression=...)``.

The registry is deliberately small and dependency-free:

- ``none`` — identity; the default, zero CPU cost;
- ``zlib`` — stdlib DEFLATE at a throughput-oriented level;
- ``lz4``  — registered only when the ``lz4`` package is importable
  (the container does not bake it in; the codec id is reserved so blobs
  written elsewhere still decode where the package exists).

Every codec is identified on the wire by a single stable byte
(:data:`CODEC_IDS`), so a recipe records per-literal which codec
produced it and a reader never guesses.  ``encode`` may return the
input unchanged when compression does not pay (the caller compares
lengths and keeps whichever is smaller, marking the op as ``none``).
"""

from __future__ import annotations

import zlib
from typing import Dict, Type

from repro.errors import ConfigurationError, IntegrityError

__all__ = [
    "Codec",
    "NullCodec",
    "ZlibCodec",
    "get_codec",
    "codec_for_id",
    "available_codecs",
    "CODEC_IDS",
]

#: Stable wire ids; never renumber (frames persisted in tiers/PFS
#: mirrors reference them).
CODEC_IDS: Dict[str, int] = {"none": 0, "zlib": 1, "lz4": 2}


class Codec:
    """Contract: ``decode(encode(data), len(data)) == data`` exactly."""

    name = "codec"

    @property
    def wire_id(self) -> int:
        return CODEC_IDS[self.name]

    def encode(self, data) -> bytes:
        raise NotImplementedError

    def decode(self, data, out_len: int) -> bytes:
        raise NotImplementedError


class NullCodec(Codec):
    """Identity codec: bytes pass through untouched."""

    name = "none"

    def encode(self, data) -> bytes:
        return bytes(data)

    def decode(self, data, out_len: int) -> bytes:
        blob = bytes(data)
        if len(blob) != out_len:
            raise IntegrityError(
                f"literal length mismatch: recipe says {out_len}, "
                f"frame carries {len(blob)}",
                expected=out_len,
                actual=len(blob),
            )
        return blob


class ZlibCodec(Codec):
    """Stdlib DEFLATE, tuned for throughput over ratio.

    Level 1 keeps the compress stage fast enough to overlap with the
    send lanes; checkpoint tensors that compress at all compress almost
    as well at level 1 as at level 6, at a fraction of the CPU cost.
    """

    name = "zlib"

    def __init__(self, level: int = 1):
        if not 0 <= level <= 9:
            raise ConfigurationError(f"zlib level must be in [0, 9], got {level}")
        self.level = level

    def encode(self, data) -> bytes:
        return zlib.compress(bytes(data), self.level)

    def decode(self, data, out_len: int) -> bytes:
        try:
            blob = zlib.decompress(bytes(data))
        except zlib.error as exc:
            raise IntegrityError(f"corrupt zlib literal: {exc}") from exc
        if len(blob) != out_len:
            raise IntegrityError(
                f"zlib literal inflated to {len(blob)} bytes, "
                f"recipe says {out_len}",
                expected=out_len,
                actual=len(blob),
            )
        return blob


_REGISTRY: Dict[str, Type[Codec]] = {"none": NullCodec, "zlib": ZlibCodec}

try:  # pragma: no cover - exercised only where lz4 is installed
    import lz4.frame as _lz4frame

    class Lz4Codec(Codec):
        """lz4-frame codec; present only when the package is installed."""

        name = "lz4"

        def encode(self, data) -> bytes:
            return _lz4frame.compress(bytes(data))

        def decode(self, data, out_len: int) -> bytes:
            try:
                blob = _lz4frame.decompress(bytes(data))
            except RuntimeError as exc:
                raise IntegrityError(f"corrupt lz4 literal: {exc}") from exc
            if len(blob) != out_len:
                raise IntegrityError(
                    f"lz4 literal inflated to {len(blob)} bytes, "
                    f"recipe says {out_len}",
                    expected=out_len,
                    actual=len(blob),
                )
            return blob

    _REGISTRY["lz4"] = Lz4Codec
    __all__.append("Lz4Codec")
except ImportError:
    pass


def available_codecs() -> tuple:
    """Names accepted by :func:`get_codec` in this environment."""
    return tuple(sorted(_REGISTRY))


def get_codec(name: str) -> Codec:
    """Resolve a codec by configuration name."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown compression codec {name!r}; "
            f"options: {sorted(_REGISTRY)}"
        ) from None


def codec_for_id(wire_id: int) -> Codec:
    """Resolve a codec from its wire byte (the decode side)."""
    for name, cid in CODEC_IDS.items():
        if cid == wire_id:
            if name not in _REGISTRY:
                raise ConfigurationError(
                    f"frame uses codec {name!r} (id {wire_id}) which is not "
                    f"installed in this environment"
                )
            return _REGISTRY[name]()
    raise IntegrityError(f"unknown codec id {wire_id} in delta frame")
