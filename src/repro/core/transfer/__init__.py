"""The memory-first model transfer engine (paper §4.4, Fig. 7).

- :mod:`strategies` — the three transfer strategies (GPU-to-GPU,
  Host-to-Host, PFS) × two capture modes (sync, async) and their timing
  laws over a hardware profile.
- :mod:`selector` — the Transfer Selector choosing a strategy per save
  request (GPU-direct preferred, host RDMA fallback, PFS last).
- :mod:`double_buffer` — the consumer-side double buffer with an atomic
  primary/alternate swap.
- :mod:`flush` — the background thread flushing historical checkpoints
  to the PFS for fault tolerance.
- :mod:`engine` — the producer-side asynchronous capture/transfer worker.
- :mod:`pipeline` — the chunked, pipelined, zero-copy transfer path
  (Chunker / BufferPool / PipelinedTransfer) and its config knob.
- :mod:`delta` — the delta/compressed wire path (chunk digests, recipe
  frames, DeltaManager negotiation) and :mod:`compression`, its codec
  registry.
- :mod:`handler` — the Model Weights Handler facade processing
  save/load requests end to end.
"""

from repro.core.transfer.compression import Codec, available_codecs, get_codec
from repro.core.transfer.delta import (
    ChunkIndex,
    DeltaConfig,
    DeltaManager,
    DeltaStats,
    decode_frame,
    encode_frame,
    is_delta_frame,
)
from repro.core.transfer.pipeline import (
    BufferPool,
    Chunker,
    PipelineConfig,
    PipelinedTransfer,
)
from repro.core.transfer.strategies import (
    CaptureMode,
    StrategyTimings,
    TransferStrategy,
    compute_timings,
    pipelined_phase_cost,
)
from repro.core.transfer.selector import TransferSelector
from repro.core.transfer.double_buffer import DoubleBuffer
from repro.core.transfer.flush import BackgroundFlusher
from repro.core.transfer.engine import AsyncTransferEngine
from repro.core.transfer.handler import ModelWeightsHandler, UpdateResult, LoadResult

__all__ = [
    "TransferStrategy",
    "CaptureMode",
    "StrategyTimings",
    "compute_timings",
    "pipelined_phase_cost",
    "PipelineConfig",
    "Chunker",
    "BufferPool",
    "PipelinedTransfer",
    "Codec",
    "get_codec",
    "available_codecs",
    "ChunkIndex",
    "DeltaConfig",
    "DeltaManager",
    "DeltaStats",
    "encode_frame",
    "decode_frame",
    "is_delta_frame",
    "TransferSelector",
    "DoubleBuffer",
    "BackgroundFlusher",
    "AsyncTransferEngine",
    "ModelWeightsHandler",
    "UpdateResult",
    "LoadResult",
]
