"""Checkpoint retention and garbage collection.

The paper keeps only the latest checkpoint in the memory channels and
flushes "all historical DNN models" to the PFS.  Unbounded history
eventually exhausts even a PFS quota, so production deployments need a
retention policy.  :class:`RetentionPolicy` implements the standard
tiered rule:

- always keep the newest ``keep_latest`` versions (hot restart window);
- additionally keep every ``keep_every``-th version for history
  (coarse-grained provenance / rollback);
- version 1 (the warm-up model) is always retained as the lineage root.

:func:`collect_garbage` applies a policy to a model's history: dropped
versions lose their PFS objects and metadata records; memory replicas
are left to the tier stores' own eviction (they only ever hold the
latest anyway).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from repro.errors import ConfigurationError, ObjectNotFoundError
from repro.substrates.memory.storage import TierStore
from repro.core.metadata import MetadataStore

__all__ = ["RetentionPolicy", "collect_garbage"]


@dataclass(frozen=True)
class RetentionPolicy:
    """Which checkpoint versions survive garbage collection."""

    keep_latest: int = 3
    keep_every: int = 0   # 0 disables the historical stride

    def __post_init__(self):
        if self.keep_latest < 1:
            raise ConfigurationError("keep_latest must be >= 1")
        if self.keep_every < 0:
            raise ConfigurationError("keep_every must be >= 0")

    def retained(self, versions: Sequence[int]) -> Set[int]:
        """Subset of ``versions`` the policy keeps."""
        ordered = sorted(versions)
        if not ordered:
            return set()
        keep: Set[int] = set(ordered[-self.keep_latest:])
        keep.add(ordered[0])  # lineage root
        if self.keep_every > 0:
            keep.update(v for v in ordered if v % self.keep_every == 0)
        return keep


def collect_garbage(
    metadata: MetadataStore,
    pfs: TierStore,
    model_name: str,
    policy: RetentionPolicy,
) -> Tuple[List[int], int]:
    """Apply ``policy`` to one model's checkpoint history.

    Returns ``(dropped_versions, bytes_reclaimed)`` (virtual bytes on
    the PFS).  The latest pointer is never collected (``keep_latest >=
    1`` guarantees it survives).
    """
    versions = metadata.versions(model_name)
    keep = policy.retained(versions)
    dropped: List[int] = []
    reclaimed = 0
    for version in versions:
        if version in keep:
            continue
        record, _cost = metadata.record(model_name, version)
        if "pfs" in record.replicas:
            try:
                reclaimed += pfs.stat(record.path).virtual_bytes
                pfs.delete(record.path)
            except ObjectNotFoundError:
                pass  # already evicted
        # Drop the record entirely: the version is gone from history.
        metadata.drop_version(model_name, version)
        dropped.append(version)
    return dropped, reclaimed
