"""Incremental (delta) checkpointing.

The paper's related work (§2) covers Check-N-Run's incremental
checkpoints ("capturing the differences since the last checkpoint") and
DStore/EvoStore's partial capture "where the checkpoints change only
partially (e.g. transfer learning)".  This module brings that capability
to Viper's transfer engine:

- :func:`encode_delta` diffs two weight snapshots and emits a compact
  delta: unchanged tensors are dropped; tensors where only a few rows
  changed are encoded as (row indices, row values); everything else
  ships whole.
- :func:`apply_delta` reconstructs the full state from a base snapshot
  plus the delta.
- The delta is itself a flat ``Dict[str, np.ndarray]``, so the existing
  serializers, tier stores, channels, and timing laws apply unchanged —
  a delta checkpoint is just a (much smaller) checkpoint.

When does this pay off?  Exactly the fine-tuning scenario the paper's
motivating workflow describes: once the PtychoNN encoder is frozen and
only the decoders refine, a delta carries a fraction of the bytes, and
both the producer stall and the consumer load shrink proportionally
(see ``benchmarks/test_ablation_incremental.py``).

This snapshot-level diff also *feeds* the chunk-level delta wire path
(:mod:`repro.core.transfer.delta`): :func:`changed_names` /
:func:`changed_fraction` are the negotiation heuristic the
``DeltaManager`` runs against the consumer's held base before paying
for per-chunk digests — a near-fully-changed snapshot short-circuits
straight to the monolithic path, which is what keeps the 100%-changed
worst case regression-free.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import StorageError

__all__ = [
    "encode_delta",
    "apply_delta",
    "is_delta",
    "delta_payload_bytes",
    "changed_names",
    "changed_fraction",
]

_MARK = "__delta__/base_version"
_FULL = "full/"
_ROWS_IDX = "rows_idx/"
_ROWS_VAL = "rows_val/"


def changed_names(
    prev: Dict[str, np.ndarray],
    curr: Dict[str, np.ndarray],
) -> Tuple[str, ...]:
    """Names of tensors in ``curr`` that differ from ``prev``.

    A tensor missing from ``prev`` or with a different shape/dtype
    counts as changed; comparison is exact (bit-level), matching
    :func:`encode_delta`'s unchanged-tensor elision.
    """
    out = []
    for name in sorted(curr):
        a = prev.get(name)
        b = curr[name]
        if a is None or a.shape != b.shape or a.dtype != b.dtype:
            out.append(name)
        elif not np.array_equal(a, b):
            out.append(name)
    return tuple(out)


def changed_fraction(
    prev: Dict[str, np.ndarray],
    curr: Dict[str, np.ndarray],
) -> float:
    """Fraction of ``curr``'s payload bytes held by changed tensors.

    The tensor is the granularity: one flipped element marks its whole
    tensor changed, so this is an upper bound on what a finer-grained
    (chunk- or row-level) diff would move.  1.0 for an empty ``curr``
    keeps the degenerate case on the conservative (monolithic) side.
    """
    total = sum(int(t.nbytes) for t in curr.values())
    if total == 0:
        return 1.0
    changed = changed_names(prev, curr)
    return sum(int(curr[name].nbytes) for name in changed) / total


def encode_delta(
    prev: Dict[str, np.ndarray],
    curr: Dict[str, np.ndarray],
    base_version: int,
    row_fraction_threshold: float = 0.5,
) -> Dict[str, np.ndarray]:
    """Encode ``curr`` as a delta against ``prev``.

    Tensors are compared exactly.  A changed tensor with ndim >= 2 whose
    changed-row fraction is below ``row_fraction_threshold`` is encoded
    sparsely by rows; otherwise it ships whole.  Unchanged tensors are
    omitted entirely.
    """
    if set(prev) != set(curr):
        raise StorageError(
            "delta encoding requires identical tensor sets "
            f"(prev-only: {sorted(set(prev) - set(curr))[:3]}, "
            f"curr-only: {sorted(set(curr) - set(prev))[:3]})"
        )
    if not 0.0 < row_fraction_threshold <= 1.0:
        raise StorageError("row_fraction_threshold must be in (0, 1]")
    delta: Dict[str, np.ndarray] = {
        _MARK: np.asarray(base_version, dtype=np.int64)
    }
    for name in sorted(curr):
        a, b = prev[name], curr[name]
        if a.shape != b.shape or a.dtype != b.dtype:
            raise StorageError(f"tensor {name!r} changed shape/dtype")
    for name in changed_names(prev, curr):
        a, b = prev[name], curr[name]
        if b.ndim >= 2:
            changed_rows = np.nonzero(
                np.any(a.reshape(a.shape[0], -1) != b.reshape(b.shape[0], -1), axis=1)
            )[0]
            if changed_rows.size / b.shape[0] <= row_fraction_threshold:
                delta[_ROWS_IDX + name] = changed_rows.astype(np.int64)
                delta[_ROWS_VAL + name] = np.ascontiguousarray(b[changed_rows])
                continue
        delta[_FULL + name] = b.copy()
    return delta


def is_delta(state: Dict[str, np.ndarray]) -> bool:
    """True when ``state`` is a delta checkpoint (has the version marker)."""
    return _MARK in state


def delta_base_version(state: Dict[str, np.ndarray]) -> int:
    """The base version a delta checkpoint must be applied to."""
    if not is_delta(state):
        raise StorageError("not a delta checkpoint")
    return int(state[_MARK])


def delta_payload_bytes(delta: Dict[str, np.ndarray]) -> int:
    """Raw bytes a delta carries (drives the virtual transfer size)."""
    return sum(int(t.nbytes) for t in delta.values())


def apply_delta(
    base: Dict[str, np.ndarray],
    delta: Dict[str, np.ndarray],
    expected_base_version: int = None,
) -> Dict[str, np.ndarray]:
    """Reconstruct the full snapshot: ``base`` + ``delta``."""
    if not is_delta(delta):
        raise StorageError("apply_delta: not a delta checkpoint")
    if (
        expected_base_version is not None
        and delta_base_version(delta) != expected_base_version
    ):
        raise StorageError(
            f"delta targets base v{delta_base_version(delta)}, "
            f"have v{expected_base_version}"
        )
    out = {name: value.copy() for name, value in base.items()}
    for key, value in delta.items():
        if key == _MARK or key.startswith(_ROWS_VAL):
            continue
        if key.startswith(_FULL):
            name = key[len(_FULL):]
            if name not in out:
                raise StorageError(f"delta references unknown tensor {name!r}")
            out[name] = value.copy()
        elif key.startswith(_ROWS_IDX):
            name = key[len(_ROWS_IDX):]
            if name not in out:
                raise StorageError(f"delta references unknown tensor {name!r}")
            values = delta.get(_ROWS_VAL + name)
            if values is None:
                raise StorageError(f"delta missing row values for {name!r}")
            updated = out[name].copy()
            updated[value] = values
            out[name] = updated
        else:
            raise StorageError(f"unknown delta section {key!r}")
    return out
