"""Background flush of historical checkpoints to the PFS.

Paper §4.4: "For fault tolerance, all historical DNN models are flushed to
the PFS through a background thread to minimize the impact on training."

:class:`BackgroundFlusher` owns a worker thread draining a queue of flush
jobs.  Each job writes the serialized checkpoint into the shared PFS store
and then marks the metadata record durable via compare-and-swap.  A
failure-injection hook supports the fault-tolerance tests; failed flushes
are retried up to ``max_retries`` and then recorded in ``failed_keys``.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Tuple

from repro.errors import StorageError
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.substrates.cost import Cost
from repro.substrates.memory.storage import TierStore
from repro.core.metadata import MetadataStore, ModelRecord

__all__ = ["FlushJob", "BackgroundFlusher"]


@dataclass
class FlushJob:
    """One checkpoint to persist: payload plus its metadata record."""

    key: str
    blob: bytes
    record: ModelRecord


class BackgroundFlusher:
    """Worker thread persisting checkpoints off the training path."""

    def __init__(
        self,
        pfs: TierStore,
        metadata: MetadataStore,
        *,
        max_retries: int = 2,
        fail_hook: Optional[Callable[[FlushJob, int], bool]] = None,
        tracer=None,
        metrics=None,
    ):
        self.pfs = pfs
        self.metadata = metadata
        self.max_retries = max_retries
        self.fail_hook = fail_hook
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._m_ok = self.metrics.counter("flush_jobs_total", status="ok")
        self._m_failed = self.metrics.counter("flush_jobs_total", status="failed")
        self._m_sim_seconds = self.metrics.histogram("flush_sim_seconds")
        self._queue: "queue.Queue[Optional[FlushJob]]" = queue.Queue()
        self._lock = threading.Lock()
        self._flushed: List[str] = []
        self._failed: List[str] = []
        self._background_cost = Cost.zero()
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="viper-flusher"
        )
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> "BackgroundFlusher":
        if not self._started:
            self._thread.start()
            self._started = True
        return self

    def submit(self, job: FlushJob) -> None:
        if not self._started:
            raise StorageError("flusher not started")
        self._queue.put(job)

    def drain(self, timeout: float = 30.0) -> None:
        """Block until every queued flush has been processed."""
        with self._queue.all_tasks_done:
            deadline = timeout
            while self._queue.unfinished_tasks:
                if not self._queue.all_tasks_done.wait(deadline):
                    raise StorageError("flusher drain timed out")

    def stop(self, timeout: float = 30.0) -> None:
        if not self._started:
            return
        self._queue.put(None)
        self._thread.join(timeout)

    # ------------------------------------------------------------------
    @property
    def flushed_keys(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._flushed)

    @property
    def failed_keys(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._failed)

    @property
    def background_cost(self) -> Cost:
        """Total simulated time spent flushing (off the training path)."""
        with self._lock:
            return self._background_cost

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                self._queue.task_done()
                return
            try:
                self._flush_one(job)
            finally:
                self._queue.task_done()

    def _flush_one(self, job: FlushJob) -> None:
        with self.tracer.span("flush.job", track="viper-flusher", key=job.key) as sp:
            for attempt in range(self.max_retries + 1):
                try:
                    if self.fail_hook is not None and self.fail_hook(job, attempt):
                        raise StorageError(f"injected flush failure for {job.key}")
                    cost = self.pfs.put(
                        job.key,
                        job.blob,
                        virtual_bytes=job.record.nbytes,
                        nobjects=job.record.ntensors,
                        version=job.record.version,
                    )
                    current, _ = self.metadata.record(
                        job.record.model_name, job.record.version
                    )
                    cost = cost + self.metadata.compare_and_swap(
                        replace(
                            current,
                            durable=True,
                            replicas=tuple(dict.fromkeys(current.replicas + ("pfs",))),
                        )
                    )
                    with self._lock:
                        self._flushed.append(job.key)
                        self._background_cost = self._background_cost + cost
                    sp.set(attempts=attempt + 1, sim_seconds=cost.total)
                    self._m_ok.inc()
                    self._m_sim_seconds.observe(cost.total)
                    return
                except StorageError:
                    continue
            sp.set(outcome="failed", attempts=self.max_retries + 1)
            self._m_failed.inc()
            with self._lock:
                self._failed.append(job.key)
