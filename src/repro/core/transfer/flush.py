"""Background flush of historical checkpoints to the PFS.

Paper §4.4: "For fault tolerance, all historical DNN models are flushed to
the PFS through a background thread to minimize the impact on training."

:class:`BackgroundFlusher` owns a worker thread draining a queue of flush
jobs.  Each job writes the serialized checkpoint into the shared PFS store
and then marks the metadata record durable via compare-and-swap.  A
failure-injection hook supports the fault-tolerance tests; failed flushes
are retried up to ``max_retries`` and then recorded in ``failed_keys``.

Shutdown semantics: :meth:`stop` *drains* the queue by default, so a
clean shutdown never strands checkpoints as non-durable.  ``stop(
drain=False)`` is the explicit fast path — remaining jobs are abandoned
but recorded in ``stranded_keys``, never silently lost, and crash
recovery re-enqueues them from the journal on the next start.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Tuple

from repro.errors import StorageError
from repro.obs.lineage import NULL_LINEAGE
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.resilience.recovery import SimulatedCrash
from repro.substrates.cost import Cost
from repro.substrates.memory.storage import TierStore
from repro.core.metadata import MetadataStore, ModelRecord

__all__ = ["FlushJob", "BackgroundFlusher"]


@dataclass
class FlushJob:
    """One checkpoint to persist: payload plus its metadata record."""

    key: str
    blob: bytes
    record: ModelRecord
    #: Lineage trace header; falls back to ``record.trace_ctx`` when empty.
    trace_ctx: str = ""


class BackgroundFlusher:
    """Worker thread persisting checkpoints off the training path."""

    def __init__(
        self,
        pfs: TierStore,
        metadata: MetadataStore,
        *,
        max_retries: int = 2,
        fail_hook: Optional[Callable[[FlushJob, int], bool]] = None,
        tracer=None,
        metrics=None,
        lineage=None,
        sim_now: Optional[Callable[[], float]] = None,
    ):
        self.pfs = pfs
        self.metadata = metadata
        self.max_retries = max_retries
        self.fail_hook = fail_hook
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.lineage = lineage if lineage is not None else NULL_LINEAGE
        self._sim_now = sim_now
        self._m_ok = self.metrics.counter("flush_jobs_total", status="ok")
        self._m_failed = self.metrics.counter("flush_jobs_total", status="failed")
        self._m_sim_seconds = self.metrics.histogram("flush_sim_seconds")
        self._queue: "queue.Queue[Optional[FlushJob]]" = queue.Queue()
        self._lock = threading.Lock()
        self._flushed: List[str] = []
        self._failed: List[str] = []
        self._stranded: List[str] = []
        self._background_cost = Cost.zero()
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="viper-flusher"
        )
        self._started = False
        self._stopped = False
        self._abort = False
        self._dead = False
        # Crash-point hook (duck-typed CrashPlan or None): the worker
        # checks it per job, so a "dead" deployment's flusher dies too.
        self.crashpoints = None

    # ------------------------------------------------------------------
    def start(self) -> "BackgroundFlusher":
        if not self._started:
            self._thread.start()
            self._started = True
        return self

    def submit(self, job: FlushJob) -> None:
        if not self._started:
            raise StorageError("flusher not started")
        if self._stopped:
            # A submit after stop() would sit in the queue forever with
            # no worker — refuse loudly instead of stranding silently.
            raise StorageError("flusher stopped; checkpoint would be stranded")
        self._queue.put(job)

    def drain(self, timeout: float = 30.0) -> None:
        """Block until every queued flush has been processed."""
        deadline = time.monotonic() + timeout
        with self._queue.all_tasks_done:
            while self._queue.unfinished_tasks:
                if self._dead:
                    # The worker died at a kill point; its queue will
                    # never drain — fail fast instead of timing out.
                    raise StorageError("flusher worker died; queue not drained")
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._queue.all_tasks_done.wait(
                    min(remaining, 0.05)
                ):
                    if time.monotonic() >= deadline:
                        raise StorageError("flusher drain timed out")

    def stop(self, timeout: float = 30.0, *, drain: bool = True) -> None:
        """Shut the worker down; by default only after the queue drains.

        ``drain=False`` abandons queued jobs promptly: each is recorded
        in :attr:`stranded_keys` (its checkpoint stays non-durable) so
        the caller — or journal-driven recovery — can account for it.
        """
        if not self._started or self._stopped:
            return
        if drain:
            self.drain(timeout)
        else:
            self._abort = True
        self._stopped = True
        self._queue.put(None)
        self._thread.join(timeout)

    # ------------------------------------------------------------------
    @property
    def flushed_keys(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._flushed)

    @property
    def failed_keys(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._failed)

    @property
    def stranded_keys(self) -> Tuple[str, ...]:
        """Jobs abandoned by ``stop(drain=False)`` — still non-durable."""
        with self._lock:
            return tuple(self._stranded)

    @property
    def background_cost(self) -> Cost:
        """Total simulated time spent flushing (off the training path)."""
        with self._lock:
            return self._background_cost

    # ------------------------------------------------------------------
    def _run(self) -> None:
        try:
            while True:
                job = self._queue.get()
                if job is None:
                    self._queue.task_done()
                    return
                try:
                    if self._abort:
                        with self._lock:
                            self._stranded.append(job.key)
                        self.metrics.counter(
                            "flush_jobs_total", status="stranded"
                        ).inc()
                        continue
                    self._flush_one(job)
                finally:
                    self._queue.task_done()
        except SimulatedCrash:
            # The chaos harness killed this "process"; die silently like
            # SIGKILL would — no traceback through threading.excepthook.
            self._dead = True
            with self._queue.all_tasks_done:
                self._queue.all_tasks_done.notify_all()
            return

    def _flush_one(self, job: FlushJob) -> None:
        if self.crashpoints is not None:
            self.crashpoints.reached("flush.start")
        with self.tracer.span("flush.job", track="viper-flusher", key=job.key) as sp:
            for attempt in range(self.max_retries + 1):
                try:
                    if self.fail_hook is not None and self.fail_hook(job, attempt):
                        raise StorageError(f"injected flush failure for {job.key}")
                    cost = self.pfs.put(
                        job.key,
                        job.blob,
                        virtual_bytes=job.record.nbytes,
                        nobjects=job.record.ntensors,
                        version=job.record.version,
                    )
                    if self.crashpoints is not None:
                        # Mid-flush kill point: the blob is durable but the
                        # metadata record still says durable=False; recovery
                        # must complete the acknowledgement exactly once.
                        self.crashpoints.reached("flush.staged")
                    current, _ = self.metadata.record(
                        job.record.model_name, job.record.version
                    )
                    cost = cost + self.metadata.compare_and_swap(
                        replace(
                            current,
                            durable=True,
                            replicas=tuple(dict.fromkeys(current.replicas + ("pfs",))),
                        )
                    )
                    with self._lock:
                        self._flushed.append(job.key)
                        self._background_cost = self._background_cost + cost
                    sp.set(attempts=attempt + 1, sim_seconds=cost.total)
                    self._m_ok.inc()
                    self._m_sim_seconds.observe(cost.total)
                    self.lineage.record_header(
                        job.trace_ctx or job.record.trace_ctx,
                        "flush",
                        sim_time=(
                            self._sim_now() if self._sim_now is not None else 0.0
                        ),
                        actor="flusher",
                        attempts=attempt + 1,
                        sim_seconds=cost.total,
                    )
                    return
                except StorageError:
                    continue
            sp.set(outcome="failed", attempts=self.max_retries + 1)
            self._m_failed.inc()
            with self._lock:
                self._failed.append(job.key)
