"""Asynchronous capture/transfer worker (paper §4.4, "Viper-ASync").

In async mode the producer's training loop only pays for the local
snapshot copy; the wire movement, metadata publish, and notification run
on this engine's worker thread.  The engine serializes jobs (one worker —
checkpoints are totally ordered per producer, like the paper's
single background stream), tracks the simulated background time, and
surfaces worker exceptions to the caller on :meth:`drain` rather than
swallowing them.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import TransferError
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.resilience.retry import execute_with_retry
from repro.substrates.cost import Cost

__all__ = ["TransferJob", "AsyncTransferEngine"]


@dataclass
class TransferJob:
    """One queued model update; ``action`` performs the actual movement
    and returns the simulated background cost it incurred."""

    description: str
    action: Callable[[], Cost]
    done: threading.Event = field(default_factory=threading.Event)
    cost: Cost = field(default_factory=Cost.zero)
    error: Optional[BaseException] = None
    #: wire bytes this job moves (0 = unknown); drives the engine's
    #: ``engine_wire_bytes_total`` counter so delta savings show up in
    #: background-transfer accounting, not only in the save-side stats.
    nbytes: int = 0


class AsyncTransferEngine:
    """Single-worker background queue for model updates."""

    def __init__(
        self,
        name: str = "viper-engine",
        *,
        tracer=None,
        metrics=None,
        retry_policy=None,
        retry_rng=None,
    ):
        self.name = name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        # Optional resilience.RetryPolicy: transient job failures are
        # retried on the worker before being surfaced on drain().  A job
        # that already exhausted an inner retry scope raises
        # RetriesExhausted, which the executor never re-retries.
        self.retry_policy = retry_policy
        self._retry_rng = retry_rng
        self._m_jobs_ok = self.metrics.counter(
            "engine_jobs_total", engine=name, status="ok"
        )
        self._m_jobs_err = self.metrics.counter(
            "engine_jobs_total", engine=name, status="error"
        )
        self._m_sim_seconds = self.metrics.histogram(
            "engine_job_sim_seconds", engine=name
        )
        self._m_depth = self.metrics.gauge("engine_queue_depth", engine=name)
        self._queue: "queue.Queue[Optional[TransferJob]]" = queue.Queue()
        self._lock = threading.Lock()
        self._completed: List[TransferJob] = []
        self._errors: List[TransferJob] = []
        self._background_cost = Cost.zero()
        self._thread = threading.Thread(target=self._run, daemon=True, name=name)
        self._started = False
        self._stopping = False

    def start(self) -> "AsyncTransferEngine":
        if not self._started:
            self._thread.start()
            self._started = True
        return self

    def submit(self, job: TransferJob) -> TransferJob:
        if not self._started:
            raise TransferError(f"{self.name}: engine not started")
        with self._lock:
            # A job enqueued behind the shutdown sentinel would never run
            # (and never set ``done``); fail loudly instead of hanging.
            if self._stopping:
                raise TransferError(f"{self.name}: engine is stopped")
            self._queue.put(job)
        self._m_depth.inc()
        return job

    def drain(self, timeout: float = 60.0, raise_on_error: bool = True) -> None:
        """Wait for all queued jobs; re-raise the first worker error."""
        with self._queue.all_tasks_done:
            while self._queue.unfinished_tasks:
                if not self._queue.all_tasks_done.wait(timeout):
                    raise TransferError(f"{self.name}: drain timed out")
        if raise_on_error:
            with self._lock:
                failed = list(self._errors)
            if failed:
                raise TransferError(
                    f"{self.name}: {len(failed)} background job(s) failed; "
                    f"first: {failed[0].description}: {failed[0].error!r}"
                ) from failed[0].error

    def stop(self, timeout: float = 60.0) -> None:
        if not self._started:
            return
        with self._lock:
            already = self._stopping
            self._stopping = True
        if not already:
            self._queue.put(None)
        self._thread.join(timeout)

    # ------------------------------------------------------------------
    @property
    def background_cost(self) -> Cost:
        with self._lock:
            return self._background_cost

    @property
    def completed(self) -> int:
        with self._lock:
            return len(self._completed)

    @property
    def failures(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(j.description for j in self._errors)

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                self._queue.task_done()
                return
            try:
                with self.tracer.span(
                    "engine.job", track=self.name, description=job.description
                ):
                    if self.retry_policy is None:
                        job.cost = job.action()
                    else:
                        outcome = execute_with_retry(
                            job.action,
                            self.retry_policy,
                            site=f"engine.{self.name}",
                            rng=self._retry_rng,
                            tracer=self.tracer,
                            metrics=self.metrics,
                        )
                        job.cost = outcome.value
                        if outcome.backoff_seconds:
                            job.cost = job.cost + Cost.of(
                                "retry.backoff", outcome.backoff_seconds
                            )
                with self._lock:
                    self._completed.append(job)
                    self._background_cost = self._background_cost + job.cost
                self._m_jobs_ok.inc()
                self._m_sim_seconds.observe(job.cost.total)
                if job.nbytes:
                    self.metrics.counter(
                        "engine_wire_bytes_total", engine=self.name
                    ).inc(job.nbytes)
            except BaseException as exc:  # noqa: BLE001 - surfaced on drain
                job.error = exc
                with self._lock:
                    self._errors.append(job)
                self._m_jobs_err.inc()
            finally:
                self._m_depth.dec()
                job.done.set()
                self._queue.task_done()
