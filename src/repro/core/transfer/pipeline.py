"""Chunked, pipelined, zero-copy checkpoint transfer (FastPersist-style).

The monolithic transfer path moves each checkpoint as one blob through
capture -> wire -> load, paying every stage serially and copying the full
payload at each hop.  This module provides the three building blocks that
turn that into an overlapped pipeline:

- :class:`Chunker` — splits a serialized checkpoint (one buffer or an
  iovec of buffers from ``Serializer.dump_chunks``) into bounded-size
  ``memoryview`` slices without copying a single byte;
- :class:`BufferPool` — reusable pre-allocated ``bytearray`` buffers for
  the receive/reassembly side, so steady-state transfers allocate nothing;
- :class:`PipelinedTransfer` — a staged executor that streams chunks
  through capture/wire/load stages with ``lanes`` workers per stage, so
  total wall time approaches ``fill + max-stage`` instead of
  ``sum-of-stages``.

The matching *simulated* law lives in
:meth:`repro.substrates.network.links.LinkSpec.pipelined_transfer_time`
and :func:`repro.core.transfer.strategies.compute_timings` (``pipeline=``
argument); :class:`PipelineConfig` is the single knob object threaded
through :class:`~repro.config.ViperConfig`, the strategies, and the
:class:`~repro.core.transfer.handler.ModelWeightsHandler`.

Chunking helps when the payload is large relative to per-chunk setup
cost (big models, high-latency links); it hurts when per-message
overhead dominates (tiny checkpoints, sub-megabyte chunks).  Both the
simulated law and the executor therefore fall back to monolithic
behaviour at one chunk.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, TransferError
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.substrates.cost import MB

__all__ = [
    "PipelineConfig",
    "Chunker",
    "BufferPool",
    "PipelinedTransfer",
    "PipelineResult",
    "assemble_into",
    "serialize_pipelined",
]

#: Default chunk size: large enough to amortize the modeled links'
#: millisecond-class per-message overheads (256 MB / 8 GB/s ≈ 32 ms per
#: chunk vs 5 ms setup), small enough that a GB-class checkpoint still
#: splits into enough chunks to overlap its stages.  Wall-clock callers
#: moving smaller real payloads should size chunks down accordingly.
DEFAULT_CHUNK_BYTES = 256 * MB


@dataclass(frozen=True)
class PipelineConfig:
    """The pipeline knob threaded through config -> strategies -> handler.

    ``enabled=False`` (the default) keeps the original monolithic path
    byte-for-byte intact; the pipeline is strictly opt-in.
    """

    enabled: bool = False
    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    lanes: int = 2

    def __post_init__(self):
        if self.chunk_bytes <= 0:
            raise ConfigurationError(
                f"pipeline chunk_bytes must be positive, got {self.chunk_bytes}"
            )
        if self.lanes < 1:
            raise ConfigurationError(
                f"pipeline lanes must be >= 1, got {self.lanes}"
            )

    def nchunks(self, nbytes: int) -> int:
        """Number of chunks a payload of ``nbytes`` splits into (>= 1)."""
        if nbytes <= 0:
            return 1
        return -(-nbytes // self.chunk_bytes)  # ceil division


class Chunker:
    """Zero-copy splitter: buffers in, bounded ``memoryview`` slices out.

    Every produced chunk is a read-only view into the caller's buffers;
    concatenating the chunks reproduces the input byte stream exactly.
    """

    def __init__(self, chunk_bytes: int = DEFAULT_CHUNK_BYTES):
        if chunk_bytes <= 0:
            raise ConfigurationError(
                f"chunk_bytes must be positive, got {chunk_bytes}"
            )
        self.chunk_bytes = chunk_bytes

    def split(self, buf) -> Iterable[memoryview]:
        """Split one bytes-like buffer into <= chunk_bytes views."""
        mv = memoryview(buf)
        if mv.ndim != 1 or mv.itemsize != 1:
            mv = mv.cast("B")
        if len(mv) == 0:
            yield mv
            return
        for start in range(0, len(mv), self.chunk_bytes):
            yield mv[start : start + self.chunk_bytes]

    def split_pieces(self, pieces: Iterable) -> Iterable[memoryview]:
        """Split an iovec (iterable of buffers) into bounded chunks.

        Small pieces (headers) pass through untouched; oversized pieces
        (tensor payloads) are sliced.  No byte is ever copied, so chunk
        boundaries follow piece boundaries rather than a strict grid —
        every chunk is still <= ``chunk_bytes``.
        """
        for piece in pieces:
            mv = memoryview(piece)
            if mv.ndim != 1 or mv.itemsize != 1:
                mv = mv.cast("B")
            if len(mv) == 0:
                continue
            if len(mv) <= self.chunk_bytes:
                yield mv
            else:
                for start in range(0, len(mv), self.chunk_bytes):
                    yield mv[start : start + self.chunk_bytes]


class BufferPool:
    """Reusable pre-allocated transfer buffers.

    ``acquire(nbytes)`` hands out a ``bytearray`` with capacity >= nbytes,
    recycling released buffers so steady-state transfers perform zero
    allocations.  Thread-safe; ``release`` returns a buffer to the pool.

    Retention is capped: a buffer grown beyond ``max_retain_bytes`` is
    shrunk back to the cap when released, so one giant transfer cannot
    pin its peak footprint for the lifetime of the pool (the
    large-then-small sequence: without the cap, a 1 GB acquire followed
    by 4 KB steady-state traffic retains the full gigabyte forever).
    ``max_retain_bytes=None`` disables the cap.
    """

    def __init__(self, max_buffers: int = 4, initial_bytes: int = 0,
                 max_retain_bytes: Optional[int] = DEFAULT_CHUNK_BYTES):
        if max_buffers < 1:
            raise ConfigurationError(
                f"max_buffers must be >= 1, got {max_buffers}"
            )
        if max_retain_bytes is not None and max_retain_bytes < 1:
            raise ConfigurationError(
                f"max_retain_bytes must be >= 1 or None, got {max_retain_bytes}"
            )
        self._max = max_buffers
        self._max_retain = max_retain_bytes
        self._lock = threading.Lock()
        self._free: List[bytearray] = []
        self._outstanding = 0
        self.allocations = 0  # buffers created or grown
        self.reuses = 0       # acquisitions served without allocating
        self.shrinks = 0      # oversized buffers trimmed on release
        if initial_bytes > 0:
            self._free.append(bytearray(initial_bytes))
            self.allocations += 1

    def acquire(self, nbytes: int) -> bytearray:
        if nbytes < 0:
            raise ConfigurationError(f"acquire: nbytes must be >= 0, got {nbytes}")
        with self._lock:
            # Best fit: smallest free buffer that is already large enough.
            best = None
            for buf in self._free:
                if len(buf) >= nbytes and (best is None or len(buf) < len(best)):
                    best = buf
            if best is not None:
                self._free.remove(best)
                self._outstanding += 1
                self.reuses += 1
                return best
            if self._free:
                # Grow an existing buffer in place rather than allocating
                # a second large one.
                buf = max(self._free, key=len)
                self._free.remove(buf)
                buf.extend(bytes(nbytes - len(buf)))
                self._outstanding += 1
                self.allocations += 1
                return buf
            if self._outstanding >= self._max:
                raise TransferError(
                    f"buffer pool exhausted ({self._max} buffers outstanding)"
                )
            self._outstanding += 1
            self.allocations += 1
        return bytearray(nbytes)

    def release(self, buf: bytearray) -> None:
        if self._max_retain is not None and len(buf) > self._max_retain:
            try:
                # Shrink outside the lock; del on a bytearray tail releases
                # the memory immediately (unlike slicing, no second copy).
                del buf[self._max_retain:]
            except BufferError:
                # A live memoryview export pins the bytearray's size, so
                # it can't be shrunk.  Drop it instead of retaining an
                # oversized buffer; the caller keeps its view valid.
                with self._lock:
                    self._outstanding -= 1
                return
            with self._lock:
                self.shrinks += 1
        with self._lock:
            self._outstanding -= 1
            if len(self._free) < self._max:
                self._free.append(buf)

    @property
    def outstanding(self) -> int:
        with self._lock:
            return self._outstanding

    @property
    def retained_bytes(self) -> int:
        """Total capacity currently held idle in the free list."""
        with self._lock:
            return sum(len(b) for b in self._free)


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of one :meth:`PipelinedTransfer.run`."""

    nchunks: int
    results: Tuple
    elapsed: float
    stage_seconds: Dict[str, float]  # summed wall time per stage


_DONE = object()


class PipelinedTransfer:
    """Streams chunks through named stages with ``lanes`` workers each.

    ``stages`` is an ordered sequence of ``(name, fn)`` pairs; each
    ``fn(item, index)`` transforms one chunk and hands the result to the
    next stage.  Chunk *i+1* enters stage *s* while chunk *i* is still in
    stage *s+1*, so the wall-clock total approaches
    ``fill + nchunks * max_stage`` instead of ``nchunks * sum_stages``.
    Results are returned in chunk order regardless of completion order.

    Per-chunk stage timing is recorded into ``metrics`` histograms
    (``pipeline_stage_seconds{stage=...}``) and, when a tracer is given,
    as ``pipeline.<stage>`` spans.
    """

    def __init__(
        self,
        stages: Sequence[Tuple[str, Callable]],
        *,
        lanes: int = 2,
        tracer=None,
        metrics=None,
        name: str = "pipeline",
        trace_ctx: str = "",
    ):
        if not stages:
            raise ConfigurationError("PipelinedTransfer needs at least one stage")
        if lanes < 1:
            raise ConfigurationError(f"lanes must be >= 1, got {lanes}")
        self.stages = list(stages)
        self.lanes = lanes
        self.name = name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        #: Lineage trace header stamped onto every chunk span, so the
        #: per-chunk work joins the version's distributed trace.
        self.trace_ctx = trace_ctx

    def run(self, chunks: Iterable, timeout: float = 120.0) -> PipelineResult:
        start = time.perf_counter()
        nstages = len(self.stages)
        queues: List["queue.Queue"] = [queue.Queue() for _ in range(nstages)]
        results: Dict[int, object] = {}
        stage_seconds = {sname: 0.0 for sname, _ in self.stages}
        lock = threading.Lock()
        errors: List[BaseException] = []
        stop = threading.Event()
        # Precomputed once: empty headers add zero per-chunk span attrs.
        span_extra = {"trace_ctx": self.trace_ctx} if self.trace_ctx else {}

        def worker(stage_idx: int) -> None:
            sname, fn = self.stages[stage_idx]
            q = queues[stage_idx]
            while not stop.is_set():
                item = q.get()
                if item is _DONE:
                    q.put(_DONE)  # let sibling lanes drain too
                    return
                index, payload = item
                try:
                    t0 = time.perf_counter()
                    with self.tracer.span(
                        f"pipeline.{sname}", track=self.name, chunk=index,
                        **span_extra,
                    ):
                        out = fn(payload, index)
                    dt = time.perf_counter() - t0
                    with lock:
                        stage_seconds[sname] += dt
                    self.metrics.histogram(
                        "pipeline_stage_seconds", stage=sname
                    ).observe(dt)
                    if stage_idx + 1 < nstages:
                        queues[stage_idx + 1].put((index, out))
                    else:
                        with lock:
                            results[index] = out
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    with lock:
                        errors.append(exc)
                    stop.set()
                    for qq in queues:  # wake every blocked worker
                        qq.put(_DONE)
                    return

        threads = [
            threading.Thread(
                target=worker,
                args=(s,),
                daemon=True,
                name=f"{self.name}-{self.stages[s][0]}-{lane}",
            )
            for s in range(nstages)
            for lane in range(self.lanes)
        ]
        for t in threads:
            t.start()

        nchunks = 0
        for chunk in chunks:
            queues[0].put((nchunks, chunk))
            nchunks += 1
        queues[0].put(_DONE)

        deadline = time.monotonic() + timeout
        for s in range(nstages):
            # Wait for this stage's lanes to drain before releasing the next.
            for t in threads[s * self.lanes : (s + 1) * self.lanes]:
                t.join(max(0.0, deadline - time.monotonic()))
                if t.is_alive():
                    stop.set()
                    raise TransferError(
                        f"{self.name}: stage {self.stages[s][0]!r} timed out"
                    )
            if s + 1 < nstages:
                queues[s + 1].put(_DONE)

        if errors:
            raise errors[0]
        ordered = tuple(results[i] for i in range(nchunks))
        return PipelineResult(
            nchunks=nchunks,
            results=ordered,
            elapsed=time.perf_counter() - start,
            stage_seconds=stage_seconds,
        )


def assemble_into(buf: bytearray, chunks: Iterable) -> memoryview:
    """Copy ``chunks`` back-to-back into ``buf``; returns the filled view.

    The single reassembly copy of the pipelined path — the only full-payload
    copy between capture and a zero-copy ``loads(..., copy=False)``.
    """
    out = memoryview(buf)
    offset = 0
    for chunk in chunks:
        mv = memoryview(chunk)
        if mv.ndim != 1 or mv.itemsize != 1:
            mv = mv.cast("B")
        end = offset + len(mv)
        if end > len(out):
            raise TransferError(
                f"assemble_into: buffer too small ({len(out)} < {end})"
            )
        out[offset:end] = mv
        offset = end
    return out[:offset]


def serialize_pipelined(
    serializer,
    state,
    config: PipelineConfig,
    *,
    tracer=None,
    metrics=None,
    pool: Optional[BufferPool] = None,
    trace_ctx: str = "",
):
    """Serialize ``state`` through the chunk pipeline into one blob.

    The capture stage produces zero-copy iovec chunks
    (``serializer.dump_chunks``), the assemble stage streams them into a
    single output buffer — overlapping tensor traversal with the copy-out,
    and skipping the per-tensor ``tobytes`` plus the monolithic join copy.
    Output is byte-identical to ``serializer.dumps(state)``.

    Without a pool the assembled ``bytearray`` is returned outright
    (single copy end to end); with a pool, the pooled buffer is snapshotted
    to ``bytes`` and recycled.
    """
    chunker = Chunker(config.chunk_bytes)
    pieces = list(chunker.split_pieces(serializer.dump_chunks(state)))
    total = sum(len(p) for p in pieces)
    buf = pool.acquire(total) if pool is not None else bytearray(total)
    offsets = []
    offset = 0
    for p in pieces:
        offsets.append(offset)
        offset += len(p)
    out = memoryview(buf)

    def copy_stage(chunk, index):
        start = offsets[index]
        out[start : start + len(chunk)] = chunk
        return len(chunk)

    pipe = PipelinedTransfer(
        [("assemble", copy_stage)],
        lanes=config.lanes,
        tracer=tracer,
        metrics=metrics,
        name="serialize-pipeline",
        trace_ctx=trace_ctx,
    )
    pipe.run(pieces)
    if pool is None:
        return buf if len(buf) == total else bytes(out[:total])
    blob = bytes(out[:total])
    # Release the export before handing the buffer back: a live
    # memoryview pins the bytearray's size, which would defeat (or
    # crash) the pool's shrink-on-release retention cap.
    out.release()
    pool.release(buf)
    return blob
