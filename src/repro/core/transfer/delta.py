"""Delta + compressed checkpoint transfer: stop moving unchanged bytes.

The monolithic path ships every serialized byte of every version, even
when a fine-tuning step touched a fraction of the parameters — exactly
the paper's PFS-tier worst case (7.6 s per update).  This module makes
the per-update wire cost proportional to what *changed* (Checkmate-style
delta replication), with optional lossless compression layered on the
bytes that do move:

1. **Chunking** — the serialized v2 blob is cut into bounded chunks
   whose boundaries follow the serializer's iovec piece boundaries
   (header pieces and per-tensor payloads), so an unchanged tensor
   produces bit-identical chunks between versions even when a
   neighbouring tensor changed.  Each chunk is identified by a 16-byte
   BLAKE2b digest.
2. **Chunk index** — per consumer-held version, a digest -> (offset,
   length) map over the base blob (:class:`ChunkIndex`).
3. **Negotiation** — the producer-side :class:`DeltaManager` knows which
   version each consumer last loaded (registered on every successful
   load) and diffs the new blob against that base.  The snapshot-level
   tensor diff (:func:`repro.core.transfer.incremental.changed_fraction`)
   runs first: a near-fully-changed state short-circuits straight to the
   monolithic path before any digest is computed.
4. **Recipe** — the producer ships a *delta frame* (wire format v3): an
   ordered list of ``reuse(offset, length, digest)`` /
   ``literal(codec, bytes)`` ops plus the reconstruction target's length
   and CRC-32.  Literal chunks are compressed through the configured
   codec (:mod:`repro.core.transfer.compression`), with the compress
   stage running in the pipelined lanes so it overlaps the copy-out.
5. **Reconstruction** — the consumer replays the recipe against its held
   base blob, verifying every reused chunk's digest, every literal's
   length, and finally the whole reconstructed blob's CRC-32 — *then*
   the inner v2 header checksum verifies again inside
   ``Serializer.loads`` before the double-buffer swap.  Corruption at
   any level raises :class:`~repro.errors.IntegrityError`; a missing or
   mismatched base raises :class:`DeltaBaseError` so the handler can
   fall back to the monolithic blob instead of erroring the update wave.

Fallback rules (all decided per save/load, never per deployment):

- no base version registered for the consumer -> monolithic (or an
  all-literal compressed frame when a codec is configured and it wins);
- the encoded frame is not smaller than the full blob -> monolithic;
- the snapshot diff says (almost) everything changed and no codec is
  configured -> monolithic, skipping the digest pass entirely;
- the consumer lost its base, or reconstruction failed verification ->
  the handler re-fetches the producer-retained monolithic blob.
"""

from __future__ import annotations

import hashlib
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import DeltaBaseError, IntegrityError, StorageError
from repro.core.transfer.compression import Codec, NullCodec, codec_for_id, get_codec
from repro.core.transfer.pipeline import PipelinedTransfer
from repro.substrates.cost import KB

__all__ = [
    "DeltaConfig",
    "DeltaBaseError",
    "ChunkIndex",
    "DeltaStats",
    "DELTA_MAGIC",
    "chunk_bounds",
    "encode_frame",
    "decode_frame",
    "is_delta_frame",
    "frame_info",
    "DeltaManager",
]

DELTA_MAGIC = b"VPRD"
#: Wire format v3: v1 was the raw packed-tensor stream, v2 added the
#: CRC-32 header (both in dnn/serialization.py); v3 is this delta frame
#: wrapping a v2 blob as a recipe against a consumer-held base.
_FRAME_VERSION = 3
_DIGEST_BYTES = 16
_OP_REUSE = 0
_OP_LITERAL = 1
#: Frame header: magic | u32 version | u64 base_len | u32 base_crc
#: | u64 out_len | u32 out_crc | u32 nops
_HEADER = struct.Struct("<4sIQIQII")
_REUSE = struct.Struct("<BQQ16s")      # tag, offset, length, digest
_LITERAL = struct.Struct("<BBQQ16s")   # tag, codec, orig_len, enc_len, digest

#: Default chunk size for content digests.  Small enough that a 10%-row
#: update to a wide layer re-ships ~10% of it, large enough that the
#: per-chunk recipe overhead (33-34 B/op) stays under 0.1% of moved
#: bytes.  Distinct from the pipeline's 256 MB *lane* chunks: digest
#: chunks bound dedup granularity, lane chunks bound stage overlap.
DEFAULT_DELTA_CHUNK_BYTES = 64 * KB


@dataclass(frozen=True)
class DeltaConfig:
    """The delta/compression knob threaded through config -> handler.

    ``enabled=False`` (the default) keeps the monolithic path
    byte-for-byte intact; delta transfer is strictly opt-in.
    """

    enabled: bool = False
    chunk_bytes: int = DEFAULT_DELTA_CHUNK_BYTES
    compression: str = "none"
    #: Snapshot-diff early-out: when at least this fraction of payload
    #: bytes changed (tensor granularity) and no codec is configured,
    #: skip delta encoding entirely — the recipe cannot win.
    full_change_threshold: float = 0.9
    #: Producer-side monolithic blobs retained per model for diffing
    #: and for the consumer's missing-base fallback.
    cache_versions: int = 4

    def __post_init__(self):
        from repro.errors import ConfigurationError

        if self.chunk_bytes <= 0:
            raise ConfigurationError(
                f"delta chunk_bytes must be positive, got {self.chunk_bytes}"
            )
        if not 0.0 < self.full_change_threshold <= 1.0:
            raise ConfigurationError(
                "full_change_threshold must be in (0, 1], got "
                f"{self.full_change_threshold}"
            )
        if self.cache_versions < 1:
            raise ConfigurationError(
                f"cache_versions must be >= 1, got {self.cache_versions}"
            )
        get_codec(self.compression)  # validate the name at config time

    def codec(self) -> Codec:
        return get_codec(self.compression)


@dataclass(frozen=True)
class DeltaStats:
    """What one frame encode decided and saved."""

    mode: str                 # "delta" | "literal" (no base) | "monolithic"
    bytes_total: int          # reconstructed (full blob) size
    bytes_on_wire: int        # frame (or full blob) size actually shipped
    bytes_reused: int = 0     # payload bytes satisfied by reuse ops
    bytes_literal: int = 0    # payload bytes shipped as literals (pre-codec)
    bytes_saved_compression: int = 0  # literal bytes the codec removed
    chunks_total: int = 0
    chunks_reused: int = 0

    @property
    def bytes_saved_dedup(self) -> int:
        return self.bytes_reused

    @property
    def dedup_hit_ratio(self) -> float:
        if self.chunks_total == 0:
            return 0.0
        return self.chunks_reused / self.chunks_total

    @property
    def wire_fraction(self) -> float:
        """Bytes shipped / bytes represented (the timing-law scale)."""
        if self.bytes_total == 0:
            return 1.0
        return self.bytes_on_wire / self.bytes_total


def chunk_bounds(piece_lengths: Iterable[int], chunk_bytes: int) -> List[Tuple[int, int]]:
    """(offset, length) chunk grid over a piece stream.

    Boundaries restart at every piece, so a length-stable prefix of the
    stream chunks identically across versions regardless of what later
    pieces did — the property that makes fixed-grid digests behave like
    content-defined chunking for checkpoint state.
    """
    bounds: List[Tuple[int, int]] = []
    offset = 0
    for plen in piece_lengths:
        start = 0
        while start < plen:
            size = min(chunk_bytes, plen - start)
            bounds.append((offset + start, size))
            start += size
        offset += plen
    return bounds


def _digest(chunk) -> bytes:
    return hashlib.blake2b(chunk, digest_size=_DIGEST_BYTES).digest()


class ChunkIndex:
    """digest -> (offset, length) map over one base blob."""

    def __init__(self, blob: bytes, chunk_bytes: int,
                 piece_lengths: Optional[Iterable[int]] = None):
        self.blob = bytes(blob)
        self.chunk_bytes = chunk_bytes
        self.crc = zlib.crc32(self.blob)
        lengths = [len(self.blob)] if piece_lengths is None else list(piece_lengths)
        mv = memoryview(self.blob)
        self._by_digest: Dict[bytes, Tuple[int, int]] = {}
        for offset, length in chunk_bounds(lengths, chunk_bytes):
            d = _digest(mv[offset : offset + length])
            # First occurrence wins; duplicate chunks (zero pages) all
            # resolve to one base location, which is exactly dedup.
            self._by_digest.setdefault(d, (offset, length))

    def lookup(self, digest: bytes) -> Optional[Tuple[int, int]]:
        return self._by_digest.get(digest)

    def __len__(self) -> int:
        return len(self._by_digest)


def encode_frame(
    base: Optional[ChunkIndex],
    pieces: Iterable,
    chunk_bytes: int,
    codec: Optional[Codec] = None,
    *,
    lanes: int = 1,
    tracer=None,
    metrics=None,
) -> Tuple[bytes, DeltaStats]:
    """Encode a piece stream as a v3 delta frame against ``base``.

    ``pieces`` is the serializer's iovec (``dump_chunks`` output);
    ``base=None`` produces an all-literal frame (compression-only mode).
    With ``lanes > 1`` the literal compress stage runs through the
    pipelined executor so codec CPU overlaps the frame copy-out.
    Returns ``(frame, stats)``; the caller compares ``len(frame)``
    against the full blob and falls back to monolithic when the recipe
    does not win.
    """
    codec = codec if codec is not None else NullCodec()
    null_codec = isinstance(codec, NullCodec)
    views = []
    for piece in pieces:
        mv = memoryview(piece)
        if mv.ndim != 1 or mv.itemsize != 1:
            mv = mv.cast("B")
        if len(mv):
            views.append(mv)
    bounds = chunk_bounds((len(v) for v in views), chunk_bytes)

    # Flatten chunk views without copying: walk the piece list alongside
    # the bounds (bounds never straddle a piece).
    chunks: List[memoryview] = []
    piece_idx = 0
    piece_start = 0
    for offset, length in bounds:
        while offset >= piece_start + len(views[piece_idx]):
            piece_start += len(views[piece_idx])
            piece_idx += 1
        local = offset - piece_start
        chunks.append(views[piece_idx][local : local + length])

    out_len = sum(len(v) for v in views)
    out_crc = 0
    for v in views:
        out_crc = zlib.crc32(v, out_crc)

    reused: Dict[int, Tuple[int, int, bytes]] = {}
    literal_idx: List[int] = []
    digests: List[bytes] = []
    for i, chunk in enumerate(chunks):
        d = _digest(chunk)
        digests.append(d)
        hit = base.lookup(d) if base is not None else None
        if hit is not None:
            reused[i] = (hit[0], hit[1], d)
        else:
            literal_idx.append(i)

    # Compress literals — in pipelined lanes when asked, so the codec
    # overlaps the assemble copy below on multi-chunk frames.
    def _compress(i: int) -> bytes:
        return codec.encode(chunks[i])

    encoded: Dict[int, bytes] = {}
    if null_codec:
        pass  # literals ship as raw views; no copy before the join
    elif lanes > 1 and len(literal_idx) > 1:
        pipe = PipelinedTransfer(
            [("compress", lambda i, _idx: (i, _compress(i)))],
            lanes=lanes,
            tracer=tracer,
            metrics=metrics,
            name="delta-compress",
        )
        for i, blob in pipe.run(literal_idx).results:
            encoded[i] = blob
    else:
        for i in literal_idx:
            encoded[i] = _compress(i)

    parts: List = [b""]  # placeholder for the header
    bytes_reused = 0
    bytes_literal = 0
    saved_compression = 0
    for i, chunk in enumerate(chunks):
        if i in reused:
            offset, length, d = reused[i]
            parts.append(_REUSE.pack(_OP_REUSE, offset, length, d))
            bytes_reused += length
            continue
        orig_len = len(chunk)
        bytes_literal += orig_len
        if null_codec:
            parts.append(
                _LITERAL.pack(_OP_LITERAL, codec.wire_id, orig_len,
                              orig_len, digests[i])
            )
            parts.append(chunk)
        else:
            enc = encoded[i]
            if len(enc) < orig_len:
                parts.append(
                    _LITERAL.pack(_OP_LITERAL, codec.wire_id, orig_len,
                                  len(enc), digests[i])
                )
                parts.append(enc)
                saved_compression += orig_len - len(enc)
            else:
                # Incompressible chunk: ship raw, marked codec "none".
                parts.append(
                    _LITERAL.pack(_OP_LITERAL, 0, orig_len, orig_len,
                                  digests[i])
                )
                parts.append(chunk)
    parts[0] = _HEADER.pack(
        DELTA_MAGIC,
        _FRAME_VERSION,
        len(base.blob) if base is not None else 0,
        base.crc if base is not None else 0,
        out_len,
        out_crc,
        len(chunks),
    )
    frame = b"".join(parts)
    stats = DeltaStats(
        mode="delta" if base is not None else "literal",
        bytes_total=out_len,
        bytes_on_wire=len(frame),
        bytes_reused=bytes_reused,
        bytes_literal=bytes_literal,
        bytes_saved_compression=saved_compression,
        chunks_total=len(chunks),
        chunks_reused=len(reused),
    )
    return frame, stats


def is_delta_frame(blob) -> bool:
    """True when ``blob`` is a v3 delta frame (by magic)."""
    return bytes(memoryview(blob)[:4]) == DELTA_MAGIC


def frame_info(frame) -> Dict[str, int]:
    """Header fields of a v3 frame (without decoding the ops)."""
    mv = memoryview(frame)
    if len(mv) < _HEADER.size or bytes(mv[:4]) != DELTA_MAGIC:
        raise StorageError("not a delta frame (bad magic)")
    magic, version, base_len, base_crc, out_len, out_crc, nops = (
        _HEADER.unpack_from(mv, 0)
    )
    if version != _FRAME_VERSION:
        raise StorageError(f"unsupported delta frame version {version}")
    return {
        "version": version,
        "base_len": base_len,
        "base_crc": base_crc,
        "out_len": out_len,
        "out_crc": out_crc,
        "nops": nops,
    }


def decode_frame(frame, base_blob: Optional[bytes]) -> bytes:
    """Reconstruct the full v2 blob from a frame plus the held base.

    Verification is layered: reuse ops re-digest the base range,
    literal ops check post-codec length against the recipe, and the
    whole reconstruction checks against the frame's CRC-32 — any
    mismatch raises :class:`~repro.errors.IntegrityError` before a
    single byte can reach the double buffer.  A missing/mismatched base
    raises :class:`DeltaBaseError` (fall back, don't fail).
    """
    info = frame_info(frame)
    mv = memoryview(frame)
    if info["base_len"]:
        if base_blob is None:
            raise DeltaBaseError(
                f"delta frame needs a {info['base_len']}-byte base blob "
                f"but none is held"
            )
        if (
            len(base_blob) != info["base_len"]
            or zlib.crc32(base_blob) != info["base_crc"]
        ):
            raise DeltaBaseError(
                f"held base does not match the frame's negotiated base "
                f"(len {len(base_blob)} vs {info['base_len']})"
            )
        base_mv = memoryview(base_blob)
    else:
        base_mv = memoryview(b"")

    out = bytearray(info["out_len"])
    out_mv = memoryview(out)
    pos = _HEADER.size
    write = 0
    for _ in range(info["nops"]):
        if pos >= len(mv):
            raise IntegrityError("truncated delta frame (ops)")
        tag = mv[pos]
        if tag == _OP_REUSE:
            if pos + _REUSE.size > len(mv):
                raise IntegrityError("truncated delta frame (reuse op header)")
            _tag, offset, length, digest = _REUSE.unpack_from(mv, pos)
            pos += _REUSE.size
            if offset + length > len(base_mv):
                raise DeltaBaseError(
                    f"reuse op [{offset}:{offset + length}] exceeds the "
                    f"held base ({len(base_mv)} bytes)"
                )
            chunk = base_mv[offset : offset + length]
            if _digest(chunk) != digest:
                raise IntegrityError(
                    "reused chunk digest mismatch (base blob corrupt?)"
                )
        elif tag == _OP_LITERAL:
            if pos + _LITERAL.size > len(mv):
                raise IntegrityError(
                    "truncated delta frame (literal op header)"
                )
            _tag, codec_id, orig_len, enc_len, digest = (
                _LITERAL.unpack_from(mv, pos)
            )
            pos += _LITERAL.size
            if pos + enc_len > len(mv):
                raise IntegrityError("truncated delta frame (literal)")
            chunk = codec_for_id(codec_id).decode(
                mv[pos : pos + enc_len], orig_len
            )
            pos += enc_len
            if _digest(chunk) != digest:
                raise IntegrityError("literal chunk digest mismatch")
        else:
            raise IntegrityError(f"unknown delta op tag {tag}")
        if write + len(chunk) > len(out_mv):
            raise IntegrityError("delta recipe overflows the declared length")
        out_mv[write : write + len(chunk)] = chunk
        write += len(chunk)
    if write != info["out_len"]:
        raise IntegrityError(
            f"delta recipe reconstructed {write} bytes, header says "
            f"{info['out_len']}"
        )
    actual = zlib.crc32(out)
    if actual != info["out_crc"]:
        raise IntegrityError(
            f"reconstructed blob CRC mismatch: frame says "
            f"{info['out_crc']:#010x}, got {actual:#010x}",
            expected=info["out_crc"],
            actual=actual,
        )
    return bytes(out)


@dataclass
class _ProducerEntry:
    """Producer-retained encode state for one version."""

    blob: bytes
    index: ChunkIndex


class DeltaManager:
    """Negotiation state for the delta wire path (both ends).

    Producer side: retains the last ``cache_versions`` monolithic blobs
    (plus chunk indexes) per model, knows which version the consumer
    holds, and decides delta vs monolithic per save.  Consumer side:
    retains the reconstructed blob of the last successful load per
    model, which is the base the next frame reuses against.  In this
    reproduction both ends live in one process, but the two maps are
    kept strictly separate so losing one side (a restarted consumer)
    exercises the real fallback.
    """

    def __init__(self, config: Optional[DeltaConfig] = None, *,
                 serializer=None, lanes: int = 1,
                 tracer=None, metrics=None):
        self.config = config if config is not None else DeltaConfig()
        self.serializer = serializer
        self.lanes = max(1, lanes)
        self.tracer = tracer
        self.metrics = metrics
        self._lock = threading.Lock()
        # producer: model -> {version: _ProducerEntry}, insertion-ordered
        self._produced: Dict[str, Dict[int, _ProducerEntry]] = {}
        # negotiation: model -> version the consumer last confirmed
        self._held_version: Dict[str, int] = {}
        # consumer: model -> (version, full blob)
        self._held_blob: Dict[str, Tuple[int, bytes]] = {}

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def _remember(self, model_name: str, version: int, blob: bytes,
                  piece_lengths: Iterable[int]) -> None:
        entry = _ProducerEntry(
            blob=bytes(blob),
            index=ChunkIndex(blob, self.config.chunk_bytes, piece_lengths),
        )
        with self._lock:
            cache = self._produced.setdefault(model_name, {})
            cache[version] = entry
            while len(cache) > self.config.cache_versions:
                cache.pop(next(iter(cache)))

    def _pieces_of(self, blob: bytes, state) -> Tuple[List, List[int]]:
        """The iovec to chunk: serializer pieces when possible, else the
        whole blob as one piece (still correct, coarser boundaries)."""
        if self.serializer is not None and state is not None:
            pieces = list(self.serializer.dump_chunks(state))
        else:
            pieces = [memoryview(blob)]
        lengths = []
        for p in pieces:
            mv = memoryview(p)
            if mv.ndim != 1 or mv.itemsize != 1:
                mv = mv.cast("B")
            lengths.append(len(mv))
        return pieces, lengths

    def remember_saved(
        self, model_name: str, version: int, blob: bytes, state=None
    ) -> None:
        """Retain a monolithic save for future diffs and fallbacks.

        Used when the wire decision was made elsewhere (e.g. a direct
        PFS save, which always ships monolithic): the version still
        enters the producer cache so later volatile-tier saves can diff
        against it and baseless consumers can re-fetch it.
        """
        if not self.config.enabled:
            return
        _, piece_lengths = self._pieces_of(blob, state)
        self._remember(model_name, version, blob, piece_lengths)

    def encode_for_save(
        self,
        model_name: str,
        version: int,
        blob: bytes,
        state=None,
        prev_state=None,
    ) -> Tuple[Optional[bytes], DeltaStats]:
        """Decide and encode the wire form for one save.

        Returns ``(frame, stats)``; ``frame=None`` means ship the
        monolithic ``blob`` (stats then records the monolithic bytes).
        Always retains ``blob`` for future diffs and for the consumer's
        missing-base fallback, even when the decision is monolithic.
        """
        pieces, piece_lengths = self._pieces_of(blob, state)
        mono = DeltaStats(
            mode="monolithic", bytes_total=len(blob), bytes_on_wire=len(blob)
        )
        if not self.config.enabled:
            return None, mono

        with self._lock:
            held = self._held_version.get(model_name)
            base_entry = (
                self._produced.get(model_name, {}).get(held)
                if held is not None
                else None
            )
        codec = self.config.codec()
        null_codec = isinstance(codec, NullCodec)

        try:
            if base_entry is None:
                if null_codec:
                    # No base and nothing to compress: the frame could
                    # only add overhead.
                    return None, mono
                frame, stats = encode_frame(
                    None, pieces, self.config.chunk_bytes, codec,
                    lanes=self.lanes, tracer=self.tracer, metrics=self.metrics,
                )
            else:
                # Snapshot-level early-out (the promoted incremental
                # diff): when (almost) everything changed and no codec
                # can claw bytes back, skip the digest pass entirely.
                if null_codec and state is not None:
                    if prev_state is None and self.serializer is not None:
                        # The retained base blob *is* the previous state;
                        # zero-copy views make the comparison cheap
                        # relative to digesting every chunk.
                        try:
                            prev_state = self.serializer.loads(
                                base_entry.blob, copy=False
                            )
                        except Exception:
                            prev_state = None
                    from repro.core.transfer.incremental import changed_fraction

                    if (
                        prev_state is not None
                        and changed_fraction(prev_state, state)
                        >= self.config.full_change_threshold
                    ):
                        return None, mono
                frame, stats = encode_frame(
                    base_entry.index, pieces, self.config.chunk_bytes, codec,
                    lanes=self.lanes, tracer=self.tracer, metrics=self.metrics,
                )
        finally:
            self._remember(model_name, version, blob, piece_lengths)
        if len(frame) >= len(blob):
            # The delta would be larger (fully-changed or incompressible
            # payload): monolithic fallback, by construction never worse.
            return None, mono
        return frame, stats

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def decode_for_load(self, model_name: str, frame) -> bytes:
        """Reconstruct a fetched frame against the held base."""
        with self._lock:
            held = self._held_blob.get(model_name)
        base = held[1] if held is not None else None
        return decode_frame(frame, base)

    def register_loaded(self, model_name: str, version: int, blob: bytes) -> None:
        """A consumer finished loading ``version``: new negotiation base."""
        with self._lock:
            self._held_blob[model_name] = (version, bytes(blob))
            self._held_version[model_name] = version

    def held_version(self, model_name: str) -> Optional[int]:
        with self._lock:
            return self._held_version.get(model_name)

    def forget_held(self, model_name: Optional[str] = None) -> None:
        """Drop the consumer-side base(s) (a restarted consumer)."""
        with self._lock:
            if model_name is None:
                self._held_blob.clear()
                self._held_version.clear()
            else:
                self._held_blob.pop(model_name, None)
                self._held_version.pop(model_name, None)

    def full_blob(self, model_name: str, version: int) -> Optional[bytes]:
        """The producer-retained monolithic blob (fallback source)."""
        with self._lock:
            entry = self._produced.get(model_name, {}).get(version)
            return entry.blob if entry is not None else None
