"""Transfer strategies and their timing laws.

A model update's simulated time decomposes into three phases:

- **stall** — what blocks the producer's training loop (paper: "training
  has to be interrupted due to checkpointing");
- **deliver** — background work off the training path (the async engine's
  extra staging copy plus the wire/PFS time);
- **load** — the consumer-side read + deserialize + upload before the
  double-buffer swap.

The end-to-end *model update latency* of Figure 8 is the sum of all
three; the *training overhead* of Figure 9 / Table 1 counts only the
stall.  Timing laws per strategy (sizes are wire bytes, i.e. payload ×
the serializer's byte-overhead factor):

====================  ========================================  =======================
strategy              sync stall / async stall                  deliver (async) | load
====================  ========================================  =======================
GPU-to-GPU            ser + d2d [+ nvlink if sync]              d2d' + nvlink | gpu_read + deser
Host-to-Host          ser + d2h [+ ib if sync]                  dram' + ib    | dram_read + h2d + deser
PFS                   ser + d2h [+ pfs_write if sync]           pfs_write     | pfs_read + h2d + deser
====================  ========================================  =======================

(`'` marks the async engine's extra staging copy; `ser`/`deser` include
the serializer's fixed and per-tensor overheads, which is where the h5py
baseline loses to Viper's compact format.)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.substrates.cost import Cost
from repro.substrates.profiles import HardwareProfile
from repro.dnn.serialization import Serializer

__all__ = [
    "TransferStrategy",
    "CaptureMode",
    "StrategyTimings",
    "compute_timings",
    "load_cost_for_location",
]


class TransferStrategy(enum.Enum):
    """Where the checkpoint travels (paper Fig. 7's transfer selector)."""

    GPU_TO_GPU = "gpu"
    HOST_TO_HOST = "host"
    PFS = "pfs"


class CaptureMode(enum.Enum):
    """Whether the movement blocks training or runs on the engine thread."""

    SYNC = "sync"
    ASYNC = "async"


@dataclass(frozen=True)
class StrategyTimings:
    """The three phases of one model update, as simulated costs."""

    strategy: TransferStrategy
    mode: CaptureMode
    stall: Cost     # blocks the producer's training loop
    deliver: Cost   # background (empty for sync modes)
    load: Cost      # consumer-side critical path

    @property
    def update_latency(self) -> float:
        """Figure 8's end-to-end model update latency."""
        return self.stall.total + self.deliver.total + self.load.total

    @property
    def training_overhead(self) -> float:
        """Figure 9's per-checkpoint training overhead."""
        return self.stall.total


def compute_timings(
    profile: HardwareProfile,
    serializer: Serializer,
    strategy: TransferStrategy,
    mode: CaptureMode,
    payload_bytes: int,
    ntensors: int,
) -> StrategyTimings:
    """Evaluate the timing law for one (strategy, mode) combination."""
    if payload_bytes < 0 or ntensors < 1:
        raise ConfigurationError(
            f"payload_bytes={payload_bytes}, ntensors={ntensors} out of range"
        )
    wire = serializer.wire_bytes(payload_bytes)
    ser = Cost.of("serialize", serializer.serialize_seconds(ntensors))
    deser = Cost.of("deserialize", serializer.deserialize_seconds(ntensors))

    if strategy is TransferStrategy.GPU_TO_GPU:
        snapshot = profile.hbm_copy.transfer_cost(wire)
        wire_cost = profile.nvlink.transfer_cost(wire)
        load = Cost.of("gpu_hbm.read", profile.gpu_hbm.read_time(wire)) + deser
        if mode is CaptureMode.SYNC:
            return StrategyTimings(strategy, mode, ser + snapshot + wire_cost, Cost.zero(), load)
        extra = profile.hbm_copy.transfer_cost(wire)
        return StrategyTimings(strategy, mode, ser + snapshot, extra + wire_cost, load)

    if strategy is TransferStrategy.HOST_TO_HOST:
        d2h = profile.pcie.transfer_cost(wire)
        wire_cost = profile.infiniband.transfer_cost(wire)
        load = (
            Cost.of("host_dram.read", profile.host_dram.read_time(wire))
            + profile.pcie.transfer_cost(wire)
            + deser
        )
        if mode is CaptureMode.SYNC:
            return StrategyTimings(strategy, mode, ser + d2h + wire_cost, Cost.zero(), load)
        extra = profile.dram_copy.transfer_cost(wire)
        return StrategyTimings(strategy, mode, ser + d2h, extra + wire_cost, load)

    if strategy is TransferStrategy.PFS:
        d2h = profile.pcie.transfer_cost(wire)
        write = Cost.of("pfs.write", profile.pfs.write_time(wire, ntensors))
        load = (
            Cost.of("pfs.read", profile.pfs.read_time(wire, ntensors))
            + profile.pcie.transfer_cost(wire)
            + deser
        )
        if mode is CaptureMode.SYNC:
            return StrategyTimings(strategy, mode, ser + d2h + write, Cost.zero(), load)
        extra = profile.dram_copy.transfer_cost(wire)
        return StrategyTimings(strategy, mode, ser + d2h + extra, write, load)

    raise ConfigurationError(f"unknown strategy {strategy!r}")


def load_cost_for_location(
    profile: HardwareProfile,
    serializer: Serializer,
    location: str,
    payload_bytes: int,
    ntensors: int,
) -> Cost:
    """Consumer-side load cost given where the checkpoint resides.

    ``location`` is the metadata record's location field: ``"gpu"``,
    ``"dram"``, or ``"pfs"`` — the same keys the strategies stage into.
    """
    wire = serializer.wire_bytes(payload_bytes)
    deser = Cost.of("deserialize", serializer.deserialize_seconds(ntensors))
    if location == "gpu":
        return Cost.of("gpu_hbm.read", profile.gpu_hbm.read_time(wire)) + deser
    if location == "dram":
        return (
            Cost.of("host_dram.read", profile.host_dram.read_time(wire))
            + profile.pcie.transfer_cost(wire)
            + deser
        )
    if location == "pfs":
        return (
            Cost.of("pfs.read", profile.pfs.read_time(wire, ntensors))
            + profile.pcie.transfer_cost(wire)
            + deser
        )
    raise ConfigurationError(f"unknown checkpoint location {location!r}")
