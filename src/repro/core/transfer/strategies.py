"""Transfer strategies and their timing laws.

A model update's simulated time decomposes into three phases:

- **stall** — what blocks the producer's training loop (paper: "training
  has to be interrupted due to checkpointing");
- **deliver** — background work off the training path (the async engine's
  extra staging copy plus the wire/PFS time);
- **load** — the consumer-side read + deserialize + upload before the
  double-buffer swap.

The end-to-end *model update latency* of Figure 8 is the sum of all
three; the *training overhead* of Figure 9 / Table 1 counts only the
stall.  Timing laws per strategy (sizes are wire bytes, i.e. payload ×
the serializer's byte-overhead factor):

====================  ========================================  =======================
strategy              sync stall / async stall                  deliver (async) | load
====================  ========================================  =======================
GPU-to-GPU            ser + d2d [+ nvlink if sync]              d2d' + nvlink | gpu_read + deser
Host-to-Host          ser + d2h [+ ib if sync]                  dram' + ib    | dram_read + h2d + deser
PFS                   ser + d2h [+ pfs_write if sync]           pfs_write     | pfs_read + h2d + deser
====================  ========================================  =======================

(`'` marks the async engine's extra staging copy; `ser`/`deser` include
the serializer's fixed and per-tensor overheads, which is where the h5py
baseline loses to Viper's compact format.)

When a :class:`~repro.core.transfer.pipeline.PipelineConfig` is supplied
(and enabled), each phase's law is replaced by the chunked-overlap law:
the phase's bottleneck stage runs at full length while every other stage
contributes only its pipeline fill (``1/k`` of its monolithic time for
``k`` chunks), plus a per-chunk scatter setup amortized over the lanes —
so a phase approaches ``max-stage`` instead of ``sum-of-stages``.  The
law is clamped at the monolithic time (a real sender falls back to one
message when per-chunk overhead dominates), making it monotone and exact
at one chunk.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError
from repro.substrates.cost import Cost
from repro.substrates.network.links import LinkSpec
from repro.substrates.profiles import HardwareProfile
from repro.dnn.serialization import Serializer

if TYPE_CHECKING:  # avoid a cycle through repro.obs -> repro.workflow
    from repro.core.transfer.pipeline import PipelineConfig

__all__ = [
    "TransferStrategy",
    "CaptureMode",
    "StrategyTimings",
    "FAILOVER_ORDER",
    "failover_chain",
    "compute_timings",
    "pipelined_phase_cost",
    "load_cost_for_location",
]


class TransferStrategy(enum.Enum):
    """Where the checkpoint travels (paper Fig. 7's transfer selector)."""

    GPU_TO_GPU = "gpu"
    HOST_TO_HOST = "host"
    PFS = "pfs"


#: The paper's fallback chain (§4.4): fastest path first, the PFS —
#: always reachable, always slowest — as the terminal fallback.
FAILOVER_ORDER: tuple = (
    TransferStrategy.GPU_TO_GPU,
    TransferStrategy.HOST_TO_HOST,
    TransferStrategy.PFS,
)


def failover_chain(start: TransferStrategy) -> tuple:
    """Strategies to try, in order, beginning at ``start``.

    ``failover_chain(HOST_TO_HOST) == (HOST_TO_HOST, PFS)`` — failover
    only ever demotes down the chain, never re-promotes to a faster path
    that the selector already rejected.
    """
    idx = FAILOVER_ORDER.index(start)
    return FAILOVER_ORDER[idx:]


class CaptureMode(enum.Enum):
    """Whether the movement blocks training or runs on the engine thread."""

    SYNC = "sync"
    ASYNC = "async"


@dataclass(frozen=True)
class StrategyTimings:
    """The three phases of one model update, as simulated costs."""

    strategy: TransferStrategy
    mode: CaptureMode
    stall: Cost     # blocks the producer's training loop
    deliver: Cost   # background (empty for sync modes)
    load: Cost      # consumer-side critical path

    @property
    def update_latency(self) -> float:
        """Figure 8's end-to-end model update latency."""
        return self.stall.total + self.deliver.total + self.load.total

    @property
    def training_overhead(self) -> float:
        """Figure 9's per-checkpoint training overhead."""
        return self.stall.total


def pipelined_phase_cost(
    cost: Cost,
    wire_link: LinkSpec,
    wire_bytes: int,
    pipeline: PipelineConfig,
) -> Cost:
    """Apply the chunked-overlap law to one phase's stage breakdown.

    With ``k`` chunks the bottleneck stage still runs end to end, every
    other stage overlaps it except for its fill (``1/k`` of its time),
    and each chunk past the first pays the wire link's scatter setup,
    issued by ``lanes`` parallel lanes::

        T_pipe = min(T_mono,
                     max_stage + (T_mono - max_stage) / k
                               + (k - 1) * setup / lanes)

    Monotone in chunks and lanes, never above the monolithic phase time,
    and exactly equal to it at one chunk.  The component breakdown is
    preserved by uniform scaling.
    """
    total = cost.total
    k = pipeline.nchunks(wire_bytes)
    if total <= 0.0 or k <= 1:
        return cost
    stages = cost.breakdown()
    bottleneck = max(stages.values())
    setup = wire_link.latency + wire_link.per_message_overhead
    pipelined = (
        bottleneck
        + (total - bottleneck) / k
        + (k - 1) * setup / pipeline.lanes
    )
    pipelined = min(total, pipelined)
    return cost.scaled(pipelined / total)


_WIRE_LINK_OF = {
    TransferStrategy.GPU_TO_GPU: "nvlink",
    TransferStrategy.HOST_TO_HOST: "infiniband",
    TransferStrategy.PFS: "pcie",
}


def compute_timings(
    profile: HardwareProfile,
    serializer: Serializer,
    strategy: TransferStrategy,
    mode: CaptureMode,
    payload_bytes: int,
    ntensors: int,
    *,
    pipeline: Optional[PipelineConfig] = None,
    wire_scale: float = 1.0,
) -> StrategyTimings:
    """Evaluate the timing law for one (strategy, mode) combination.

    With an enabled ``pipeline``, each phase is reduced by the
    chunked-overlap law (:func:`pipelined_phase_cost`); the default
    ``None`` keeps the monolithic law exactly.

    ``wire_scale`` models the delta/compressed wire path
    (:mod:`repro.core.transfer.delta`): the producer still serializes and
    snapshots the *full* state locally, but only ``wire_scale`` of the
    wire bytes cross the inter-node hop and land in the destination tier
    — so the network/PFS terms and the consumer-side read scale while
    serialize/deserialize and the local capture copy do not.
    """
    if payload_bytes < 0 or ntensors < 1:
        raise ConfigurationError(
            f"payload_bytes={payload_bytes}, ntensors={ntensors} out of range"
        )
    if not 0.0 < wire_scale <= 1.0:
        raise ConfigurationError(
            f"wire_scale must be in (0, 1], got {wire_scale}"
        )
    wire = serializer.wire_bytes(payload_bytes)
    net = wire if wire_scale == 1.0 else max(1, int(wire * wire_scale))
    ser = Cost.of("serialize", serializer.serialize_seconds(ntensors))
    deser = Cost.of("deserialize", serializer.deserialize_seconds(ntensors))

    if strategy is TransferStrategy.GPU_TO_GPU:
        snapshot = profile.hbm_copy.transfer_cost(wire)
        wire_cost = profile.nvlink.transfer_cost(net)
        load = Cost.of("gpu_hbm.read", profile.gpu_hbm.read_time(net)) + deser
        if mode is CaptureMode.SYNC:
            timings = StrategyTimings(
                strategy, mode, ser + snapshot + wire_cost, Cost.zero(), load
            )
        else:
            extra = profile.hbm_copy.transfer_cost(net)
            timings = StrategyTimings(
                strategy, mode, ser + snapshot, extra + wire_cost, load
            )
    elif strategy is TransferStrategy.HOST_TO_HOST:
        d2h = profile.pcie.transfer_cost(wire)
        wire_cost = profile.infiniband.transfer_cost(net)
        load = (
            Cost.of("host_dram.read", profile.host_dram.read_time(net))
            + profile.pcie.transfer_cost(net)
            + deser
        )
        if mode is CaptureMode.SYNC:
            timings = StrategyTimings(
                strategy, mode, ser + d2h + wire_cost, Cost.zero(), load
            )
        else:
            extra = profile.dram_copy.transfer_cost(net)
            timings = StrategyTimings(
                strategy, mode, ser + d2h, extra + wire_cost, load
            )
    elif strategy is TransferStrategy.PFS:
        d2h = profile.pcie.transfer_cost(wire)
        write = Cost.of("pfs.write", profile.pfs.write_time(net, ntensors))
        load = (
            Cost.of("pfs.read", profile.pfs.read_time(net, ntensors))
            + profile.pcie.transfer_cost(net)
            + deser
        )
        if mode is CaptureMode.SYNC:
            timings = StrategyTimings(
                strategy, mode, ser + d2h + write, Cost.zero(), load
            )
        else:
            extra = profile.dram_copy.transfer_cost(wire)
            timings = StrategyTimings(
                strategy, mode, ser + d2h + extra, write, load
            )
    else:
        raise ConfigurationError(f"unknown strategy {strategy!r}")

    if pipeline is None or not pipeline.enabled:
        return timings
    link = getattr(profile, _WIRE_LINK_OF[strategy])
    return StrategyTimings(
        strategy,
        mode,
        pipelined_phase_cost(timings.stall, link, wire, pipeline),
        pipelined_phase_cost(timings.deliver, link, net, pipeline),
        pipelined_phase_cost(timings.load, link, net, pipeline),
    )


def load_cost_for_location(
    profile: HardwareProfile,
    serializer: Serializer,
    location: str,
    payload_bytes: int,
    ntensors: int,
    *,
    pipeline: Optional[PipelineConfig] = None,
    wire_scale: float = 1.0,
) -> Cost:
    """Consumer-side load cost given where the checkpoint resides.

    ``location`` is the metadata record's location field: ``"gpu"``,
    ``"dram"``, or ``"pfs"`` — the same keys the strategies stage into.
    An enabled ``pipeline`` applies the chunked-overlap law, with the
    staging hop (local HBM copy for GPU-resident blobs, PCIe otherwise)
    supplying the per-chunk setup cost.  ``wire_scale`` < 1 means the
    tier holds a delta frame that small instead of the full blob, so
    every byte-proportional term shrinks (deserialize does not — the
    reconstructed state is full-size).
    """
    if not 0.0 < wire_scale <= 1.0:
        raise ConfigurationError(
            f"wire_scale must be in (0, 1], got {wire_scale}"
        )
    wire = serializer.wire_bytes(payload_bytes)
    if wire_scale != 1.0:
        wire = max(1, int(wire * wire_scale))
    deser = Cost.of("deserialize", serializer.deserialize_seconds(ntensors))
    if location == "gpu":
        cost = Cost.of("gpu_hbm.read", profile.gpu_hbm.read_time(wire)) + deser
        link = profile.hbm_copy
    elif location == "dram":
        cost = (
            Cost.of("host_dram.read", profile.host_dram.read_time(wire))
            + profile.pcie.transfer_cost(wire)
            + deser
        )
        link = profile.pcie
    elif location == "pfs":
        cost = (
            Cost.of("pfs.read", profile.pfs.read_time(wire, ntensors))
            + profile.pcie.transfer_cost(wire)
            + deser
        )
        link = profile.pcie
    else:
        raise ConfigurationError(f"unknown checkpoint location {location!r}")
    if pipeline is None or not pipeline.enabled:
        return cost
    return pipelined_phase_cost(cost, link, wire, pipeline)
