"""Transfer Selector: choose where a checkpoint should travel.

Paper Fig. 7: "When processing the save request from the producer, Model
Weights Handler first utilizes the Transfer Selector to select a proper
transfer strategy based on the existing workload on the storage".  The
policy implemented here follows §4.4:

1. prefer direct GPU-to-GPU when a GPU-direct path exists and the
   checkpoint fits the consumer-side GPU staging budget;
2. fall back to Host-to-Host RDMA when host memory has room;
3. fall back to the PFS otherwise (always available, always slowest).

Capacity checks use virtual (paper-scale) sizes against the staging
budget, so a 40 GB GPU holding a 4.7 GB double-buffered checkpoint pair
behaves like the real thing.  A pluggable ``veto`` hook lets deployments
add workload-aware logic (e.g. skip the GPU path while inference batches
saturate HBM bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.core.transfer.strategies import TransferStrategy, failover_chain

__all__ = ["TransferSelector"]

VetoFn = Callable[[TransferStrategy, int], bool]


@dataclass
class TransferSelector:
    """Strategy-selection policy for the Model Weights Handler.

    Attributes:
        gpu_direct_available: whether a GPU-to-GPU path exists (NVIDIA
            GPUDirect RDMA / P2P, AMD ROCm RDMA — paper §4.4).
        gpu_staging_budget: bytes of GPU memory the consumer grants for
            staging (double buffering needs 2x the model size).
        host_staging_budget: bytes of host memory for staging.
        forced: pin a strategy regardless of policy (micro-benchmarks).
        veto: optional hook returning True to skip a candidate strategy.
    """

    gpu_direct_available: bool = True
    gpu_staging_budget: int = 0
    host_staging_budget: int = 0
    forced: Optional[TransferStrategy] = None
    veto: Optional[VetoFn] = None

    def __post_init__(self):
        if self.gpu_staging_budget < 0 or self.host_staging_budget < 0:
            raise ConfigurationError("staging budgets must be non-negative")

    def select(self, nbytes: int) -> TransferStrategy:
        """Pick the strategy for a checkpoint of ``nbytes`` (virtual)."""
        if nbytes < 0:
            raise ConfigurationError(f"negative checkpoint size {nbytes}")
        if self.forced is not None:
            return self.forced
        # Double buffering on the receiving side needs two copies resident.
        if (
            self.gpu_direct_available
            and 2 * nbytes <= self.gpu_staging_budget
            and not self._vetoed(TransferStrategy.GPU_TO_GPU, nbytes)
        ):
            return TransferStrategy.GPU_TO_GPU
        if 2 * nbytes <= self.host_staging_budget and not self._vetoed(
            TransferStrategy.HOST_TO_HOST, nbytes
        ):
            return TransferStrategy.HOST_TO_HOST
        return TransferStrategy.PFS

    def chain(
        self, nbytes: int, start: Optional[TransferStrategy] = None
    ) -> tuple:
        """Failover candidates for this checkpoint, preferred-first.

        Starts at ``start`` (default: :meth:`select`'s pick) and walks
        down the paper's GPU -> HOST -> PFS chain; a forced selector
        still fails over — pinning a strategy expresses a *preference*
        for micro-benchmarks, not a licence to lose checkpoints.
        """
        return failover_chain(self.select(nbytes) if start is None else start)

    def _vetoed(self, strategy: TransferStrategy, nbytes: int) -> bool:
        return self.veto is not None and self.veto(strategy, nbytes)
