"""Model Weights Handler: the memory-first save/load facade (paper Fig. 7).

The handler processes the producer's *save* requests and the consumer's
*load* requests end to end:

save path (producer node)
    serialize -> select strategy -> stage the blob into the destination
    (a one-sided put into the consumer's GPU/host memory, or a PFS write)
    -> publish metadata -> publish a notification.  In async mode
    everything past the local snapshot runs on the
    :class:`~repro.core.transfer.engine.AsyncTransferEngine` worker.

load path (consumer node)
    read the latest metadata record -> fetch the blob from its location
    -> deserialize -> hand the state dict to the caller (who stages it
    into the double buffer).

The destination tier stores hold the *real* serialized bytes; the
simulated time for each phase comes from the strategy timing laws in
:mod:`repro.core.transfer.strategies`.  Writing into the consumer's
:class:`~repro.substrates.memory.storage.TierStore` models the one-sided
RDMA put the paper's MPI/GPUDirect path performs — no receiver CPU
involvement, data lands directly in remote memory.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import (
    CircuitOpenError,
    DeltaBaseError,
    IntegrityError,
    MetadataError,
    ObjectNotFoundError,
    RetriesExhausted,
    TransferError,
)
from repro.resilience.faults import default_seed
from repro.resilience.retry import RetryPolicy, execute_with_retry
from repro.obs.freshness import NULL_FRESHNESS
from repro.obs.lineage import NULL_LINEAGE, TraceContext
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.core.stats import StatsManager
from repro.substrates.cost import Cost
from repro.substrates.cluster.cluster import Cluster
from repro.substrates.cluster.node import ComputeNode
from repro.substrates.memory.storage import TierStore
from repro.substrates.profiles import HardwareProfile
from repro.dnn.serialization import Serializer, ViperSerializer, state_dict_nbytes
from repro.core.metadata import MetadataStore, ModelRecord
from repro.core.notification import NotificationBroker
from repro.core.transfer.delta import (
    DeltaConfig,
    DeltaManager,
    DeltaStats,
    is_delta_frame,
)
from repro.core.transfer.engine import AsyncTransferEngine, TransferJob
from repro.core.transfer.flush import BackgroundFlusher, FlushJob
from repro.core.transfer.pipeline import (
    BufferPool,
    PipelineConfig,
    serialize_pipelined,
)
from repro.core.transfer.selector import TransferSelector
from repro.core.transfer.strategies import (
    CaptureMode,
    StrategyTimings,
    TransferStrategy,
    compute_timings,
    failover_chain,
    load_cost_for_location,
)

__all__ = ["UpdateResult", "LoadResult", "ModelWeightsHandler"]

_LOCATION_OF = {
    TransferStrategy.GPU_TO_GPU: "gpu",
    TransferStrategy.HOST_TO_HOST: "host_dram",
    TransferStrategy.PFS: "pfs",
}


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of one save request."""

    model_name: str
    version: int
    strategy: TransferStrategy
    mode: CaptureMode
    stall: Cost          # charged to the producer's training loop
    background: Cost     # charged to the engine thread (async only)
    load: Cost           # what the consumer will pay to pick this up
    record: ModelRecord

    @property
    def update_latency(self) -> float:
        """Figure 8's end-to-end latency for this update."""
        return self.stall.total + self.background.total + self.load.total


@dataclass(frozen=True)
class LoadResult:
    """Outcome of one load request."""

    model_name: str
    version: int
    state: Dict[str, np.ndarray]
    cost: Cost
    record: ModelRecord
    #: which replica actually served this load (may differ from the
    #: record's primary location after eviction or node loss).
    location: str = ""


class ModelWeightsHandler:
    """Save/load engine shared by one producer/consumer pair.

    One handler instance is producer-side (owns the engine and flusher);
    the consumer side may share the same object (same process in this
    reproduction) and only calls :meth:`load_weights`.
    """

    def __init__(
        self,
        cluster: Cluster,
        producer: ComputeNode,
        consumer: ComputeNode,
        profile: HardwareProfile,
        *,
        metadata: Optional[MetadataStore] = None,
        broker: Optional[NotificationBroker] = None,
        serializer: Optional[Serializer] = None,
        selector: Optional[TransferSelector] = None,
        flush_history: bool = False,
        retention=None,
        topic: str = "model-updates",
        tracer=None,
        metrics=None,
        pipeline: Optional[PipelineConfig] = None,
        delta: Optional[DeltaConfig] = None,
        retry_policy: Optional[RetryPolicy] = None,
        failover: bool = True,
        lineage=None,
        freshness=None,
        stats=None,
        breakers=None,
    ):
        self.cluster = cluster
        self.producer = producer
        self.consumer = consumer
        self.profile = profile
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.lineage = lineage if lineage is not None else NULL_LINEAGE
        self.freshness = freshness if freshness is not None else NULL_FRESHNESS
        self.metadata = metadata if metadata is not None else MetadataStore()
        self.broker = (
            broker
            if broker is not None
            else NotificationBroker(metrics=self.metrics)
        )
        self.serializer = serializer if serializer is not None else ViperSerializer()
        self.selector = selector if selector is not None else TransferSelector(
            gpu_direct_available=True,
            gpu_staging_budget=consumer.gpu.spec.capacity_bytes // 2,
            host_staging_budget=consumer.dram.spec.capacity_bytes // 2,
        )
        self.topic = topic
        self.flush_history = flush_history
        self.retention = retention
        self.pipeline = pipeline if pipeline is not None else PipelineConfig()
        #: Reusable staging buffers for the pipelined serialize path.
        self.buffer_pool = BufferPool(max_buffers=4)
        self.stats = stats if stats is not None else StatsManager(metrics=self.metrics)
        #: Optional per-site circuit breakers (BreakerBoard).  A tripped
        #: site is skipped without burning its retry budget: staging
        #: moves straight down the failover chain, loads move to the
        #: next-cheapest replica.
        self.breakers = breakers
        #: Delta/compressed wire path (strictly opt-in; a disabled
        #: manager leaves the monolithic path byte-for-byte intact).
        self.delta = DeltaManager(
            delta if delta is not None else DeltaConfig(),
            serializer=self.serializer,
            lanes=self.pipeline.lanes if self.pipeline.enabled else 1,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.failover = failover
        # Seeded jitter streams (keyed off VIPER_FAULT_SEED like the fault
        # plans) keep retry/failover sequences reproducible across runs;
        # one stream per thread that draws, so interleaving cannot leak.
        self._retry_rng = random.Random(f"{default_seed()}/handler.retry")
        self.engine = AsyncTransferEngine(
            tracer=self.tracer,
            metrics=self.metrics,
            retry_policy=self.retry_policy,
            retry_rng=random.Random(f"{default_seed()}/engine.retry"),
        ).start()
        self.flusher = BackgroundFlusher(
            cluster.pfs,
            self.metadata,
            tracer=self.tracer,
            metrics=self.metrics,
            lineage=self.lineage,
            sim_now=lambda: self.sim_now,
        ).start()
        self._clock_lock = threading.Lock()
        self._sim_now = 0.0
        self._versions: Dict[str, int] = {}
        # Crash-point hook (duck-typed CrashPlan or None): checked at the
        # publish-path kill points; zero overhead when no plan is armed.
        self.crashpoints = None

    def _crash(self, site: str) -> None:
        cp = self.crashpoints
        if cp is not None:
            cp.reached(site)

    # ------------------------------------------------------------------
    # Simulated wall clock for metadata timestamps
    # ------------------------------------------------------------------
    def _advance_now(self, dt: float) -> float:
        with self._clock_lock:
            self._sim_now += dt
            return self._sim_now

    @property
    def sim_now(self) -> float:
        with self._clock_lock:
            return self._sim_now

    # ------------------------------------------------------------------
    # Save path
    # ------------------------------------------------------------------
    def next_version(self, model_name: str) -> int:
        with self._clock_lock:
            v = self._versions.get(model_name, 0) + 1
            self._versions[model_name] = v
            return v

    def _dest_store(self, strategy: TransferStrategy) -> TierStore:
        if strategy is TransferStrategy.GPU_TO_GPU:
            return self.consumer.gpu
        if strategy is TransferStrategy.HOST_TO_HOST:
            return self.consumer.dram
        return self.cluster.pfs

    def save_weights(
        self,
        model_name: str,
        state: Dict[str, np.ndarray],
        *,
        mode: CaptureMode = CaptureMode.ASYNC,
        version: Optional[int] = None,
        virtual_bytes: Optional[int] = None,
        virtual_tensors: Optional[int] = None,
        train_iteration: int = 0,
        train_loss: float = float("nan"),
        strategy: Optional[TransferStrategy] = None,
    ) -> UpdateResult:
        """Capture and deliver one checkpoint of ``state``.

        ``virtual_bytes`` / ``virtual_tensors`` scale the *timing* to the
        paper-scale checkpoint while the real (small) tensors flow through
        the data path.  They default to the actual payload size.
        """
        if not state:
            raise TransferError("save_weights: empty state dict")
        payload_bytes = state_dict_nbytes(state)
        vbytes = payload_bytes if virtual_bytes is None else int(virtual_bytes)
        vtensors = len(state) if virtual_tensors is None else int(virtual_tensors)
        chosen = strategy if strategy is not None else self.selector.select(vbytes)
        ver = self.next_version(model_name) if version is None else version
        # Mint this version's causal identity at capture; everything
        # downstream (record, notification, flush job, chunk spans)
        # carries it, never re-derives it.
        ctx = (
            TraceContext.make(model_name, ver) if self.lineage.enabled else None
        )
        save_span = self.tracer.span(
            "handler.save",
            track="producer",
            model=model_name,
            version=ver,
            strategy=chosen.value,
            mode=mode.value,
            nbytes=vbytes,
        )
        with save_span as sp:
            if ctx is not None and self.tracer.enabled:
                # Re-parent under the save span so the distributed trace
                # hangs off the producing operation.
                ctx = ctx.child(sp.span_id)
            with self.tracer.span(
                "handler.serialize",
                track="producer",
                pipelined=self.pipeline.enabled,
            ):
                if self.pipeline.enabled:
                    # Chunked capture: zero-copy iovec pieces streamed into
                    # one staging buffer (single copy, overlapped).
                    blob = serialize_pipelined(
                        self.serializer,
                        state,
                        self.pipeline,
                        tracer=self.tracer,
                        metrics=self.metrics,
                        trace_ctx=ctx.to_header() if ctx is not None else "",
                    )
                else:
                    blob = self.serializer.dumps(state)
            # Delta encode before the timing law: the law's wire terms
            # scale to what actually moves.  Digest/codec CPU is a real
            # (wall-clock) producer cost; the simulated law scales bytes.
            wire_blob: bytes = blob
            dstats: Optional[DeltaStats] = None
            if self.delta.enabled and chosen is TransferStrategy.PFS:
                # The durable root always ships the self-contained blob;
                # retain it so later volatile-tier saves can diff it.
                self.delta.remember_saved(model_name, ver, blob, state=state)
            elif self.delta.enabled:
                had_base = self.delta.held_version(model_name) is not None
                with self.tracer.span(
                    "handler.delta_encode", track="producer", version=ver
                ) as dsp:
                    frame, dstats = self.delta.encode_for_save(
                        model_name, ver, blob, state=state
                    )
                    if frame is not None:
                        wire_blob = frame
                    elif had_base:
                        # A base was negotiated but the recipe lost
                        # (fully-changed or incompressible payload).
                        self.stats.record_delta_fallback("encode")
                    dsp.set(
                        mode=dstats.mode,
                        wire_bytes=dstats.bytes_on_wire,
                        dedup_ratio=round(dstats.dedup_hit_ratio, 4),
                    )
            wire_scale = dstats.wire_fraction if dstats is not None else 1.0
            # Wire accounting in virtual (paper-scale) bytes, matching
            # every other byte counter in the stats snapshot.
            wire_virtual = max(1, int(round(vbytes * wire_scale)))
            scale_v = vbytes / dstats.bytes_total if dstats is not None and dstats.bytes_total else 0.0
            self.stats.record_wire(
                vbytes,
                wire_virtual,
                saved_dedup=int(dstats.bytes_reused * scale_v) if dstats else 0,
                saved_compression=(
                    int(dstats.bytes_saved_compression * scale_v) if dstats else 0
                ),
                chunks_total=dstats.chunks_total if dstats else 0,
                chunks_reused=dstats.chunks_reused if dstats else 0,
                delta=wire_blob is not blob,
            )
            timings = compute_timings(
                self.profile, self.serializer, chosen, mode, vbytes, vtensors,
                pipeline=self.pipeline, wire_scale=wire_scale,
            )
            result = self._stage_and_publish(
                model_name, blob, chosen, mode, timings, ver, vbytes,
                vtensors, train_iteration, train_loss, ctx=ctx,
                wire_blob=wire_blob,
                wire_virtual=wire_virtual if wire_blob is not blob else 0,
                dstats=dstats,
            )
            sp.set(sim_stall=result.stall.total, sim_background=result.background.total)
        self.metrics.counter(
            "handler_saves_total", strategy=chosen.value, mode=mode.value
        ).inc()
        self.metrics.histogram(
            "handler_save_stall_sim_seconds", strategy=chosen.value
        ).observe(result.stall.total)
        return result

    def _stage_once(
        self,
        key: str,
        blob: bytes,
        strategy: TransferStrategy,
        wire: int,
        vtensors: int,
        ver: int,
        wire_blob: Optional[bytes] = None,
        wire_virtual: int = 0,
    ) -> Cost:
        """One staging attempt: put the wire form into the strategy's tier.

        Volatile tiers (GPU/host) receive the delta frame when one was
        encoded; the PFS — the crash-recovery root — always receives the
        self-contained monolithic blob, so durability never depends on a
        consumer-held base surviving a restart.
        """
        if wire_blob is not None and strategy is not TransferStrategy.PFS:
            return self._dest_store(strategy).put(
                key, wire_blob, virtual_bytes=wire_virtual,
                nobjects=vtensors, version=ver,
            )
        return self._dest_store(strategy).put(
            key, blob, virtual_bytes=wire, nobjects=vtensors, version=ver
        )

    def _stage_resilient(
        self,
        key: str,
        blob: bytes,
        chosen: TransferStrategy,
        wire: int,
        vtensors: int,
        ver: int,
        wire_blob: Optional[bytes] = None,
        wire_virtual: int = 0,
    ) -> Tuple[TransferStrategy, float]:
        """Stage with retries, failing over down the strategy chain.

        Each strategy gets the full retry budget; when it is exhausted the
        next (slower, more reliable) strategy in the paper's GPU -> HOST
        -> PFS chain takes over.  Returns the strategy that actually holds
        the blob plus the simulated backoff seconds spent, or raises the
        terminal :class:`~repro.errors.RetriesExhausted` when even the PFS
        rejected every attempt.
        """
        chain = failover_chain(chosen) if self.failover else (chosen,)
        last: Optional[RetriesExhausted] = None
        skipped_open = 0
        backoff = 0.0
        for i, strat in enumerate(chain):
            site = f"stage.{strat.value}"
            if self.breakers is not None and not self.breakers.allow(
                site, self.sim_now
            ):
                # The breaker remembers this site's last exhaustion:
                # skip straight to the next strategy instead of burning
                # the full retry budget against a tier that is down.
                skipped_open += 1
                if i + 1 < len(chain):
                    self.stats.record_failover(strat.value, chain[i + 1].value)
                continue
            try:
                outcome = execute_with_retry(
                    lambda s=strat: self._stage_once(
                        key, blob, s, wire, vtensors, ver,
                        wire_blob=wire_blob, wire_virtual=wire_virtual,
                    ),
                    self.retry_policy,
                    site=site,
                    rng=self._retry_rng,
                    tracer=self.tracer,
                    metrics=self.metrics,
                    on_retry=lambda site, _a, _e: self.stats.record_retry(site),
                )
                if self.breakers is not None:
                    self.breakers.success(site, self.sim_now)
                return strat, backoff + outcome.backoff_seconds
            except RetriesExhausted as exc:
                last = exc
                if self.breakers is not None:
                    self.breakers.failure(site, self.sim_now)
                # The exhausted scope's backoff (un-jittered estimate; the
                # exception does not carry the drawn delays).
                backoff += sum(
                    self.retry_policy.delay_for(a)
                    for a in range(1, self.retry_policy.max_attempts)
                )
                if i + 1 < len(chain):
                    nxt = chain[i + 1]
                    self.stats.record_failover(strat.value, nxt.value)
                    with self.tracer.span(
                        "handler.failover",
                        track="engine",
                        src=strat.value,
                        dst=nxt.value,
                        key=key,
                    ):
                        pass
        if last is None:
            # Every strategy in the chain was skipped by an open breaker:
            # fail fast with the soonest retry hint, not RetriesExhausted
            # (nothing was actually attempted, so nothing should retry).
            assert skipped_open and self.breakers is not None
            raise CircuitOpenError(
                f"all {skipped_open} staging strategies have open circuits "
                f"for {key!r}",
                site=f"stage.{chain[0].value}",
                retry_after=min(
                    self.breakers.retry_after(f"stage.{s.value}", self.sim_now)
                    for s in chain
                ),
            )
        raise last

    def _stage_and_publish(
        self,
        model_name: str,
        blob: bytes,
        chosen: TransferStrategy,
        mode: CaptureMode,
        timings: StrategyTimings,
        ver: int,
        vbytes: int,
        vtensors: int,
        train_iteration: int,
        train_loss: float,
        ctx: Optional[TraceContext] = None,
        wire_blob: Optional[bytes] = None,
        wire_virtual: int = 0,
        dstats: Optional[DeltaStats] = None,
    ) -> UpdateResult:
        key = f"{model_name}/v{ver}"
        header = ctx.to_header() if ctx is not None else ""
        if wire_blob is None:
            wire_blob = blob
        # The PFS stages the monolithic blob even when a frame was
        # encoded, so a PFS-resident record always moves full bytes.
        frame_shipped = (
            wire_blob is not blob and chosen is not TransferStrategy.PFS
        )
        # Optimistic record: the producer's stall was paid for ``chosen``
        # regardless of any later failover, so created_at advances now.
        record = ModelRecord(
            model_name=model_name,
            version=ver,
            nbytes=vbytes,
            location=_locname(chosen),
            path=key,
            ntensors=vtensors,
            durable=(chosen is TransferStrategy.PFS),
            created_at=self._advance_now(timings.stall.total),
            train_iteration=train_iteration,
            train_loss=train_loss,
            trace_ctx=header,
            wire_bytes=wire_virtual if frame_shipped else 0,
        )
        if ctx is not None:
            self.lineage.record(
                ctx,
                "capture",
                sim_time=record.created_at,
                actor="producer",
                strategy=chosen.value,
                mode=mode.value,
                nbytes=vbytes,
            )

        wire = self.serializer.wire_bytes(vbytes)

        def _deliver() -> Tuple[TransferStrategy, ModelRecord, StrategyTimings, Cost]:
            with self.tracer.span(
                "handler.publish", track="engine", key=key, version=ver
            ):
                final, backoff = self._stage_resilient(
                    key, blob, chosen, wire, vtensors, ver,
                    wire_blob=wire_blob if frame_shipped else None,
                    wire_virtual=(
                        self.serializer.wire_bytes(wire_virtual)
                        if frame_shipped
                        else 0
                    ),
                )
                # Kill point: blob staged, metadata not yet journaled.
                # Recovery must not invent a version the journal never saw.
                self._crash("publish.staged")
                if final is chosen:
                    rec, fin = record, timings
                else:
                    # Failover changed where the checkpoint lives: the
                    # published metadata and the deliver/load laws follow
                    # the strategy that actually succeeded.  A failover
                    # into the PFS ships the monolithic blob, so the
                    # record's wire accounting reverts with it.
                    frame_final = (
                        frame_shipped and final is not TransferStrategy.PFS
                    )
                    if frame_shipped and not frame_final:
                        # The PFS failover shipped the monolithic blob:
                        # the optimistic record_wire savings never
                        # happened, so the stats counters revert with
                        # the record's wire accounting.
                        scale_v = (
                            vbytes / dstats.bytes_total
                            if dstats is not None and dstats.bytes_total
                            else 0.0
                        )
                        self.stats.revert_wire_savings(
                            vbytes,
                            wire_virtual,
                            saved_dedup=(
                                int(dstats.bytes_reused * scale_v)
                                if dstats else 0
                            ),
                            saved_compression=(
                                int(dstats.bytes_saved_compression * scale_v)
                                if dstats else 0
                            ),
                            chunks_total=dstats.chunks_total if dstats else 0,
                            chunks_reused=dstats.chunks_reused if dstats else 0,
                        )
                        self.stats.record_delta_fallback("failover")
                    rec = replace(
                        record,
                        location=_locname(final),
                        durable=(final is TransferStrategy.PFS),
                        replicas=(),
                        wire_bytes=wire_virtual if frame_final else 0,
                    )
                    fin = compute_timings(
                        self.profile, self.serializer, final, mode,
                        vbytes, vtensors, pipeline=self.pipeline,
                        wire_scale=rec.wire_fraction,
                    )
                cost = self.metadata.publish_version(rec)
                # Lifecycle timestamps on the handler's simulated clock:
                # the transfer lands deliver-time after capture, the
                # publish adds the metadata write, the notify adds the
                # broker push latency.
                t_xfer = record.created_at + fin.deliver.total
                t_pub = t_xfer + cost.total
                if ctx is not None:
                    xfer_attrs = dict(strategy=final.value, key=key)
                    if rec.wire_bytes:
                        xfer_attrs.update(
                            wire_bytes=rec.wire_bytes,
                            bytes=vbytes,
                            dedup_ratio=round(
                                dstats.dedup_hit_ratio, 4
                            ) if dstats is not None else 0.0,
                        )
                    self.lineage.record(
                        ctx, "transfer", sim_time=t_xfer, actor="engine",
                        **xfer_attrs,
                    )
                    self.lineage.record(
                        ctx, "publish", sim_time=t_pub, actor="metadata",
                        location=rec.location, durable=rec.durable,
                    )
                self.freshness.record_publish(model_name, ver, t_pub)
                # Kill point: journaled + published, but consumers were
                # never notified; recovery re-announces from metadata.
                self._crash("publish.metadata")
                self.broker.publish(
                    self.topic,
                    model_name=model_name,
                    version=ver,
                    location=rec.location,
                    now=self.sim_now,
                    payload={"path": key, "nbytes": vbytes},
                    trace_ctx=header,
                )
                if ctx is not None:
                    self.lineage.record(
                        ctx,
                        "notify",
                        sim_time=t_pub + self.broker.push_latency,
                        actor="broker",
                        topic=self.topic,
                    )
                # Kill point: notified but the history flush never ran;
                # the checkpoint is published yet still non-durable.
                self._crash("publish.notified")
                if self.flush_history and final is not TransferStrategy.PFS:
                    self.flusher.submit(
                        FlushJob(
                            key=key, blob=blob, record=rec, trace_ctx=header
                        )
                    )
                if backoff:
                    cost = cost + Cost.of("retry.backoff", backoff)
                return final, rec, fin, fin.deliver + cost

        if mode is CaptureMode.SYNC:
            final, rec, fin, cost = _deliver()
            # In sync mode the wire time is already inside the stall; the
            # background components are the metadata write and any retry
            # backoff spent recovering from injected/real faults.
            background = cost.only(("metadata", "retry"))
            return UpdateResult(
                model_name,
                ver,
                final,
                mode,
                timings.stall,
                background,
                fin.load,
                rec,
            )

        job = TransferJob(
            description=f"save {key} via {chosen.value}",
            action=lambda: _deliver()[3],
            nbytes=wire_virtual if frame_shipped else vbytes,
        )
        self.engine.submit(job)
        return UpdateResult(
            model_name,
            ver,
            chosen,
            mode,
            timings.stall,
            timings.deliver,
            timings.load,
            record,
        )

    # ------------------------------------------------------------------
    # Load path
    # ------------------------------------------------------------------
    def load_weights(
        self,
        model_name: str,
        version: Optional[int] = None,
    ) -> LoadResult:
        """Fetch the latest (or a specific) checkpoint for a model.

        The load is location-aware (paper Fig. 3's Stats Manager role):
        among the record's replicas, the cheapest tier that still holds
        the blob serves the request — e.g. the consumer-memory copy when
        present, the durable PFS copy after eviction or node loss.
        """
        with self.tracer.span(
            "handler.load", track="consumer", model=model_name
        ) as sp:
            if version is None:
                record, meta_cost = self.metadata.latest(model_name)
                if record is None:
                    raise MetadataError(f"no published checkpoint for {model_name!r}")
            else:
                record, meta_cost = self.metadata.record(model_name, version)
            candidates = self.stats.order(record.replicas)
            chosen = None
            state = None
            used_delta = False
            backoff = 0.0
            last_exc: Optional[RetriesExhausted] = None
            skipped_open = 0
            for location in candidates:
                store = self._store_for_location(location)
                if record.path not in store:
                    continue
                site = f"load.{location}"
                if self.breakers is not None and not self.breakers.allow(
                    site, self.sim_now
                ):
                    # This tier's breaker is open — its last loads burned
                    # the full retry budget and failed.  Fall through to
                    # the next-cheapest replica without re-proving it.
                    skipped_open += 1
                    continue
                # Fetch + verify + deserialize is one retryable unit: a
                # corrupted read (checksum mismatch -> IntegrityError) is
                # re-requested from the same replica, and a permanently
                # corrupt replica falls through to the next (slower, more
                # durable) one.  Only a fully-verified state dict ever
                # reaches the caller's double buffer.
                try:
                    outcome = execute_with_retry(
                        lambda s=store, loc=location: self._fetch_once(
                            s, record, loc
                        ),
                        self.retry_policy,
                        site=site,
                        rng=self._retry_rng,
                        tracer=self.tracer,
                        metrics=self.metrics,
                        on_retry=lambda site, _a, _e: self.stats.record_retry(site),
                    )
                except RetriesExhausted as exc:
                    last_exc = exc
                    if self.breakers is not None:
                        self.breakers.failure(site, self.sim_now)
                    backoff += sum(
                        self.retry_policy.delay_for(a)
                        for a in range(1, self.retry_policy.max_attempts)
                    )
                    continue
                if self.breakers is not None:
                    self.breakers.success(site, self.sim_now)
                state, used_delta = outcome.value
                backoff += outcome.backoff_seconds
                chosen = location
                break
            if chosen is None or state is None:
                if last_exc is not None:
                    raise last_exc
                if skipped_open:
                    # Replicas exist but every holding tier's circuit is
                    # open: fail fast, and distinctly — the caller can
                    # serve last-known-good and retry after the hint.
                    raise CircuitOpenError(
                        f"all {skipped_open} replica tiers of "
                        f"{record.path!r} have open circuits",
                        site=f"load.{candidates[0]}",
                        retry_after=min(
                            self.breakers.retry_after(
                                f"load.{loc}", self.sim_now
                            )
                            for loc in candidates
                        ),
                    )
                self.stats.record_miss()
                raise ObjectNotFoundError(
                    f"no replica of {record.path!r} present in any of "
                    f"{candidates} (evicted before load?)"
                )
            cost = meta_cost + load_cost_for_location(
                self.profile,
                self.serializer,
                _strategy_key(chosen),
                record.nbytes,
                record.ntensors,
                pipeline=self.pipeline,
                # A delta frame that small was fetched instead of the full
                # blob; a monolithic fallback pays the full read.
                wire_scale=record.wire_fraction if used_delta else 1.0,
            )
            if backoff:
                cost = cost + Cost.of("retry.backoff", backoff)
            self._advance_now(cost.total)
            self.stats.record_load(
                chosen, record.nbytes, cost.total, fallback=(chosen != candidates[0])
            )
            sp.set(version=record.version, location=chosen, sim_seconds=cost.total)
            return LoadResult(
                model_name, record.version, state, cost, record, location=chosen
            )

    def _fetch_once(
        self, store: TierStore, record: ModelRecord, location: str
    ) -> Tuple[Dict[str, np.ndarray], bool]:
        """One fetch attempt: read, reconstruct (delta), deserialize.

        Returns ``(state, used_delta)``.  Verification is layered: a
        delta frame's per-chunk digests and reconstruction CRC check
        first, then the serializer's v2 checksum — a mismatch anywhere is
        counted and re-raised so the retry executor re-requests the blob
        instead of serving garbage.  A frame whose base the consumer no
        longer holds degrades to the producer-retained monolithic blob
        (:class:`~repro.errors.DeltaBaseError` propagates only when that
        fallback is gone too, sending the load to the next replica).
        """
        with self.tracer.span(
            "handler.fetch", track="consumer", location=location
        ):
            blob, _store_cost = store.get(record.path)
        used_delta = False
        if is_delta_frame(blob):
            with self.tracer.span(
                "handler.delta_decode", track="consumer", location=location
            ):
                try:
                    blob = self.delta.decode_for_load(record.model_name, blob)
                    used_delta = True
                except DeltaBaseError:
                    full = self.delta.full_blob(record.model_name, record.version)
                    if full is None:
                        raise
                    self.stats.record_delta_fallback("missing_base")
                    blob = full
                except IntegrityError:
                    self.stats.record_corruption(location)
                    raise
        with self.tracer.span(
            "handler.deserialize",
            track="consumer",
            pipelined=self.pipeline.enabled,
        ):
            try:
                # Zero-copy fast path: the pipelined consumer reads the
                # weights in place (read-only views over the staged blob).
                state = self.serializer.loads(
                    blob, copy=not self.pipeline.enabled
                )
            except IntegrityError:
                self.stats.record_corruption(location)
                raise
        if self.delta.enabled:
            # Only a fully-verified blob becomes the next negotiation
            # base — corrupt reconstructions can never poison a diff.
            self.delta.register_loaded(record.model_name, record.version, blob)
        return state, used_delta

    def _store_for_location(self, location: str) -> TierStore:
        if location == "gpu":
            return self.consumer.gpu
        if location == "host_dram":
            return self.consumer.dram
        if location == "pfs":
            return self.cluster.pfs
        raise TransferError(f"unknown checkpoint location {location!r}")

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def restore_version_counters(self) -> None:
        """Resume version numbering from the replayed metadata.

        After journal replay the store knows every version the previous
        incarnation journaled; the producer must continue *above* them or
        ``publish_version`` would reject the duplicate.
        """
        with self._clock_lock:
            for model_name in self.metadata.models():
                versions = self.metadata.versions(model_name)
                if versions:
                    self._versions[model_name] = max(
                        self._versions.get(model_name, 0), max(versions)
                    )

    def recover_pending(self) -> Dict[str, int]:
        """Reconcile journaled-but-not-durable checkpoints after replay.

        For every record with ``durable=False`` there are three cases:

        - the blob already sits in the PFS (the crash hit between the
          flusher's put and its metadata acknowledgement): *complete* the
          acknowledgement exactly once;
        - the blob survives only in a volatile replica (the flush never
          ran): *requeue* it on the background flusher;
        - the blob is gone everywhere (volatile memory died with the
          process): *prune* the record via a journaled drop, so consumers
          can never be pointed at bytes that no longer exist.
        """
        completed = requeued = pruned = 0
        for model_name in self.metadata.models():
            for version in self.metadata.versions(model_name):
                rec, _ = self.metadata.record(model_name, version)
                if rec.durable:
                    continue
                if rec.path in self.cluster.pfs:
                    self.metadata.compare_and_swap(
                        replace(
                            rec,
                            durable=True,
                            replicas=tuple(
                                dict.fromkeys(rec.replicas + ("pfs",))
                            ),
                        )
                    )
                    completed += 1
                    continue
                blob = None
                if self.flush_history:
                    for location in rec.replicas:
                        if location == "pfs":
                            continue
                        store = self._store_for_location(location)
                        if rec.path in store:
                            blob, _ = store.get(rec.path)
                            break
                if blob is not None:
                    self.flusher.submit(FlushJob(key=rec.path, blob=blob, record=rec))
                    requeued += 1
                else:
                    self.metadata.drop_version(model_name, version)
                    pruned += 1
        return {"completed": completed, "requeued": requeued, "pruned": pruned}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout: float = 60.0) -> None:
        """Wait for async saves and flushes to settle, then apply the
        retention policy (if configured) to every model's history."""
        self.engine.drain(timeout)
        self.flusher.drain(timeout)
        if self.retention is not None:
            from repro.core.transfer.retention import collect_garbage

            for model_name in self.metadata.models():
                collect_garbage(
                    self.metadata, self.cluster.pfs, model_name, self.retention
                )

    def close(self) -> None:
        self.engine.stop()
        self.flusher.stop()


def _locname(strategy: TransferStrategy) -> str:
    return _LOCATION_OF[strategy]


def _strategy_key(location: str) -> str:
    """Map a metadata location back to the load-cost key."""
    return {"gpu": "gpu", "host_dram": "dram", "pfs": "pfs"}[location]
