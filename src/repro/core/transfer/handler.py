"""Model Weights Handler: the memory-first save/load facade (paper Fig. 7).

The handler processes the producer's *save* requests and the consumer's
*load* requests end to end:

save path (producer node)
    serialize -> select strategy -> stage the blob into the destination
    (a one-sided put into the consumer's GPU/host memory, or a PFS write)
    -> publish metadata -> publish a notification.  In async mode
    everything past the local snapshot runs on the
    :class:`~repro.core.transfer.engine.AsyncTransferEngine` worker.

load path (consumer node)
    read the latest metadata record -> fetch the blob from its location
    -> deserialize -> hand the state dict to the caller (who stages it
    into the double buffer).

The destination tier stores hold the *real* serialized bytes; the
simulated time for each phase comes from the strategy timing laws in
:mod:`repro.core.transfer.strategies`.  Writing into the consumer's
:class:`~repro.substrates.memory.storage.TierStore` models the one-sided
RDMA put the paper's MPI/GPUDirect path performs — no receiver CPU
involvement, data lands directly in remote memory.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import MetadataError, ObjectNotFoundError, TransferError
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.core.stats import StatsManager
from repro.substrates.cost import Cost
from repro.substrates.cluster.cluster import Cluster
from repro.substrates.cluster.node import ComputeNode
from repro.substrates.memory.storage import TierStore
from repro.substrates.profiles import HardwareProfile
from repro.dnn.serialization import Serializer, ViperSerializer, state_dict_nbytes
from repro.core.metadata import MetadataStore, ModelRecord
from repro.core.notification import NotificationBroker
from repro.core.transfer.engine import AsyncTransferEngine, TransferJob
from repro.core.transfer.flush import BackgroundFlusher, FlushJob
from repro.core.transfer.pipeline import (
    BufferPool,
    PipelineConfig,
    serialize_pipelined,
)
from repro.core.transfer.selector import TransferSelector
from repro.core.transfer.strategies import (
    CaptureMode,
    StrategyTimings,
    TransferStrategy,
    compute_timings,
    load_cost_for_location,
)

__all__ = ["UpdateResult", "LoadResult", "ModelWeightsHandler"]

_LOCATION_OF = {
    TransferStrategy.GPU_TO_GPU: "gpu",
    TransferStrategy.HOST_TO_HOST: "host_dram",
    TransferStrategy.PFS: "pfs",
}


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of one save request."""

    model_name: str
    version: int
    strategy: TransferStrategy
    mode: CaptureMode
    stall: Cost          # charged to the producer's training loop
    background: Cost     # charged to the engine thread (async only)
    load: Cost           # what the consumer will pay to pick this up
    record: ModelRecord

    @property
    def update_latency(self) -> float:
        """Figure 8's end-to-end latency for this update."""
        return self.stall.total + self.background.total + self.load.total


@dataclass(frozen=True)
class LoadResult:
    """Outcome of one load request."""

    model_name: str
    version: int
    state: Dict[str, np.ndarray]
    cost: Cost
    record: ModelRecord
    #: which replica actually served this load (may differ from the
    #: record's primary location after eviction or node loss).
    location: str = ""


class ModelWeightsHandler:
    """Save/load engine shared by one producer/consumer pair.

    One handler instance is producer-side (owns the engine and flusher);
    the consumer side may share the same object (same process in this
    reproduction) and only calls :meth:`load_weights`.
    """

    def __init__(
        self,
        cluster: Cluster,
        producer: ComputeNode,
        consumer: ComputeNode,
        profile: HardwareProfile,
        *,
        metadata: Optional[MetadataStore] = None,
        broker: Optional[NotificationBroker] = None,
        serializer: Optional[Serializer] = None,
        selector: Optional[TransferSelector] = None,
        flush_history: bool = False,
        retention=None,
        topic: str = "model-updates",
        tracer=None,
        metrics=None,
        pipeline: Optional[PipelineConfig] = None,
    ):
        self.cluster = cluster
        self.producer = producer
        self.consumer = consumer
        self.profile = profile
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.metadata = metadata if metadata is not None else MetadataStore()
        self.broker = (
            broker
            if broker is not None
            else NotificationBroker(metrics=self.metrics)
        )
        self.serializer = serializer if serializer is not None else ViperSerializer()
        self.selector = selector if selector is not None else TransferSelector(
            gpu_direct_available=True,
            gpu_staging_budget=consumer.gpu.spec.capacity_bytes // 2,
            host_staging_budget=consumer.dram.spec.capacity_bytes // 2,
        )
        self.topic = topic
        self.flush_history = flush_history
        self.retention = retention
        self.pipeline = pipeline if pipeline is not None else PipelineConfig()
        #: Reusable staging buffers for the pipelined serialize path.
        self.buffer_pool = BufferPool(max_buffers=4)
        self.stats = StatsManager(metrics=self.metrics)
        self.engine = AsyncTransferEngine(
            tracer=self.tracer, metrics=self.metrics
        ).start()
        self.flusher = BackgroundFlusher(
            cluster.pfs, self.metadata, tracer=self.tracer, metrics=self.metrics
        ).start()
        self._clock_lock = threading.Lock()
        self._sim_now = 0.0
        self._versions: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Simulated wall clock for metadata timestamps
    # ------------------------------------------------------------------
    def _advance_now(self, dt: float) -> float:
        with self._clock_lock:
            self._sim_now += dt
            return self._sim_now

    @property
    def sim_now(self) -> float:
        with self._clock_lock:
            return self._sim_now

    # ------------------------------------------------------------------
    # Save path
    # ------------------------------------------------------------------
    def next_version(self, model_name: str) -> int:
        with self._clock_lock:
            v = self._versions.get(model_name, 0) + 1
            self._versions[model_name] = v
            return v

    def _dest_store(self, strategy: TransferStrategy) -> TierStore:
        if strategy is TransferStrategy.GPU_TO_GPU:
            return self.consumer.gpu
        if strategy is TransferStrategy.HOST_TO_HOST:
            return self.consumer.dram
        return self.cluster.pfs

    def save_weights(
        self,
        model_name: str,
        state: Dict[str, np.ndarray],
        *,
        mode: CaptureMode = CaptureMode.ASYNC,
        version: Optional[int] = None,
        virtual_bytes: Optional[int] = None,
        virtual_tensors: Optional[int] = None,
        train_iteration: int = 0,
        train_loss: float = float("nan"),
        strategy: Optional[TransferStrategy] = None,
    ) -> UpdateResult:
        """Capture and deliver one checkpoint of ``state``.

        ``virtual_bytes`` / ``virtual_tensors`` scale the *timing* to the
        paper-scale checkpoint while the real (small) tensors flow through
        the data path.  They default to the actual payload size.
        """
        if not state:
            raise TransferError("save_weights: empty state dict")
        payload_bytes = state_dict_nbytes(state)
        vbytes = payload_bytes if virtual_bytes is None else int(virtual_bytes)
        vtensors = len(state) if virtual_tensors is None else int(virtual_tensors)
        chosen = strategy if strategy is not None else self.selector.select(vbytes)
        timings = compute_timings(
            self.profile, self.serializer, chosen, mode, vbytes, vtensors,
            pipeline=self.pipeline,
        )
        ver = self.next_version(model_name) if version is None else version
        save_span = self.tracer.span(
            "handler.save",
            track="producer",
            model=model_name,
            version=ver,
            strategy=chosen.value,
            mode=mode.value,
            nbytes=vbytes,
        )
        with save_span as sp:
            with self.tracer.span(
                "handler.serialize",
                track="producer",
                pipelined=self.pipeline.enabled,
            ):
                if self.pipeline.enabled:
                    # Chunked capture: zero-copy iovec pieces streamed into
                    # one staging buffer (single copy, overlapped).
                    blob = serialize_pipelined(
                        self.serializer,
                        state,
                        self.pipeline,
                        tracer=self.tracer,
                        metrics=self.metrics,
                    )
                else:
                    blob = self.serializer.dumps(state)
            result = self._stage_and_publish(
                model_name, blob, chosen, mode, timings, ver, vbytes,
                vtensors, train_iteration, train_loss,
            )
            sp.set(sim_stall=result.stall.total, sim_background=result.background.total)
        self.metrics.counter(
            "handler_saves_total", strategy=chosen.value, mode=mode.value
        ).inc()
        self.metrics.histogram(
            "handler_save_stall_sim_seconds", strategy=chosen.value
        ).observe(result.stall.total)
        return result

    def _stage_and_publish(
        self,
        model_name: str,
        blob: bytes,
        chosen: TransferStrategy,
        mode: CaptureMode,
        timings: StrategyTimings,
        ver: int,
        vbytes: int,
        vtensors: int,
        train_iteration: int,
        train_loss: float,
    ) -> UpdateResult:
        key = f"{model_name}/v{ver}"
        record = ModelRecord(
            model_name=model_name,
            version=ver,
            nbytes=vbytes,
            location=_locname(chosen),
            path=key,
            ntensors=vtensors,
            durable=(chosen is TransferStrategy.PFS),
            created_at=self._advance_now(timings.stall.total),
            train_iteration=train_iteration,
            train_loss=train_loss,
        )

        wire = self.serializer.wire_bytes(vbytes)

        def _publish() -> Cost:
            with self.tracer.span(
                "handler.publish", track="engine", key=key, version=ver
            ):
                dest = self._dest_store(chosen)
                dest.put(
                    key,
                    blob,
                    virtual_bytes=wire,
                    nobjects=vtensors,
                    version=ver,
                )
                cost = self.metadata.publish_version(record)
                self.broker.publish(
                    self.topic,
                    model_name=model_name,
                    version=ver,
                    location=record.location,
                    now=self.sim_now,
                    payload={"path": key, "nbytes": vbytes},
                )
                if self.flush_history and chosen is not TransferStrategy.PFS:
                    self.flusher.submit(FlushJob(key=key, blob=blob, record=record))
                return timings.deliver + cost

        if mode is CaptureMode.SYNC:
            background = _publish()
            # In sync mode the wire time is already inside the stall; the
            # only background component is the metadata write.
            background = background.only(("metadata",))
            return UpdateResult(
                model_name,
                ver,
                chosen,
                mode,
                timings.stall,
                background,
                timings.load,
                record,
            )

        job = TransferJob(description=f"save {key} via {chosen.value}", action=_publish)
        self.engine.submit(job)
        return UpdateResult(
            model_name,
            ver,
            chosen,
            mode,
            timings.stall,
            timings.deliver,
            timings.load,
            record,
        )

    # ------------------------------------------------------------------
    # Load path
    # ------------------------------------------------------------------
    def load_weights(
        self,
        model_name: str,
        version: Optional[int] = None,
    ) -> LoadResult:
        """Fetch the latest (or a specific) checkpoint for a model.

        The load is location-aware (paper Fig. 3's Stats Manager role):
        among the record's replicas, the cheapest tier that still holds
        the blob serves the request — e.g. the consumer-memory copy when
        present, the durable PFS copy after eviction or node loss.
        """
        with self.tracer.span(
            "handler.load", track="consumer", model=model_name
        ) as sp:
            if version is None:
                record, meta_cost = self.metadata.latest(model_name)
                if record is None:
                    raise MetadataError(f"no published checkpoint for {model_name!r}")
            else:
                record, meta_cost = self.metadata.record(model_name, version)
            candidates = self.stats.order(record.replicas)
            chosen = None
            blob = None
            for location in candidates:
                store = self._store_for_location(location)
                if record.path in store:
                    with self.tracer.span(
                        "handler.fetch", track="consumer", location=location
                    ):
                        blob, _store_cost = store.get(record.path)
                    chosen = location
                    break
            if chosen is None or blob is None:
                self.stats.record_miss()
                raise ObjectNotFoundError(
                    f"no replica of {record.path!r} present in any of "
                    f"{candidates} (evicted before load?)"
                )
            with self.tracer.span(
                "handler.deserialize",
                track="consumer",
                pipelined=self.pipeline.enabled,
            ):
                # Zero-copy fast path: the pipelined consumer reads the
                # weights in place (read-only views over the staged blob).
                state = self.serializer.loads(
                    blob, copy=not self.pipeline.enabled
                )
            cost = meta_cost + load_cost_for_location(
                self.profile,
                self.serializer,
                _strategy_key(chosen),
                record.nbytes,
                record.ntensors,
                pipeline=self.pipeline,
            )
            self._advance_now(cost.total)
            self.stats.record_load(
                chosen, record.nbytes, cost.total, fallback=(chosen != candidates[0])
            )
            sp.set(version=record.version, location=chosen, sim_seconds=cost.total)
            return LoadResult(
                model_name, record.version, state, cost, record, location=chosen
            )

    def _store_for_location(self, location: str) -> TierStore:
        if location == "gpu":
            return self.consumer.gpu
        if location == "host_dram":
            return self.consumer.dram
        if location == "pfs":
            return self.cluster.pfs
        raise TransferError(f"unknown checkpoint location {location!r}")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout: float = 60.0) -> None:
        """Wait for async saves and flushes to settle, then apply the
        retention policy (if configured) to every model's history."""
        self.engine.drain(timeout)
        self.flusher.drain(timeout)
        if self.retention is not None:
            from repro.core.transfer.retention import collect_garbage

            for model_name in self.metadata.models():
                collect_garbage(
                    self.metadata, self.cluster.pfs, model_name, self.retention
                )

    def close(self) -> None:
        self.engine.stop()
        self.flusher.stop()


def _locname(strategy: TransferStrategy) -> str:
    return _LOCATION_OF[strategy]


def _strategy_key(location: str) -> str:
    """Map a metadata location back to the load-cost key."""
    return {"gpu": "gpu", "host_dram": "dram", "pfs": "pfs"}[location]
