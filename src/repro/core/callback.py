"""Checkpoint Callback: Viper's hook into ``model.fit`` (paper Fig. 3).

"Before starting training in the producer, a Checkpoint Callback object is
created and added to the callback list of model.fit()."  The callback:

- tracks the training loss of every iteration (the IPP's raw material);
- during the warm-up stage only observes;
- at the end of warm-up, optionally asks the IPP to compute the
  near-optimal schedule (fixed-interval or greedy), or uses an explicit
  schedule / fixed interval it was given;
- at each scheduled iteration, calls ``viper.save_weights`` with the
  current model state, tagging the checkpoint with the iteration and the
  observed loss.

The callback accumulates the simulated training-stall time so benchmarks
can report Figure 9 / Table 1's "training overhead" directly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import ScheduleError
from repro.core.predictor.adapter import CheckpointFrequencyAdapter
from repro.core.predictor.cilp import CILParams
from repro.core.predictor.ipp import InferencePerformancePredictor
from repro.core.predictor.schedules import Schedule
from repro.core.transfer.strategies import CaptureMode
from repro.dnn.training import Callback

__all__ = ["CheckpointCallback"]


class CheckpointCallback(Callback):
    """Keras-style callback driving Viper checkpoints during training.

    Exactly one of the scheduling inputs must be provided:

    - ``schedule`` — an explicit :class:`Schedule`;
    - ``interval`` — checkpoint every N iterations after warm-up;
    - ``algorithm`` (+ ``cil_params``, ``total_iters``,
      ``total_inferences``) — ``"fixed"``/``"greedy"`` let the IPP derive
      a static schedule from the warm-up losses when the warm-up ends;
      ``"adaptive"`` runs the online Checkpoint Frequency Adapter, which
      re-tunes its greedy threshold from observed losses every epoch.
    """

    def __init__(
        self,
        viper,
        model_name: str,
        *,
        warmup_iters: int = 0,
        schedule: Optional[Schedule] = None,
        interval: Optional[int] = None,
        algorithm: Optional[str] = None,
        cil_params: Optional[CILParams] = None,
        total_iters: Optional[int] = None,
        total_inferences: Optional[int] = None,
        iters_per_epoch: Optional[int] = None,
        mode: CaptureMode = CaptureMode.ASYNC,
        virtual_bytes: Optional[int] = None,
        virtual_tensors: Optional[int] = None,
        save_initial: bool = True,
        tracer=None,
        metrics=None,
    ):
        from repro.obs.metrics import NULL_METRICS
        from repro.obs.tracer import NULL_TRACER

        super().__init__()
        provided = sum(x is not None for x in (schedule, interval, algorithm))
        if provided != 1:
            raise ScheduleError(
                "provide exactly one of schedule=, interval=, algorithm="
            )
        if algorithm is not None and (
            cil_params is None or total_iters is None or total_inferences is None
        ):
            raise ScheduleError(
                "algorithm= needs cil_params=, total_iters=, total_inferences="
            )
        if warmup_iters < 0:
            raise ScheduleError("warmup_iters must be non-negative")
        self.viper = viper
        self.model_name = model_name
        self.warmup_iters = warmup_iters
        self.schedule = schedule
        self.interval = interval
        self.algorithm = algorithm
        self.cil_params = cil_params
        self.total_iters = total_iters
        self.total_inferences = total_inferences
        self.iters_per_epoch = iters_per_epoch
        self.mode = mode
        self.virtual_bytes = virtual_bytes
        self.virtual_tensors = virtual_tensors
        self.save_initial = save_initial
        # Fall back to the deployment's tracer/metrics when not given.
        self.tracer = tracer if tracer is not None else getattr(
            viper, "tracer", NULL_TRACER
        )
        self.metrics = metrics if metrics is not None else getattr(
            viper, "metrics", NULL_METRICS
        )

        self.iteration_losses: List[float] = []
        self.checkpoints_taken: List[int] = []
        self.stall_seconds = 0.0
        self.ipp: Optional[InferencePerformancePredictor] = None
        self.adapter: Optional[CheckpointFrequencyAdapter] = None
        if algorithm == "adaptive":
            if warmup_iters < 4:
                raise ScheduleError("adaptive mode needs warmup_iters >= 4")
            self.adapter = CheckpointFrequencyAdapter(
                cil_params,
                warmup_iters=warmup_iters,
                end_iter=total_iters,
                total_infers=total_inferences,
                refit_every=iters_per_epoch,
            )
        self._schedule_set = frozenset(schedule.iterations) if schedule else None

    # ------------------------------------------------------------------
    def _should_checkpoint(self, iteration: int) -> bool:
        if iteration <= self.warmup_iters:
            return False
        if self._schedule_set is not None:
            return iteration in self._schedule_set
        if self.interval is not None:
            return (iteration - self.warmup_iters) % self.interval == 0
        return False  # algorithm mode before the schedule is computed

    def _finish_warmup(self) -> None:
        """Fit the IPP and materialize the schedule (algorithm mode)."""
        self.ipp = InferencePerformancePredictor(self.cil_params)
        self.ipp.observe_warmup(self.iteration_losses, start_iteration=1)
        computed = self.ipp.schedule(
            self.algorithm,
            end_iter=self.total_iters,
            total_infers=self.total_inferences,
            iters_per_epoch=self.iters_per_epoch,
        )
        self.schedule = computed
        self._schedule_set = frozenset(computed.iterations)

    def _save(self, iteration: int, loss: float) -> None:
        with self.tracer.span(
            "callback.save", track="producer", model=self.model_name,
            iteration=iteration,
        ) as sp:
            result = self.viper.save_weights(
                self.model_name,
                self.model.state_dict(),
                mode=self.mode,
                train_iteration=iteration,
                train_loss=loss,
                virtual_bytes=self.virtual_bytes,
                virtual_tensors=self.virtual_tensors,
            )
            sp.set(version=result.version, sim_stall=result.stall.total)
        self.checkpoints_taken.append(iteration)
        self.stall_seconds += result.stall.total
        self.metrics.counter(
            "callback_checkpoints_total", model=self.model_name
        ).inc()
        self.metrics.histogram(
            "callback_stall_sim_seconds", model=self.model_name
        ).observe(result.stall.total)

    # ------------------------------------------------------------------
    # Callback hooks
    # ------------------------------------------------------------------
    def on_train_begin(self, logs: Dict[str, Any]) -> None:
        if self.save_initial and self.warmup_iters == 0:
            self._save(0, float("nan"))

    def on_batch_end(self, iteration: int, logs: Dict[str, Any]) -> None:
        loss = float(logs["loss"])
        self.iteration_losses.append(loss)
        if self.adapter is not None:
            take = self.adapter.observe(iteration, loss)
            if iteration == self.warmup_iters and self.save_initial:
                self._save(iteration, loss)
            elif take:
                self._save(iteration, loss)
            return
        if iteration == self.warmup_iters:
            if self.algorithm is not None:
                self._finish_warmup()
            if self.save_initial:
                # The warm-up model is the consumer's first serving model.
                self._save(iteration, loss)
            return
        if self._should_checkpoint(iteration):
            self._save(iteration, loss)

    def on_train_end(self, logs: Dict[str, Any]) -> None:
        # Let in-flight async updates settle so the consumer can observe
        # the final model.
        drain = getattr(self.viper, "drain", None)
        if drain is not None:
            drain()
