"""Checkpoint Frequency Adapter: online schedule adaptation.

The paper's architecture (Fig. 3, "Performance Modeling") pairs the
inference performance estimator with a *Checkpoint Frequency Adapter*
whose job is to "get feedback and dynamically adjust the model checkpoint
frequency".  This module implements that component:

- the adapter watches every iteration's training loss (the Checkpoint
  Callback feeds it);
- it keeps a trailing-window smoothed estimate of the current training
  quality;
- it triggers a checkpoint when the smoothed loss has improved by more
  than the current threshold since the last checkpoint — Algorithm 3's
  decision rule, applied to *observed* rather than extrapolated loss;
- periodically (each epoch by default) it refits the TLP on everything
  observed so far and re-runs the CILP threshold sweep over the remaining
  horizon, so the threshold tracks the actual convergence rate instead of
  relying on a single warm-up extrapolation.

Compared to the purely predictive Algorithm 3 (available as
``greedy_schedule``), the adapter is robust to learning curves whose
post-warm-up shape the warm-up fit cannot pin down — the situation the
paper's "training may not converge at the same rate during the runtime"
motivation describes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence

import numpy as np

from repro.errors import FitError, ScheduleError
from repro.core.predictor.cilp import CILParams
from repro.core.predictor.schedules import (
    DEFAULT_THRESHOLD_SCALES,
    best_greedy_schedule,
    warmup_threshold,
)
from repro.core.predictor.tlp import TrainingLossPredictor

__all__ = ["CheckpointFrequencyAdapter"]


class CheckpointFrequencyAdapter:
    """Online greedy checkpoint decisions with periodic threshold refits."""

    def __init__(
        self,
        params: CILParams,
        *,
        warmup_iters: int,
        end_iter: int,
        total_infers: int,
        refit_every: Optional[int] = None,
        smoothing_window: int = 25,
        fit_start_fraction: float = 0.3,
        threshold_scales: Sequence[float] = DEFAULT_THRESHOLD_SCALES,
    ):
        if warmup_iters < 4:
            raise ScheduleError("adapter needs a warm-up of at least 4 iterations")
        if end_iter <= warmup_iters:
            raise ScheduleError("end_iter must exceed warmup_iters")
        if total_infers <= 0:
            raise ScheduleError("total_infers must be positive")
        self.params = params
        self.warmup_iters = warmup_iters
        self.end_iter = end_iter
        self.total_infers = total_infers
        self.refit_every = (
            refit_every if refit_every is not None else max(warmup_iters // 2, 16)
        )
        self.smoothing_window = smoothing_window
        self.fit_start_fraction = fit_start_fraction
        self.threshold_scales = tuple(threshold_scales)

        self._losses: List[float] = []
        self._window: Deque[float] = deque(maxlen=max(smoothing_window, 1))
        self.threshold: float = float("inf")   # no checkpoints before warm-up
        self.noise_floor: float = 0.0
        # Never checkpoint faster than the stall can amortize over
        # training progress: at least a few iterations apart.
        self.min_spacing = max(2, int(params.t_p / params.t_train) + 1)
        self._last_ckpt_loss: Optional[float] = None
        self._last_ckpt_iter = 0
        self._last_refit = 0
        self.checkpoints: List[int] = []
        self.refits = 0

    # ------------------------------------------------------------------
    @property
    def smoothed_loss(self) -> float:
        if not self._window:
            raise ScheduleError("no losses observed yet")
        return float(np.mean(self._window))

    def observe(self, iteration: int, loss: float) -> bool:
        """Record one iteration's loss; True means "checkpoint now".

        ``iteration`` is the global 1-based training iteration; calls must
        be in order.  The caller performs the checkpoint when True is
        returned (the adapter records it for interval bookkeeping).
        """
        if iteration != len(self._losses) + 1:
            raise ScheduleError(
                f"out-of-order observation: iteration {iteration}, "
                f"expected {len(self._losses) + 1}"
            )
        self._losses.append(float(loss))
        self._window.append(float(loss))

        if iteration < self.warmup_iters:
            return False
        if iteration == self.warmup_iters:
            self._refit(iteration)
            # The warm-up checkpoint itself is the caller's save_initial.
            self._last_ckpt_loss = self.smoothed_loss
            self._last_ckpt_iter = iteration
            return False
        if iteration - self._last_refit >= self.refit_every:
            self._refit(iteration)

        if iteration - self._last_ckpt_iter < self.min_spacing:
            return False
        current = self.smoothed_loss
        effective = max(self.threshold, self.noise_floor)
        if (
            self._last_ckpt_loss is not None
            and current < self._last_ckpt_loss
            and (self._last_ckpt_loss - current) > effective
        ):
            self.checkpoints.append(iteration)
            self._last_ckpt_loss = current
            self._last_ckpt_iter = iteration
            return True
        return False

    # ------------------------------------------------------------------
    def _refit(self, iteration: int) -> None:
        """Refit the TLP on all observations; re-tune the threshold."""
        self._last_refit = iteration
        if iteration >= self.end_iter:
            return  # nothing left to schedule
        losses = self._losses
        skip = int(len(losses) * self.fit_start_fraction)
        if len(losses) - skip < 8:
            skip = max(0, len(losses) - 8)
        iters = np.arange(skip + 1, len(losses) + 1, dtype=np.float64)
        try:
            tlp = TrainingLossPredictor(self.smoothing_window).fit(
                losses[skip:], iters, horizon=self.end_iter
            )
        except FitError:
            return  # keep the previous threshold
        # Noise floor: the trailing-mean estimator wobbles by roughly the
        # residual std of observed (smoothed) losses around the fitted
        # curve, scaled down by the window averaging.  Improvements below
        # ~2 wobbles are indistinguishable from noise — never checkpoint
        # on them.
        recent_lo = max(skip, len(losses) - 4 * self.refit_every)
        obs = np.asarray(losses[recent_lo:], dtype=np.float64)
        fit_vals = tlp.predict(
            np.arange(recent_lo + 1, len(losses) + 1, dtype=np.float64)
        )
        resid_std = float(np.std(obs - fit_vals))
        self.noise_floor = 2.0 * resid_std / np.sqrt(max(len(self._window), 1))
        # Base threshold: the warm-up mean+std rule over the fitted curve's
        # most recent stretch (comparable smooth scale).
        recent = max(iteration - self.refit_every, skip + 1)
        fitted = tlp.predict(np.arange(recent, iteration + 1, dtype=np.float64))
        try:
            base = warmup_threshold(fitted)
        except ScheduleError:
            return
        if base <= 0:
            base = 1e-12
        # Remaining serving demand: approximate elapsed serving time by the
        # training wall time so far (training and serving run in parallel).
        elapsed = iteration * self.params.t_train + len(self.checkpoints) * self.params.t_p
        served = int(elapsed / self.params.t_infer)
        remaining = max(self.total_infers - served, 1)
        schedule = best_greedy_schedule(
            iteration,
            self.end_iter,
            remaining,
            base,
            lambda i: max(0.0, float(tlp.predict_scalar(i))),
            self.params,
            scales=self.threshold_scales,
        )
        if schedule.threshold is not None and schedule.num_checkpoints:
            self.threshold = float(schedule.threshold)
            self.refits += 1
