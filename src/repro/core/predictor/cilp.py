"""Cumulative Inference Loss Predictor (CILP) — paper Eq. 1, Eq. 2, Alg. 1.

The CILP estimates, before training finishes, the total inference loss a
consumer will accumulate over a window, given:

- ``t_train``: seconds per training iteration (constant — Fig. 6);
- ``t_p``: producer stall per checkpoint, ``s_model / bw_write``;
- ``t_c``: consumer model-load time, ``s_model / bw_read``;
- ``t_infer``: seconds per inference request (constant — Fig. 6);
- a training-loss predictor mapping iteration -> loss (the TLP), with the
  paper's assumption 2 treating a checkpoint's training loss as its
  inference loss.

Key accounting detail from Algorithm 1: only the *first* model update's
window includes ``t_c`` on the critical path; afterwards the consumer
loads the next model concurrently with serving, so subsequent windows are
``inter * t_train + t_p`` long.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

from repro.errors import ConfigurationError, ScheduleError

__all__ = ["CILParams", "cil_window", "CILPredictor"]


@dataclass(frozen=True)
class CILParams:
    """The constant timing parameters feeding Eq. 1/2 and Algorithms 1-3."""

    t_train: float   # seconds per training iteration
    t_p: float       # producer checkpoint stall (s_model / bw_write)
    t_c: float       # consumer load time (s_model / bw_read)
    t_infer: float   # seconds per inference request

    def __post_init__(self):
        if self.t_train <= 0 or self.t_infer <= 0:
            raise ConfigurationError("t_train and t_infer must be positive")
        if self.t_p < 0 or self.t_c < 0:
            raise ConfigurationError("t_p and t_c must be non-negative")

    def window_seconds(self, ckpt_interval: int) -> float:
        """t'_train in the paper: one checkpoint window's wall time."""
        return ckpt_interval * self.t_train + self.t_p


def cil_window(
    inter: int,
    loss: float,
    ckpt_ver: int,
    rem_infers: int,
    params: CILParams,
) -> Tuple[float, int]:
    """Algorithm 1: total inference loss within one checkpoint window.

    ``inter`` training iterations pass before the next model update; the
    consumer serves every request in that window with the model whose
    (predicted) loss is ``loss``.  The first update (``ckpt_ver == 1``)
    additionally pays the model-load time ``t_c`` on the serving path.
    Returns ``(accumulated_inference_loss, inferences_served)``.
    """
    if inter <= 0:
        raise ScheduleError(f"checkpoint interval must be positive, got {inter}")
    if ckpt_ver < 1:
        raise ScheduleError(f"checkpoint version must be >= 1, got {ckpt_ver}")
    if rem_infers < 0:
        raise ScheduleError(f"negative remaining inferences {rem_infers}")
    window = inter * params.t_train + params.t_p
    if ckpt_ver == 1:
        window += params.t_c
    infers = int(window / params.t_infer)
    infers = min(infers, rem_infers)
    return loss * infers, infers


class CILPredictor:
    """Closed-form Eq. 2 accounting over a fixed duration ``t_max``."""

    def __init__(self, loss_pred: Callable[[float], float], params: CILParams):
        self.loss_pred = loss_pred
        self.params = params

    # ------------------------------------------------------------------
    # Eq. 1: map a wall-clock time to the training iteration reached.
    # ------------------------------------------------------------------
    def iters_at_time(self, t_k: float, ckpt_interval: int) -> int:
        """``get_iters(t_k, ckpt_i)``: training iteration reached by t_k.

        Training alternates ``ckpt_interval`` iterations of ``t_train``
        with a stall ``t_p``; whole windows contribute ``ckpt_interval``
        iterations each, the remainder contributes ``t_rem / t_train``.
        """
        if t_k < 0:
            raise ScheduleError(f"negative time {t_k}")
        if ckpt_interval <= 0:
            raise ScheduleError(f"interval must be positive, got {ckpt_interval}")
        p = self.params
        window = p.window_seconds(ckpt_interval)
        full = int(t_k / window)
        rem_time = min(t_k - full * window, window)
        return ckpt_interval * full + min(int(rem_time / p.t_train), ckpt_interval)

    def loss_at_time(self, t_k: float, ckpt_interval: int) -> float:
        """Predicted training loss at wall-clock time ``t_k`` (Eq. 1 + TLP)."""
        return self.loss_pred(self.iters_at_time(t_k, ckpt_interval))

    # ------------------------------------------------------------------
    # Eq. 2: cumulative inference loss over [0, t_max].
    # ------------------------------------------------------------------
    def acc_loss(self, ckpt_interval: int, t_max: float) -> float:
        """``accLoss(ckpt_i, t_max)``: predicted CIL over a duration.

        Checkpoint ``k`` (k = 0 is the warm-up model) serves the window
        until checkpoint ``k+1`` is live.  ``cnm`` counts completed model
        updates within ``t_max``.
        """
        if t_max <= 0:
            raise ScheduleError(f"t_max must be positive, got {t_max}")
        if ckpt_interval <= 0:
            raise ScheduleError(f"interval must be positive, got {ckpt_interval}")
        p = self.params
        window = p.window_seconds(ckpt_interval)
        cnm = int((t_max - p.t_c) / window)
        if cnm <= 0:
            return self.loss_pred(0) * (t_max / p.t_infer)
        total = 0.0
        for cid in range(cnm + 1):
            if cid == 0:
                span = (window + p.t_c) / p.t_infer
            elif cid < cnm:
                span = window / p.t_infer
            else:
                span = (t_max - (cid * window + p.t_c)) / p.t_infer
            span = max(span, 0.0)
            total += self.loss_pred(cid * ckpt_interval) * span
        return total

    def best_fixed_interval(self, t_max: float, max_interval: int) -> Tuple[int, float]:
        """Eq. 3: argmin over intervals of ``acc_loss`` (the closed form).

        The iterative Algorithm 2 in :mod:`schedules` is the inference-count
        -bounded version used in practice; this closed form exists for
        validation and for quick what-if analysis.
        """
        if max_interval < 1:
            raise ScheduleError("max_interval must be >= 1")
        best_i, best_v = 1, float("inf")
        for i in range(1, max_interval + 1):
            v = self.acc_loss(i, t_max)
            if v < best_v:
                best_i, best_v = i, v
        return best_i, best_v
