"""Training Loss Predictor (TLP).

Fits all candidate learning-curve families on the warm-up losses and keeps
the one with minimal in-sample MSE (paper §4.3: "Viper utilizes the warm-up
stage training loss to fit those learning curve functions and selects the
most suitable one").  Raw per-iteration losses are noisy mini-batch
estimates, so the predictor optionally smooths with a running mean before
fitting — the fitted curve then tracks the underlying convergence trend the
way the paper's Figure 5 shows.

Users can substitute any object with a ``predict_scalar(iteration)``
method: the predictor slot is pluggable (paper design objective 1).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import FitError
from repro.core.predictor.curves import CurveModel, fit_all_curves

__all__ = ["TrainingLossPredictor", "smooth_losses"]


def smooth_losses(losses: Sequence[float], window: int = 0) -> np.ndarray:
    """Centered running mean with edge shrinkage; window=0 disables."""
    y = np.asarray(losses, dtype=np.float64)
    if window <= 1 or y.size == 0:
        return y
    half = window // 2
    out = np.empty_like(y)
    for i in range(y.size):
        lo = max(0, i - half)
        hi = min(y.size, i + half + 1)
        out[i] = y[lo:hi].mean()
    return out


class TrainingLossPredictor:
    """Predict training loss as a function of the training iteration.

    ``selection`` controls how the winning family is picked:

    - ``"insample"`` — minimal MSE on the whole fit window (the paper's
      stated criterion, Fig. 5);
    - ``"holdout"`` (default) — fit on the first ``1 - holdout_fraction``
      of the window, rank by MSE on the held-out tail, then refit the
      winner on the full window.  This is the extrapolation-oriented
      selection of Domhan et al. [7], which the paper builds on; it
      matters because the predictor's entire job is predicting *beyond*
      the warm-up.
    """

    def __init__(
        self,
        smoothing_window: int = 0,
        selection: str = "holdout",
        holdout_fraction: float = 0.3,
        families: Optional[Sequence[type]] = None,
    ):
        if smoothing_window < 0:
            raise FitError("smoothing window must be non-negative")
        if selection not in ("insample", "holdout"):
            raise FitError(f"unknown selection mode {selection!r}")
        if not 0.0 < holdout_fraction < 1.0:
            raise FitError("holdout_fraction must be in (0, 1)")
        self.smoothing_window = smoothing_window
        self.selection = selection
        self.holdout_fraction = holdout_fraction
        self.families = families
        self.candidates: Dict[str, CurveModel] = {}
        self.holdout_mse: Dict[str, float] = {}
        self.best: Optional[CurveModel] = None

    # ------------------------------------------------------------------
    def fit(
        self,
        warmup_losses: Sequence[float],
        iterations: Optional[Sequence[float]] = None,
        horizon: Optional[float] = None,
    ) -> "TrainingLossPredictor":
        """Fit all families on (iteration, loss) pairs from the warm-up.

        ``iterations`` defaults to ``1..len(losses)`` — the global
        iteration indexing used throughout the paper's algorithms.

        ``horizon`` is the iteration up to which the predictor will be
        asked to extrapolate (the end of training).  When given, families
        whose horizon prediction is *implausible* — collapsing below 5%
        of the last observed loss, or increasing — are excluded from
        selection unless every family is implausible.  This is the
        plausibility filtering of Domhan et al. [7].
        """
        losses = np.asarray(warmup_losses, dtype=np.float64)
        if losses.size < 4:
            raise FitError(f"need >= 4 warm-up losses to fit, got {losses.size}")
        if not np.all(np.isfinite(losses)):
            raise FitError("warm-up losses contain non-finite values")
        x = (
            np.arange(1, losses.size + 1, dtype=np.float64)
            if iterations is None
            else np.asarray(iterations, dtype=np.float64)
        )
        if x.shape != losses.shape:
            raise FitError("iterations and losses must be equal length")
        y = smooth_losses(losses, self.smoothing_window)

        if self.selection == "insample" or losses.size < 12:
            self.candidates = fit_all_curves(x, y, self.families)
            pool = self._plausible(self.candidates, x, y, horizon)
            self.best = min(pool.values(), key=lambda m: m.mse)
            return self

        split = int(round(losses.size * (1.0 - self.holdout_fraction)))
        split = min(max(split, 8), losses.size - 2)
        head = fit_all_curves(x[:split], y[:split], self.families)
        self.holdout_mse = {
            name: model.mse_on(x[split:], y[split:]) for name, model in head.items()
        }
        head_pool = self._plausible(head, x, y, horizon)
        # Refit every candidate on the full window so mse_table() reflects
        # the full warm-up; the winner must stay plausible after refit.
        self.candidates = fit_all_curves(x, y, self.families)
        full_pool = self._plausible(self.candidates, x, y, horizon)
        ranked = sorted(head_pool, key=lambda n: self.holdout_mse[n])
        self.best = None
        for name in ranked:
            if name in full_pool:
                self.best = full_pool[name]
                break
        if self.best is None:  # nothing survived both filters
            self.best = min(full_pool.values(), key=lambda m: m.mse)
        return self

    def _plausible(
        self,
        candidates: Dict[str, CurveModel],
        x: np.ndarray,
        y: np.ndarray,
        horizon: Optional[float],
    ) -> Dict[str, CurveModel]:
        """Drop families with implausible horizon extrapolations.

        A training-loss prediction should neither collapse to ~zero (the
        loss has an irreducible floor) nor rise above the current level.
        Falls back to the full candidate set if the filter empties it.
        """
        if horizon is None or horizon <= x[-1]:
            return candidates
        floor = 0.05 * max(float(y[-1]), 1e-12)
        current = float(y[-1])
        plausible = {}
        for name, model in candidates.items():
            at_horizon = model.predict_scalar(float(horizon))
            if floor <= at_horizon <= current * 1.05:
                plausible[name] = model
        return plausible if plausible else candidates

    # ------------------------------------------------------------------
    @property
    def best_name(self) -> str:
        if self.best is None:
            raise FitError("TLP not fitted")
        return self.best.name

    def mse_table(self) -> Dict[str, float]:
        """Per-family MSE on the warm-up window (Fig. 5's comparison)."""
        return {name: m.mse for name, m in sorted(self.candidates.items())}

    def predict_scalar(self, iteration: float) -> float:
        """Predicted training loss at one iteration (clamped at >= 0)."""
        if self.best is None:
            raise FitError("TLP not fitted")
        return max(0.0, self.best.predict_scalar(float(iteration)))

    def predict(self, iterations) -> np.ndarray:
        if self.best is None:
            raise FitError("TLP not fitted")
        return np.maximum(0.0, self.best.predict(iterations))
