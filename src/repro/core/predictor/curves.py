"""Parametric learning-curve families (paper §4.3, Fig. 5).

Viper models the training-loss curve with four functions from the
learning-curve literature [Viering & Loog 2022], all monotonically
decreasing in their fitted regime:

- ``Exp2``:  a * exp(-b x)
- ``Exp3``:  a * exp(-b x) + c
- ``Lin2``:  a x + b                  (a <= 0 after fitting a decay)
- ``Expd3``: c - (c - a) * exp(-b x)  (from a at x=0 toward c)

plus ``Pow3`` (a * x^-b + c), another decreasing family from the same
survey: SGD loss curves are frequently power-law rather than exponential,
and the TLP's pluggable candidate set (paper design objective 1) lets a
deployment include it when exponential families extrapolate poorly.

Fitting is nonlinear least squares (scipy ``curve_fit``) with a small
multi-start grid over the rate parameter — single-start fits of
exponential families are notorious for local minima on two-phase loss
curves.  Model selection (in :mod:`repro.core.predictor.tlp`) is by MSE,
exactly as the paper selects Exp3 for CANDLE-TC1.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import curve_fit

from repro.errors import FitError

__all__ = [
    "CurveModel",
    "Exp2",
    "Exp3",
    "Lin2",
    "Expd3",
    "Pow3",
    "fit_all_curves",
    "CURVE_FAMILIES",
    "PAPER_FAMILIES",
]


class CurveModel:
    """Base class: fit on (x, y), then predict loss at any iteration."""

    name = "curve"
    n_params = 0

    def __init__(self):
        self.params: Optional[np.ndarray] = None
        self.mse: float = float("inf")

    # -- subclass contract ---------------------------------------------
    @staticmethod
    def func(x: np.ndarray, *params) -> np.ndarray:
        raise NotImplementedError

    def initial_guess(self, x: np.ndarray, y: np.ndarray) -> Sequence[float]:
        raise NotImplementedError

    def extra_guesses(self, x: np.ndarray, y: np.ndarray) -> Sequence[Sequence[float]]:
        """Additional multi-start points (rate-parameter grid)."""
        return ()

    def bounds(self) -> Tuple[Sequence[float], Sequence[float]]:
        return (-np.inf, np.inf)

    # -- shared machinery -----------------------------------------------
    def fit(self, x: Sequence[float], y: Sequence[float]) -> "CurveModel":
        """Multi-start least-squares fit; records in-sample MSE.  Raises
        FitError if no start converges."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape != y.shape or x.ndim != 1:
            raise FitError(f"{self.name}: x and y must be equal-length 1-D arrays")
        if x.size < self.n_params:
            raise FitError(
                f"{self.name}: need at least {self.n_params} points, got {x.size}"
            )
        starts = [self.initial_guess(x, y), *self.extra_guesses(x, y)]
        best_params = None
        best_mse = float("inf")
        errors = []
        for p0 in starts:
            try:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore")
                    params, _cov = curve_fit(
                        self.func,
                        x,
                        y,
                        p0=p0,
                        bounds=self.bounds(),
                        maxfev=20_000,
                    )
            except (RuntimeError, ValueError) as exc:
                errors.append(str(exc))
                continue
            residual = self.func(x, *params) - y
            mse = float(np.mean(residual * residual))
            if mse < best_mse:
                best_mse = mse
                best_params = params
        if best_params is None:
            raise FitError(f"{self.name}: all starts failed: {errors[:2]}")
        self.params = np.asarray(best_params, dtype=np.float64)
        self.mse = best_mse
        return self

    def mse_on(self, x, y) -> float:
        """Out-of-sample MSE on a holdout window."""
        residual = self.predict(np.asarray(x, dtype=np.float64)) - np.asarray(
            y, dtype=np.float64
        )
        return float(np.mean(residual * residual))

    def predict(self, x) -> np.ndarray:
        if self.params is None:
            raise FitError(f"{self.name}: predict() before fit()")
        return self.func(np.asarray(x, dtype=np.float64), *self.params)

    def predict_scalar(self, x: float) -> float:
        return float(self.predict(np.asarray([x]))[0])

    def __repr__(self) -> str:
        if self.params is None:
            return f"{type(self).__name__}(unfitted)"
        p = ", ".join(f"{v:.4g}" for v in self.params)
        return f"{type(self).__name__}([{p}], mse={self.mse:.3e})"


class Exp2(CurveModel):
    """``a * exp(-b x)`` — pure exponential decay to zero."""

    name = "exp2"
    n_params = 2

    @staticmethod
    def func(x, a, b):
        return a * np.exp(-b * x)

    def initial_guess(self, x, y):
        return [max(float(y[0]), 1e-6), 1.0 / max(float(x[-1]), 1.0)]

    def extra_guesses(self, x, y):
        a0 = max(float(y[0]), 1e-6)
        span = max(float(x[-1]), 1.0)
        return [[a0, r / span] for r in (0.3, 3.0, 10.0)]

    def bounds(self):
        return ([0.0, 0.0], [np.inf, np.inf])


class Exp3(CurveModel):
    """``a * exp(-b x) + c`` — decay to an asymptote (TC1's best fit)."""

    name = "exp3"
    n_params = 3

    @staticmethod
    def func(x, a, b, c):
        return a * np.exp(-b * x) + c

    def initial_guess(self, x, y):
        c0 = float(y[-1])
        a0 = max(float(y[0]) - c0, 1e-6)
        return [a0, 1.0 / max(float(x[-1]), 1.0), c0]

    def extra_guesses(self, x, y):
        c0 = float(y[-1])
        a0 = max(float(y[0]) - c0, 1e-6)
        span = max(float(x[-1]), 1.0)
        return [[a0, r / span, c0] for r in (0.3, 3.0, 10.0)]

    def bounds(self):
        return ([0.0, 0.0, -np.inf], [np.inf, np.inf, np.inf])


class Lin2(CurveModel):
    """``a x + b`` — a straight line (competitive only early in training)."""

    name = "lin2"
    n_params = 2

    @staticmethod
    def func(x, a, b):
        return a * x + b

    def initial_guess(self, x, y):
        span = float(x[-1] - x[0]) or 1.0
        return [(float(y[-1]) - float(y[0])) / span, float(y[0])]


class Expd3(CurveModel):
    """``c - (c - a) * exp(-b x)`` — from ``a`` at x=0 toward ``c``."""

    name = "expd3"
    n_params = 3

    @staticmethod
    def func(x, a, b, c):
        return c - (c - a) * np.exp(-b * x)

    def initial_guess(self, x, y):
        return [float(y[0]), 1.0 / max(float(x[-1]), 1.0), float(y[-1])]

    def extra_guesses(self, x, y):
        span = max(float(x[-1]), 1.0)
        return [[float(y[0]), r / span, float(y[-1])] for r in (0.3, 3.0, 10.0)]

    def bounds(self):
        return ([-np.inf, 0.0, -np.inf], [np.inf, np.inf, np.inf])


class Pow3(CurveModel):
    """``a * x^-b + c`` — power-law decay to an asymptote.

    From the same learning-curve survey the paper draws its families
    from; SGD training loss is frequently power-law, and this family
    extrapolates the slow tail far better than the exponentials.
    """

    name = "pow3"
    n_params = 3

    @staticmethod
    def func(x, a, b, c):
        return a * np.power(np.maximum(x, 1e-9), -b) + c

    def initial_guess(self, x, y):
        return [max(float(y[0]) - float(y[-1]), 1e-6), 0.5, float(y[-1])]

    def extra_guesses(self, x, y):
        a0 = max(float(y[0]) - float(y[-1]), 1e-6)
        return [[a0 * s, b0, float(y[-1])] for s in (1.0, 10.0) for b0 in (0.1, 1.0)]

    def bounds(self):
        return ([0.0, 0.01, -np.inf], [np.inf, 5.0, np.inf])


#: The four families the paper lists (§4.3).
PAPER_FAMILIES = (Exp2, Exp3, Lin2, Expd3)

#: The default candidate set the TLP searches over: the paper's four
#: plus Pow3 via the pluggable-predictor design.
CURVE_FAMILIES = (Exp2, Exp3, Lin2, Expd3, Pow3)


def fit_all_curves(
    x: Sequence[float],
    y: Sequence[float],
    families: Optional[Sequence[type]] = None,
) -> Dict[str, CurveModel]:
    """Fit every family; families whose optimizer diverges are skipped.

    Returns ``{name: fitted model}``; raises FitError only when *no*
    family could be fitted.  ``families`` defaults to
    :data:`CURVE_FAMILIES`; pass :data:`PAPER_FAMILIES` to restrict to
    the paper's exact four.
    """
    fitted: Dict[str, CurveModel] = {}
    errors: List[str] = []
    for family in families if families is not None else CURVE_FAMILIES:
        model = family()
        try:
            model.fit(x, y)
        except FitError as exc:
            errors.append(str(exc))
            continue
        fitted[model.name] = model
    if not fitted:
        raise FitError(f"no learning-curve family could be fitted: {errors}")
    return fitted
