"""Checkpoint-schedule search algorithms (paper Algorithms 2 and 3).

All algorithms share the accounting in :func:`repro.core.predictor.cilp.
cil_window` (Algorithm 1) and produce a :class:`Schedule`: the list of
training iterations at which to take a checkpoint, plus the predicted CIL.

- :func:`fixed_interval_schedule` (Algorithm 2) — sweep every candidate
  interval, simulate the window walk, keep the interval with minimal
  predicted CIL.
- :func:`greedy_schedule` (Algorithm 3) — checkpoint only when the
  predicted loss improvement since the previous checkpoint exceeds a
  threshold; the threshold comes from the warm-up loss deltas
  (:func:`warmup_threshold`).  Note: the paper's listing only advances
  the iteration counter inside the if-branch, which would never
  terminate when the condition is false; the intended behaviour —
  advance every iteration, checkpoint conditionally — is implemented
  here.
- :func:`epoch_schedule` — the epoch-boundary baseline every result
  section compares against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ScheduleError
from repro.core.predictor.cilp import CILParams, cil_window

__all__ = [
    "Schedule",
    "epoch_schedule",
    "fixed_interval_schedule",
    "walk_fixed_interval",
    "greedy_schedule",
    "best_greedy_schedule",
    "warmup_threshold",
]

LossFn = Callable[[float], float]


@dataclass(frozen=True)
class Schedule:
    """A checkpoint schedule: when to checkpoint, and what the IPP expects."""

    kind: str                      # "epoch" | "fixed" | "greedy"
    iterations: Tuple[int, ...]    # absolute training iterations (ascending)
    predicted_cil: float = float("nan")
    interval: Optional[int] = None # set for fixed-interval schedules
    threshold: Optional[float] = None  # set for greedy schedules
    start_iter: int = 0
    end_iter: int = 0

    def __post_init__(self):
        its = self.iterations
        if any(b <= a for a, b in zip(its, its[1:])):
            raise ScheduleError(f"schedule iterations must be increasing: {its}")
        if its and (its[0] <= self.start_iter or its[-1] > self.end_iter):
            raise ScheduleError(
                f"schedule iterations must lie in ({self.start_iter}, "
                f"{self.end_iter}]: {its[:3]}...{its[-3:]}"
            )

    @property
    def num_checkpoints(self) -> int:
        return len(self.iterations)

    def __contains__(self, iteration: int) -> bool:
        return iteration in set(self.iterations)


def epoch_schedule(start_iter: int, end_iter: int, iters_per_epoch: int) -> Schedule:
    """Checkpoint at every epoch boundary after the warm-up (the baseline)."""
    if iters_per_epoch <= 0:
        raise ScheduleError("iters_per_epoch must be positive")
    if end_iter <= start_iter:
        raise ScheduleError(f"empty range [{start_iter}, {end_iter}]")
    first = (start_iter // iters_per_epoch + 1) * iters_per_epoch
    its = tuple(range(first, end_iter + 1, iters_per_epoch))
    return Schedule(
        kind="epoch",
        iterations=its,
        interval=iters_per_epoch,
        start_iter=start_iter,
        end_iter=end_iter,
    )


def walk_fixed_interval(
    interval: int,
    start_iter: int,
    end_iter: int,
    total_infers: int,
    loss_pred: LossFn,
    params: CILParams,
) -> Tuple[float, List[int]]:
    """Algorithm 2's inner loop for one candidate interval.

    Returns ``(predicted CIL, checkpoint iterations)``.  Public because
    it doubles as the analytic cross-check for the discrete-event
    simulation (they must agree exactly on sync-mode runs).
    """
    total_loss = 0.0
    rem = total_infers
    prev_loss = loss_pred(start_iter)   # warm-up model's quality
    current = start_iter + interval
    ckpt_ver = 1
    iterations: List[int] = []
    while current <= end_iter and rem > 0:
        window_loss, infers = cil_window(interval, prev_loss, ckpt_ver, rem, params)
        total_loss += window_loss
        rem -= infers
        iterations.append(current)
        prev_loss = loss_pred(current)
        current += interval
        ckpt_ver += 1
    # Inferences beyond the last checkpoint run on the final model.
    total_loss += prev_loss * rem
    return total_loss, iterations


def fixed_interval_schedule(
    start_iter: int,
    end_iter: int,
    total_infers: int,
    loss_pred: LossFn,
    params: CILParams,
    max_interval: Optional[int] = None,
) -> Schedule:
    """Algorithm 2: best regular checkpoint interval by predicted CIL."""
    if end_iter <= start_iter:
        raise ScheduleError(f"empty range [{start_iter}, {end_iter}]")
    if total_infers <= 0:
        raise ScheduleError("total_infers must be positive")
    span = end_iter - start_iter
    limit = span if max_interval is None else min(max_interval, span)
    best_loss = float("inf")
    best_interval = None
    best_iters: List[int] = []
    for interval in range(1, limit + 1):
        total_loss, iterations = walk_fixed_interval(
            interval, start_iter, end_iter, total_infers, loss_pred, params
        )
        if total_loss < best_loss:
            best_loss = total_loss
            best_interval = interval
            best_iters = iterations
    if best_interval is None:  # pragma: no cover - limit >= 1 always
        raise ScheduleError("no feasible interval found")
    return Schedule(
        kind="fixed",
        iterations=tuple(best_iters),
        predicted_cil=best_loss,
        interval=best_interval,
        start_iter=start_iter,
        end_iter=end_iter,
    )


def warmup_threshold(warmup_losses: Sequence[float], scale: float = 1.0) -> float:
    """The greedy threshold: mean + std of consecutive warm-up loss deltas.

    ``scale`` multiplies the (mean + std) rule for sensitivity studies;
    the paper's rule is ``scale == 1``.
    """
    y = np.asarray(warmup_losses, dtype=np.float64)
    if y.size < 2:
        raise ScheduleError("need >= 2 warm-up losses for a threshold")
    if scale <= 0:
        raise ScheduleError("threshold scale must be positive")
    deltas = np.abs(np.diff(y))
    return float(scale * (deltas.mean() + deltas.std()))


def greedy_schedule(
    start_iter: int,
    end_iter: int,
    total_infers: int,
    thresh: float,
    loss_pred: LossFn,
    params: CILParams,
) -> Schedule:
    """Algorithm 3: irregular intervals driven by predicted improvement.

    Walk the predicted loss curve one iteration at a time; checkpoint when
    the loss has improved by more than ``thresh`` since the previous
    checkpoint.  The early steep part of the curve yields dense updates,
    the plateau yields sparse ones — the adaptive behaviour §5.4 credits.
    """
    if end_iter <= start_iter:
        raise ScheduleError(f"empty range [{start_iter}, {end_iter}]")
    if total_infers <= 0:
        raise ScheduleError("total_infers must be positive")
    if thresh < 0:
        raise ScheduleError(f"threshold must be non-negative, got {thresh}")
    schedule: List[int] = []
    prev_iter = start_iter
    prev_loss = loss_pred(start_iter)
    total_loss = 0.0
    rem = total_infers
    ckpt_ver = 1
    for i in range(start_iter + 1, end_iter + 1):
        current_loss = loss_pred(i)
        if current_loss < prev_loss and abs(current_loss - prev_loss) > thresh:
            if rem > 0:
                window_loss, infers = cil_window(
                    i - prev_iter, prev_loss, ckpt_ver, rem, params
                )
                total_loss += window_loss
                rem -= infers
            schedule.append(i)
            prev_loss = current_loss
            prev_iter = i
            ckpt_ver += 1
    total_loss += prev_loss * rem
    return Schedule(
        kind="greedy",
        iterations=tuple(schedule),
        predicted_cil=total_loss,
        threshold=thresh,
        start_iter=start_iter,
        end_iter=end_iter,
    )


#: Threshold multipliers swept by :func:`best_greedy_schedule`.
DEFAULT_THRESHOLD_SCALES = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def best_greedy_schedule(
    start_iter: int,
    end_iter: int,
    total_infers: int,
    base_thresh: float,
    loss_pred: LossFn,
    params: CILParams,
    scales: Sequence[float] = DEFAULT_THRESHOLD_SCALES,
) -> Schedule:
    """Algorithm 3 with the threshold chosen by predicted CIL.

    The warm-up mean+std rule gives the threshold's *scale*; its best
    multiplier depends on the checkpoint stall cost and the inference
    horizon, which Algorithm 1's accounting already captures.  So, in
    the same spirit as Algorithm 2's argmin over intervals (Eq. 3), we
    sweep threshold multipliers and keep the greedy schedule with the
    minimal predicted CIL.  A paper-exact single-threshold run is
    available via :func:`greedy_schedule`.
    """
    if base_thresh < 0:
        raise ScheduleError(f"base threshold must be non-negative, got {base_thresh}")
    if not scales:
        raise ScheduleError("empty threshold scale sweep")
    best: Optional[Schedule] = None
    for scale in scales:
        candidate = greedy_schedule(
            start_iter,
            end_iter,
            total_infers,
            base_thresh * scale,
            loss_pred,
            params,
        )
        if candidate.num_checkpoints == 0:
            continue
        if best is None or candidate.predicted_cil < best.predicted_cil:
            best = candidate
    if best is None:
        # Even the smallest threshold yields no checkpoints: the curve is
        # predicted flat.  Fall back to a single mid-range checkpoint so
        # the consumer at least gets the final refinement.
        mid = (start_iter + end_iter + 1) // 2
        best = Schedule(
            kind="greedy",
            iterations=(mid,),
            predicted_cil=float("nan"),
            start_iter=start_iter,
            end_iter=end_iter,
        )
    return best
