"""The IPP facade: warm-up losses in, near-optimal schedule out.

Combines the pieces of §4.3 end-to-end:

1. fit the TLP on the warm-up losses (curve-family selection by MSE);
2. derive the timing parameters ``t_p`` / ``t_c`` from the checkpoint
   size and the chosen transfer strategy's bandwidths;
3. run the requested algorithm (fixed-interval or greedy) to produce a
   :class:`~repro.core.predictor.schedules.Schedule`.

The predictor slot is pluggable: pass ``loss_pred`` to bypass the TLP
with a custom model of training quality (paper design objective 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.errors import ScheduleError
from repro.core.predictor.cilp import CILParams, CILPredictor
from repro.core.predictor.schedules import (
    Schedule,
    best_greedy_schedule,
    epoch_schedule,
    fixed_interval_schedule,
    greedy_schedule,
    warmup_threshold,
)
from repro.core.predictor.tlp import TrainingLossPredictor

__all__ = ["InferencePerformancePredictor"]


class InferencePerformancePredictor:
    """Find a near-optimal checkpoint schedule before training finishes."""

    def __init__(
        self,
        params: CILParams,
        *,
        smoothing_window: int = 25,
        fit_start_fraction: float = 0.3,
        loss_pred: Optional[Callable[[float], float]] = None,
    ):
        if not 0.0 <= fit_start_fraction < 1.0:
            raise ScheduleError("fit_start_fraction must be in [0, 1)")
        self.params = params
        self.smoothing_window = smoothing_window
        self.fit_start_fraction = fit_start_fraction
        self._external_pred = loss_pred
        self.horizon: Optional[float] = None
        self.tlp: Optional[TrainingLossPredictor] = None
        self._warmup_losses: Optional[Sequence[float]] = None
        self._warmup_end = 0

    # ------------------------------------------------------------------
    def observe_warmup(
        self,
        warmup_losses: Sequence[float],
        start_iteration: int = 1,
        horizon: Optional[float] = None,
    ) -> "InferencePerformancePredictor":
        """Fit the TLP on warm-up losses observed from ``start_iteration``.

        The first ``fit_start_fraction`` of the warm-up window is excluded
        from the fit: the initial optimization transient does not follow
        the asymptotic learning-curve families and would otherwise bias
        the extrapolation (standard practice since Domhan et al. [7],
        which the paper builds on).  ``horizon`` — the end-of-training
        iteration, when known — enables the TLP's plausibility filter.
        """
        losses = list(warmup_losses)
        iters = [start_iteration + i for i in range(len(losses))]
        self._warmup_losses = losses
        self._warmup_end = iters[-1] if iters else 0
        self.horizon = horizon
        if self._external_pred is None:
            skip = int(len(losses) * self.fit_start_fraction)
            if len(losses) - skip < 8:
                skip = max(0, len(losses) - 8)
            self.tlp = TrainingLossPredictor(self.smoothing_window).fit(
                losses[skip:], iters[skip:], horizon=horizon
            )
        return self

    @property
    def loss_pred(self) -> Callable[[float], float]:
        if self._external_pred is not None:
            return self._external_pred
        if self.tlp is None:
            raise ScheduleError("IPP: call observe_warmup() first")
        return self.tlp.predict_scalar

    def cil_predictor(self) -> CILPredictor:
        """Closed-form Eq. 2 predictor sharing this IPP's TLP and params."""
        return CILPredictor(self.loss_pred, self.params)

    # ------------------------------------------------------------------
    def schedule(
        self,
        algorithm: str,
        *,
        end_iter: int,
        total_infers: int,
        start_iter: Optional[int] = None,
        iters_per_epoch: Optional[int] = None,
        max_interval: Optional[int] = None,
        threshold: Optional[float] = None,
        threshold_scale: float = 1.0,
    ) -> Schedule:
        """Compute a checkpoint schedule with the chosen algorithm.

        ``algorithm``: ``"epoch"`` (baseline; needs ``iters_per_epoch``),
        ``"fixed"`` (Algorithm 2), or ``"greedy"`` (Algorithm 3; the
        threshold defaults to the warm-up mean+std rule).
        """
        s_iter = self._warmup_end if start_iter is None else start_iter
        if algorithm == "epoch":
            if iters_per_epoch is None:
                raise ScheduleError("epoch schedule needs iters_per_epoch")
            return epoch_schedule(s_iter, end_iter, iters_per_epoch)
        if algorithm == "fixed":
            return fixed_interval_schedule(
                s_iter,
                end_iter,
                total_infers,
                self.loss_pred,
                self.params,
                max_interval=max_interval,
            )
        if algorithm == "greedy":
            if threshold is not None:
                # Paper-exact Algorithm 3 with an explicit threshold.
                return greedy_schedule(
                    s_iter,
                    end_iter,
                    total_infers,
                    threshold,
                    self.loss_pred,
                    self.params,
                )
            if not self._warmup_losses:
                raise ScheduleError(
                    "greedy schedule needs warm-up losses or an explicit "
                    "threshold"
                )
            # The paper derives the threshold scale from consecutive
            # warm-up loss deltas; we apply the rule to the *fitted*
            # curve's deltas (comparable smooth scale) and let the CILP
            # pick the best multiplier, Eq. 3-style.
            fitted = [
                self.loss_pred(i)
                for i in range(
                    self._warmup_end - len(self._warmup_losses) + 1,
                    self._warmup_end + 1,
                )
            ]
            base = warmup_threshold(fitted, scale=threshold_scale)
            return best_greedy_schedule(
                s_iter, end_iter, total_infers, base, self.loss_pred, self.params
            )
        raise ScheduleError(f"unknown schedule algorithm {algorithm!r}")
