"""Inference Performance Predictor (IPP) — paper §4.3.

Pipeline:

1. :mod:`curves` — the four parametric learning-curve families the paper
   fits (Exp2, Exp3, Lin2, Expd3).
2. :mod:`tlp` — the Training Loss Predictor: fit all candidates on warm-up
   losses, keep the one with minimal MSE.
3. :mod:`cilp` — Eq. 1 (time -> iteration mapping), Eq. 2 and Algorithm 1
   (cumulative inference loss accounting).
4. :mod:`schedules` — Algorithm 2 (fixed interval), Algorithm 3 (greedy
   irregular interval), the epoch-boundary baseline, and the warm-up
   threshold rule (mean + std of consecutive loss deltas).
5. :mod:`ipp` — the facade gluing 1-4 into "give me a near-optimal
   checkpoint schedule before training finishes".
"""

from repro.core.predictor.curves import (
    CurveModel,
    Exp2,
    Exp3,
    Expd3,
    Lin2,
    fit_all_curves,
)
from repro.core.predictor.tlp import TrainingLossPredictor
from repro.core.predictor.cilp import CILParams, CILPredictor, cil_window
from repro.core.predictor.schedules import (
    Schedule,
    epoch_schedule,
    fixed_interval_schedule,
    greedy_schedule,
    warmup_threshold,
)
from repro.core.predictor.ipp import InferencePerformancePredictor

__all__ = [
    "CurveModel",
    "Exp2",
    "Exp3",
    "Lin2",
    "Expd3",
    "fit_all_curves",
    "TrainingLossPredictor",
    "CILParams",
    "CILPredictor",
    "cil_window",
    "Schedule",
    "epoch_schedule",
    "fixed_interval_schedule",
    "greedy_schedule",
    "warmup_threshold",
    "InferencePerformancePredictor",
]
