"""Shared metadata store for model checkpoints.

The paper uses Redis as "a shared in-memory database" holding, per model:
name, version, size, location (memory or storage), and saving path (Fig. 3,
"Metadata Manager").  :class:`MetadataStore` reproduces those semantics as a
thread-safe, versioned key-value store:

- ``publish_version`` registers a new checkpoint's record and bumps the
  model's latest version atomically (monotonic; concurrent writers cannot
  regress the latest pointer).
- ``latest`` / ``record`` are wait-free reads.
- ``compare_and_swap`` supports optimistic concurrency for components that
  update a record in place (e.g. the flusher marking a version durable).
- ``quarantine_version`` condemns a version with a reason code (the
  rollout controller's rollback path).  A quarantined record stays in the
  store as evidence, but the ``latest`` pointer always names the newest
  *non-quarantined* version, so every consumer path that resolves
  "latest" — ``ViperConsumer.refresh``, the staleness watchdog's fallback
  poll, crash recovery — converges on the last-known-good checkpoint
  without special-casing.  Quarantine is sticky: ``compare_and_swap``
  merges the live record's quarantine flags into the caller's copy, so a
  flusher holding a pre-quarantine snapshot cannot resurrect a condemned
  version.

The store charges a small simulated access latency per operation to model
the Redis round trip.

For crash recovery an optional write-ahead journal (duck-typed; see
:class:`repro.resilience.recovery.MetadataJournal`) can be attached via
:meth:`attach_journal`: every mutation is appended to the journal *before*
it is applied, inside the store lock, so the journal order equals the
application order.  :meth:`apply_journal_op` is the idempotent replay-side
counterpart — replaying any prefix of the journal twice yields the same
state, and the latest pointer stays monotonic throughout.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import MetadataError, StaleVersionError
from repro.substrates.cost import Cost

__all__ = ["ModelRecord", "MetadataStore"]

#: Simulated one-way latency of a metadata-DB operation (an in-memory
#: Redis round trip on the same fabric is tens of microseconds).
DB_ACCESS_LATENCY = 50e-6


@dataclass(frozen=True)
class ModelRecord:
    """One checkpoint version's metadata (paper Fig. 3)."""

    model_name: str
    version: int
    nbytes: int              # virtual (paper-scale) checkpoint size
    location: str            # primary tier key: "gpu", "host_dram", "pfs"
    path: str                # object key within the location
    ntensors: int = 1
    durable: bool = False    # flushed to the PFS for fault tolerance
    created_at: float = 0.0  # simulated timestamp
    train_iteration: int = 0 # producer iteration the checkpoint captures
    train_loss: float = float("nan")
    #: compact lineage trace header (see
    #: :meth:`repro.obs.lineage.TraceContext.to_header`); empty when the
    #: producing handler had no lineage ledger armed.
    trace_ctx: str = ""
    #: every location holding a replica of this checkpoint (the Stats
    #: Manager's raw material); always includes ``location``.
    replicas: Tuple[str, ...] = ()
    #: virtual bytes that actually crossed the wire for this version; 0
    #: means the full (monolithic) ``nbytes`` moved, anything smaller is
    #: a delta/compressed frame (see :mod:`repro.core.transfer.delta`).
    wire_bytes: int = 0
    #: condemned by the rollout controller: never resolved as "latest",
    #: never re-served.  The record survives as evidence; ``replicas``
    #: still names where its bytes sit for GC.
    quarantined: bool = False
    #: machine-readable rollback reason (see
    #: :class:`repro.rollout.gate.RollbackReason`); empty unless quarantined.
    quarantine_reason: str = ""

    def __post_init__(self):
        if self.version < 0:
            raise MetadataError(f"negative version {self.version}")
        if self.nbytes < 0:
            raise MetadataError(f"negative size {self.nbytes}")
        if self.location not in self.replicas:
            object.__setattr__(
                self, "replicas", tuple(self.replicas) + (self.location,)
            )

    @property
    def wire_fraction(self) -> float:
        """Wire bytes / full bytes (1.0 when the whole blob moved)."""
        if self.wire_bytes <= 0 or self.nbytes <= 0:
            return 1.0
        return min(1.0, self.wire_bytes / self.nbytes)

    # ------------------------------------------------------------------
    # Journal wire form (plain JSON-able dicts)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "model_name": self.model_name,
            "version": self.version,
            "nbytes": self.nbytes,
            "location": self.location,
            "path": self.path,
            "ntensors": self.ntensors,
            "durable": self.durable,
            "created_at": self.created_at,
            "train_iteration": self.train_iteration,
            # NaN is not valid JSON; null survives every parser.
            "train_loss": None if math.isnan(self.train_loss) else self.train_loss,
            "trace_ctx": self.trace_ctx,
            "replicas": list(self.replicas),
            "wire_bytes": self.wire_bytes,
            "quarantined": self.quarantined,
            "quarantine_reason": self.quarantine_reason,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModelRecord":
        kwargs = dict(data)
        if kwargs.get("train_loss") is None:
            kwargs["train_loss"] = float("nan")
        kwargs["replicas"] = tuple(kwargs.get("replicas", ()))
        return cls(**kwargs)


class MetadataStore:
    """Thread-safe versioned metadata for every model Viper manages."""

    def __init__(self):
        self._lock = threading.RLock()
        self._records: Dict[Tuple[str, int], ModelRecord] = {}
        self._latest: Dict[str, int] = {}
        #: Optional write-ahead journal (duck-typed: has ``append(op, data)``
        #: and ``maybe_compact(state_fn)``); None keeps the store purely
        #: in-memory with zero overhead.
        self.journal = None

    # ------------------------------------------------------------------
    # Write-ahead journal
    # ------------------------------------------------------------------
    def attach_journal(self, journal) -> None:
        """Journal every subsequent mutation (append-before-apply)."""
        with self._lock:
            self.journal = journal

    def _journal_op(self, op: str, data: Dict[str, Any]) -> None:
        """Append one mutation to the journal (lock held by the caller).

        The append happens after validation but before the in-memory
        apply: a crash between the two replays an operation the store had
        already accepted, which the idempotent replay absorbs.
        """
        if self.journal is not None:
            self.journal.append(op, data)

    def _maybe_compact_locked(self) -> None:
        """Offer the journal a compaction point (lock held, op applied).

        Must run *after* the in-memory apply: the snapshot claims to
        cover every appended seq, so the state it captures has to
        include the mutation whose append crossed the compaction
        threshold.
        """
        if self.journal is not None:
            self.journal.maybe_compact(self._state_locked)

    def _state_locked(self) -> Dict[str, Any]:
        """Snapshot-able store state (lock held by the caller).

        Records are emitted in ``(model_name, version)`` order: dict
        insertion order varies with mutation interleaving (a CAS after a
        drop re-inserts at the end), and snapshots must be canonical.
        """
        return {
            "records": [
                rec.to_dict()
                for _, rec in sorted(self._records.items())
            ],
            "latest": dict(self._latest),
        }

    def state_dict(self) -> Dict[str, Any]:
        """A consistent, JSON-able copy of the full store state."""
        with self._lock:
            return self._state_locked()

    def load_state(self, state: Dict[str, Any]) -> None:
        """Replace the store contents with a :meth:`state_dict` snapshot."""
        with self._lock:
            self._records = {}
            for data in state.get("records", []):
                rec = ModelRecord.from_dict(data)
                self._records[(rec.model_name, rec.version)] = rec
            self._latest = {
                name: int(v) for name, v in state.get("latest", {}).items()
            }

    def apply_journal_op(self, op: str, data: Dict[str, Any]) -> bool:
        """Apply one journal entry idempotently (the replay path).

        Returns True when the store state changed.  Replay semantics:

        - ``publish``: insert-if-absent; the latest pointer only advances
          (and never onto a quarantined record).
        - ``cas``: upsert the record (replacing with the journaled value a
          second time is a no-op); a record carrying the quarantine flag
          recomputes the latest pointer instead of advancing it.
        - ``quarantine``: flag-if-present and rewind the latest pointer to
          the newest non-quarantined survivor (flagging twice is a no-op).
        - ``drop_version`` / ``drop_model``: remove-if-present.

        Replaying a prefix twice therefore converges to the same state as
        replaying it once, and no replay order can regress ``latest``
        past a quarantine that was journaled after it.
        """
        with self._lock:
            if op == "publish":
                rec = ModelRecord.from_dict(data)
                key = (rec.model_name, rec.version)
                if key in self._records:
                    return False
                self._records[key] = rec
                if not rec.quarantined and rec.version > self._latest.get(
                    rec.model_name, -1
                ):
                    self._latest[rec.model_name] = rec.version
                return True
            if op == "cas":
                rec = ModelRecord.from_dict(data)
                key = (rec.model_name, rec.version)
                if self._records.get(key) == rec:
                    return False
                self._records[key] = rec
                if rec.quarantined:
                    self._recompute_latest_locked(rec.model_name)
                elif rec.version > self._latest.get(rec.model_name, -1):
                    self._latest[rec.model_name] = rec.version
                return True
            if op == "quarantine":
                key = (data["model_name"], int(data["version"]))
                old = self._records.get(key)
                if old is None or old.quarantined:
                    return False
                self._quarantine_locked(old, str(data.get("reason", "")))
                return True
            if op == "drop_version":
                key = (data["model_name"], int(data["version"]))
                if key not in self._records:
                    return False
                self._drop_locked(*key)
                return True
            if op == "drop_model":
                name = data["model_name"]
                keys = [k for k in self._records if k[0] == name]
                for k in keys:
                    del self._records[k]
                self._latest.pop(name, None)
                return bool(keys)
            raise MetadataError(f"unknown journal op {op!r}")

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def publish_version(self, record: ModelRecord) -> Cost:
        """Register a checkpoint version and advance the latest pointer.

        Versions may arrive out of order from concurrent producers; the
        latest pointer only moves forward.
        """
        key = (record.model_name, record.version)
        with self._lock:
            if key in self._records:
                raise MetadataError(
                    f"version {record.version} of {record.model_name!r} "
                    f"already published"
                )
            self._journal_op("publish", record.to_dict())
            self._records[key] = record
            current = self._latest.get(record.model_name, -1)
            if not record.quarantined and record.version > current:
                self._latest[record.model_name] = record.version
            self._maybe_compact_locked()
        return Cost.of("metadata.write", DB_ACCESS_LATENCY)

    def compare_and_swap(
        self, updated: ModelRecord, expected_durable: Optional[bool] = None
    ) -> Cost:
        """Replace a record in place; optionally guard on ``durable``."""
        key = (updated.model_name, updated.version)
        with self._lock:
            old = self._records.get(key)
            if old is None:
                raise MetadataError(
                    f"no record for {updated.model_name!r} v{updated.version}"
                )
            if expected_durable is not None and old.durable != expected_durable:
                raise StaleVersionError(
                    f"durable flag changed for {key}",
                    expected=int(expected_durable),
                    actual=int(old.durable),
                )
            if old.quarantined and not updated.quarantined:
                # Quarantine is sticky: a writer holding a pre-quarantine
                # copy (the flusher, recovery's re-CAS) merges the live
                # flags instead of silently resurrecting the version.
                updated = replace(
                    updated,
                    quarantined=True,
                    quarantine_reason=old.quarantine_reason,
                )
            self._journal_op("cas", updated.to_dict())
            self._records[key] = updated
            self._maybe_compact_locked()
        return Cost.of("metadata.write", DB_ACCESS_LATENCY)

    def quarantine_version(
        self, model_name: str, version: int, reason: str
    ) -> Cost:
        """Condemn a version with a reason code (rollback path).

        Idempotent: quarantining an already-quarantined version keeps the
        original reason and journals nothing.  The latest pointer rewinds
        to the newest non-quarantined survivor (or disappears when every
        version of the model is condemned — consumers then keep serving
        whatever they already hold).
        """
        with self._lock:
            old = self._records.get((model_name, version))
            if old is None:
                raise MetadataError(f"no record for {model_name!r} v{version}")
            if not old.quarantined:
                self._journal_op(
                    "quarantine",
                    {
                        "model_name": model_name,
                        "version": version,
                        "reason": reason,
                    },
                )
                self._quarantine_locked(old, reason)
                self._maybe_compact_locked()
        return Cost.of("metadata.write", DB_ACCESS_LATENCY)

    def _quarantine_locked(self, old: ModelRecord, reason: str) -> None:
        self._records[(old.model_name, old.version)] = replace(
            old, quarantined=True, quarantine_reason=reason
        )
        self._recompute_latest_locked(old.model_name)

    def _recompute_latest_locked(self, model_name: str) -> None:
        """Point ``latest`` at the newest non-quarantined version."""
        survivors = [
            v
            for (name, v), rec in self._records.items()
            if name == model_name and not rec.quarantined
        ]
        if survivors:
            self._latest[model_name] = max(survivors)
        else:
            self._latest.pop(model_name, None)

    def drop_version(self, model_name: str, version: int) -> None:
        """Remove one version's record (GC path).  Dropping the latest
        version rewinds the latest pointer to the newest survivor."""
        with self._lock:
            if (model_name, version) not in self._records:
                raise MetadataError(f"no record for {model_name!r} v{version}")
            self._journal_op(
                "drop_version", {"model_name": model_name, "version": version}
            )
            self._drop_locked(model_name, version)
            self._maybe_compact_locked()

    def _drop_locked(self, model_name: str, version: int) -> None:
        del self._records[(model_name, version)]
        if self._latest.get(model_name) == version:
            self._recompute_latest_locked(model_name)

    def drop_model(self, model_name: str) -> int:
        """Remove every version of a model; returns how many were dropped."""
        with self._lock:
            keys = [k for k in self._records if k[0] == model_name]
            if keys:
                self._journal_op("drop_model", {"model_name": model_name})
            for k in keys:
                del self._records[k]
            self._latest.pop(model_name, None)
            if keys:
                self._maybe_compact_locked()
            return len(keys)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def latest(self, model_name: str) -> Tuple[Optional[ModelRecord], Cost]:
        """The newest published record for a model (None if absent)."""
        with self._lock:
            version = self._latest.get(model_name)
            rec = self._records.get((model_name, version)) if version is not None else None
        return rec, Cost.of("metadata.read", DB_ACCESS_LATENCY)

    def record(self, model_name: str, version: int) -> Tuple[ModelRecord, Cost]:
        with self._lock:
            rec = self._records.get((model_name, version))
        if rec is None:
            raise MetadataError(f"no record for {model_name!r} v{version}")
        return rec, Cost.of("metadata.read", DB_ACCESS_LATENCY)

    def versions(self, model_name: str) -> List[int]:
        with self._lock:
            return sorted(v for (name, v) in self._records if name == model_name)

    def quarantined_versions(self, model_name: str) -> List[int]:
        """Condemned versions of a model, oldest first."""
        with self._lock:
            return sorted(
                v
                for (name, v), rec in self._records.items()
                if name == model_name and rec.quarantined
            )

    def models(self) -> Tuple[str, ...]:
        """Every model with at least one record (quarantined included:
        a model whose every version is condemned still exists — recovery
        and GC must be able to see it)."""
        with self._lock:
            return tuple(sorted({name for (name, _v) in self._records}))

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
