"""Shared metadata store for model checkpoints.

The paper uses Redis as "a shared in-memory database" holding, per model:
name, version, size, location (memory or storage), and saving path (Fig. 3,
"Metadata Manager").  :class:`MetadataStore` reproduces those semantics as a
thread-safe, versioned key-value store:

- ``publish_version`` registers a new checkpoint's record and bumps the
  model's latest version atomically (monotonic; concurrent writers cannot
  regress the latest pointer).
- ``latest`` / ``record`` are wait-free reads.
- ``compare_and_swap`` supports optimistic concurrency for components that
  update a record in place (e.g. the flusher marking a version durable).

The store charges a small simulated access latency per operation to model
the Redis round trip.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import MetadataError, StaleVersionError
from repro.substrates.cost import Cost

__all__ = ["ModelRecord", "MetadataStore"]

#: Simulated one-way latency of a metadata-DB operation (an in-memory
#: Redis round trip on the same fabric is tens of microseconds).
DB_ACCESS_LATENCY = 50e-6


@dataclass(frozen=True)
class ModelRecord:
    """One checkpoint version's metadata (paper Fig. 3)."""

    model_name: str
    version: int
    nbytes: int              # virtual (paper-scale) checkpoint size
    location: str            # primary tier key: "gpu", "host_dram", "pfs"
    path: str                # object key within the location
    ntensors: int = 1
    durable: bool = False    # flushed to the PFS for fault tolerance
    created_at: float = 0.0  # simulated timestamp
    train_iteration: int = 0 # producer iteration the checkpoint captures
    train_loss: float = float("nan")
    #: every location holding a replica of this checkpoint (the Stats
    #: Manager's raw material); always includes ``location``.
    replicas: Tuple[str, ...] = ()

    def __post_init__(self):
        if self.version < 0:
            raise MetadataError(f"negative version {self.version}")
        if self.nbytes < 0:
            raise MetadataError(f"negative size {self.nbytes}")
        if self.location not in self.replicas:
            object.__setattr__(
                self, "replicas", tuple(self.replicas) + (self.location,)
            )


class MetadataStore:
    """Thread-safe versioned metadata for every model Viper manages."""

    def __init__(self):
        self._lock = threading.RLock()
        self._records: Dict[Tuple[str, int], ModelRecord] = {}
        self._latest: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def publish_version(self, record: ModelRecord) -> Cost:
        """Register a checkpoint version and advance the latest pointer.

        Versions may arrive out of order from concurrent producers; the
        latest pointer only moves forward.
        """
        key = (record.model_name, record.version)
        with self._lock:
            if key in self._records:
                raise MetadataError(
                    f"version {record.version} of {record.model_name!r} "
                    f"already published"
                )
            self._records[key] = record
            current = self._latest.get(record.model_name, -1)
            if record.version > current:
                self._latest[record.model_name] = record.version
        return Cost.of("metadata.write", DB_ACCESS_LATENCY)

    def compare_and_swap(
        self, updated: ModelRecord, expected_durable: Optional[bool] = None
    ) -> Cost:
        """Replace a record in place; optionally guard on ``durable``."""
        key = (updated.model_name, updated.version)
        with self._lock:
            old = self._records.get(key)
            if old is None:
                raise MetadataError(
                    f"no record for {updated.model_name!r} v{updated.version}"
                )
            if expected_durable is not None and old.durable != expected_durable:
                raise StaleVersionError(
                    f"durable flag changed for {key}",
                    expected=int(expected_durable),
                    actual=int(old.durable),
                )
            self._records[key] = updated
        return Cost.of("metadata.write", DB_ACCESS_LATENCY)

    def drop_version(self, model_name: str, version: int) -> None:
        """Remove one version's record (GC path).  Dropping the latest
        version rewinds the latest pointer to the newest survivor."""
        with self._lock:
            if (model_name, version) not in self._records:
                raise MetadataError(f"no record for {model_name!r} v{version}")
            del self._records[(model_name, version)]
            if self._latest.get(model_name) == version:
                survivors = [
                    v for (name, v) in self._records if name == model_name
                ]
                if survivors:
                    self._latest[model_name] = max(survivors)
                else:
                    del self._latest[model_name]

    def drop_model(self, model_name: str) -> int:
        """Remove every version of a model; returns how many were dropped."""
        with self._lock:
            keys = [k for k in self._records if k[0] == model_name]
            for k in keys:
                del self._records[k]
            self._latest.pop(model_name, None)
            return len(keys)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def latest(self, model_name: str) -> Tuple[Optional[ModelRecord], Cost]:
        """The newest published record for a model (None if absent)."""
        with self._lock:
            version = self._latest.get(model_name)
            rec = self._records.get((model_name, version)) if version is not None else None
        return rec, Cost.of("metadata.read", DB_ACCESS_LATENCY)

    def record(self, model_name: str, version: int) -> Tuple[ModelRecord, Cost]:
        with self._lock:
            rec = self._records.get((model_name, version))
        if rec is None:
            raise MetadataError(f"no record for {model_name!r} v{version}")
        return rec, Cost.of("metadata.read", DB_ACCESS_LATENCY)

    def versions(self, model_name: str) -> List[int]:
        with self._lock:
            return sorted(v for (name, v) in self._records if name == model_name)

    def models(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._latest))

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
