"""Viper core: the paper's primary contribution.

Four major components (paper Fig. 3):

- :mod:`repro.core.callback` — the ``CheckpointCallback`` added to
  ``model.fit()``, tracking per-iteration training quality and triggering
  model updates at scheduled iterations.
- :mod:`repro.core.predictor` — the Inference Performance Predictor (IPP):
  learning-curve fitting (TLP), cumulative-inference-loss prediction
  (CILP), and the fixed-interval / greedy schedule search algorithms.
- :mod:`repro.core.transfer` — the memory-first Model Weights Handler:
  transfer-strategy selection, sync/async capture, GPU-to-GPU and
  Host-to-Host channels, PFS fallback, background flush, and the
  consumer-side double buffer.
- :mod:`repro.core.notification` — the publish-subscribe module that
  replaces repository polling.

:mod:`repro.core.api` exposes the two-call public API from the paper's
Figure 4: ``save_weights()`` and ``load_weights()``.
"""

from repro.core.api import Viper, ViperConsumer, ViperProducer
from repro.core.callback import CheckpointCallback
from repro.core.metadata import MetadataStore, ModelRecord
from repro.core.notification import NotificationBroker, Subscription

__all__ = [
    "Viper",
    "ViperProducer",
    "ViperConsumer",
    "CheckpointCallback",
    "MetadataStore",
    "ModelRecord",
    "NotificationBroker",
    "Subscription",
]
