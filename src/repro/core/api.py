"""Viper's public API (paper Fig. 4): ``save_weights`` / ``load_weights``.

:class:`Viper` wires the whole stack together for a two-node
producer/consumer deployment: hardware profile -> cluster -> metadata DB,
notification broker, model weights handler.  Role views keep the usage
honest to the paper:

- :class:`ViperProducer` — the training side: ``save_weights`` plus a
  factory for the :class:`~repro.core.callback.CheckpointCallback`.
- :class:`ViperConsumer` — the serving side: subscribes to update
  notifications, loads new checkpoints, and swaps them into a
  double-buffered live model.

Example::

    viper = Viper()
    producer = viper.producer()
    consumer = viper.consumer(model_builder=build_tc1)

    cb = producer.checkpoint_callback("tc1", interval=50, warmup_iters=100)
    model.fit(x, y, epochs=5, batch_size=20, callbacks=[cb])

    consumer.refresh()              # pick up the newest checkpoint
    live = consumer.current_model() # serve inferences with it
"""

from __future__ import annotations

import threading
from typing import Callable, Optional


from repro.errors import (
    ConfigurationError,
    IntegrityError,
    RetriesExhausted,
    ServingError,
)
from repro.substrates.cluster.cluster import make_producer_consumer_pair
from repro.substrates.profiles import POLARIS, HardwareProfile
from repro.dnn.serialization import Serializer
from repro.core.callback import CheckpointCallback
from repro.core.metadata import MetadataStore
from repro.core.notification import NotificationBroker, Subscription
from repro.core.transfer.double_buffer import BufferSnapshot, DoubleBuffer
from repro.core.transfer.handler import LoadResult, ModelWeightsHandler, UpdateResult
from repro.core.transfer.selector import TransferSelector

__all__ = ["Viper", "ViperProducer", "ViperConsumer"]


class Viper:
    """One producer/consumer deployment of the Viper I/O framework."""

    def __init__(
        self,
        profile: HardwareProfile = POLARIS,
        *,
        serializer: Optional[Serializer] = None,
        selector: Optional[TransferSelector] = None,
        flush_history: bool = False,
        retention=None,
        topic: str = "model-updates",
        tracer=None,
        metrics=None,
        pipeline=None,
        delta=None,
        compression: Optional[str] = None,
        retry_policy=None,
        failover: bool = True,
        fault_plan=None,
        journal=None,
        recover: bool = False,
        crash_plan=None,
        notify_queue_max: int = 0,
        lineage=None,
        freshness=None,
        lease_ttl: Optional[float] = None,
        slow_consumer_cycles: int = 0,
        breaker=None,
    ):
        from repro.core.stats import StatsManager
        from repro.obs.freshness import NULL_FRESHNESS
        from repro.obs.lineage import NULL_LINEAGE
        from repro.obs.metrics import NULL_METRICS
        from repro.obs.tracer import NULL_TRACER

        self.profile = profile
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.lineage = lineage if lineage is not None else NULL_LINEAGE
        self.freshness = freshness if freshness is not None else NULL_FRESHNESS
        # One stats manager shared by the broker (lease evictions), the
        # breaker board (trips), and the handler (transfer accounting),
        # so fleet-health counters land in a single snapshot.
        self.stats = StatsManager(metrics=self.metrics)
        # Circuit breakers for the transfer stack's retry sites; `breaker`
        # accepts a BreakerConfig or a plain bool (True = defaults).
        self.breakers = self._breaker_board(breaker)
        self.cluster, self.producer_node, self.consumer_node = (
            make_producer_consumer_pair(profile)
        )
        self.metadata = MetadataStore()
        # Crash recovery: replay the durable journal into the fresh
        # metadata store *before* any component can mutate it, then
        # journal every subsequent mutation (write-ahead).
        if recover and journal is None:
            raise ConfigurationError("recover=True requires a journal")
        self.journal = None
        self.recovery = {
            "replayed_ops": 0, "completed": 0, "requeued": 0, "pruned": 0,
        }
        replayed = 0
        if journal is not None:
            from repro.resilience.recovery import MetadataJournal

            if not isinstance(journal, MetadataJournal):
                journal = MetadataJournal(journal, metrics=self.metrics)
            self.journal = journal
            if recover:
                with self.tracer.span(
                    "recovery.replay", track="recovery", root=str(journal.root)
                ) as sp:
                    replayed = journal.replay_into(self.metadata)
                    sp.set(replayed_ops=replayed)
            self.metadata.attach_journal(journal)
        self.broker = NotificationBroker(
            metrics=self.metrics,
            queue_max=notify_queue_max,
            lease_ttl=lease_ttl,
            slow_consumer_cycles=slow_consumer_cycles,
            stats=self.stats,
        )
        self.handler = ModelWeightsHandler(
            self.cluster,
            self.producer_node,
            self.consumer_node,
            profile,
            metadata=self.metadata,
            broker=self.broker,
            serializer=serializer,
            selector=selector,
            flush_history=flush_history,
            retention=retention,
            topic=topic,
            tracer=self.tracer,
            metrics=self.metrics,
            pipeline=pipeline,
            delta=self._delta_config(delta, compression),
            retry_policy=retry_policy,
            failover=failover,
            lineage=self.lineage,
            freshness=self.freshness,
            stats=self.stats,
            breakers=self.breakers,
        )
        self.topic = topic
        self._consumer_seq = 0
        if self.journal is not None:
            # The PFS mirrors to durable media beside the journal; a
            # recovering deployment reloads the surviving objects first.
            self.cluster.pfs.attach_media(self.journal.root / "pfs", load=recover)
        if recover:
            # Reconcile journaled-but-not-durable checkpoints (complete
            # the flush CAS, requeue, or prune), then resume version
            # numbering above what survived.
            with self.tracer.span("recovery.reconcile", track="recovery") as sp:
                counts = self.handler.recover_pending()
                self.handler.restore_version_counters()
                sp.set(**counts)
            self.recovery = {"replayed_ops": replayed, **counts}
            self.handler.stats.record_recovery(replayed)
        # An armed fault plan (chaos testing) hooks this deployment's
        # fabric and tier stores for the session; close() disarms it.
        self.fault_plan = fault_plan
        if fault_plan is not None:
            fault_plan.bind_metrics(self.metrics).arm(self.cluster)
        # An armed crash plan (the crash-restart harness) installs its
        # kill points across the handler, flusher, and tier stores.
        self.crash_plan = crash_plan
        if crash_plan is not None:
            crash_plan.arm(self)

    def _breaker_board(self, breaker):
        """Normalize the ``breaker`` knob to a BreakerBoard (or None)."""
        from repro.resilience.breaker import BreakerBoard, BreakerConfig
        from repro.resilience.faults import default_seed

        if breaker is None or breaker is False:
            return None
        config = breaker if isinstance(breaker, BreakerConfig) else None
        return BreakerBoard(
            config,
            seed=default_seed(),
            metrics=self.metrics,
            stats=self.stats,
        )

    @staticmethod
    def _delta_config(delta, compression: Optional[str]):
        """Normalize the delta/compression knobs to one DeltaConfig.

        ``delta`` accepts a :class:`~repro.core.transfer.delta.DeltaConfig`
        or a plain bool; a *real* ``compression`` codec alone implies the
        delta path with an all-literal (compression-only) wire form.  An
        explicit ``compression="none"`` means the same as leaving it
        unset — it never opts a deployment into the delta path.
        """
        from repro.core.transfer.delta import DeltaConfig

        if compression == "none":
            compression = None
        if isinstance(delta, DeltaConfig):
            if compression is not None and compression != delta.compression:
                raise ConfigurationError(
                    f"compression={compression!r} conflicts with "
                    f"DeltaConfig(compression={delta.compression!r})"
                )
            return delta
        if delta is None and compression is None:
            return None
        return DeltaConfig(
            enabled=bool(delta) or compression is not None,
            compression=compression if compression is not None else "none",
        )

    # -- paper Fig. 4 API -------------------------------------------------
    def save_weights(self, model_name: str, model_weights, **kwargs) -> UpdateResult:
        """Save the current model state (producer interface)."""
        return self.handler.save_weights(model_name, model_weights, **kwargs)

    def load_weights(self, model_name: str, version: Optional[int] = None) -> LoadResult:
        """Load an updated model (consumer interface)."""
        return self.handler.load_weights(model_name, version)

    # -- role views --------------------------------------------------------
    def producer(self) -> "ViperProducer":
        return ViperProducer(self)

    def consumer(
        self,
        model_builder: Callable[[], object],
        name: Optional[str] = None,
    ) -> "ViperConsumer":
        if name is None:
            name = f"consumer-{self._consumer_seq}"
            self._consumer_seq += 1
        return ViperConsumer(self, model_builder, name=name)

    # -- lifecycle ----------------------------------------------------------
    def drain(self) -> None:
        self.handler.drain()

    def close(self) -> None:
        if self.fault_plan is not None:
            self.fault_plan.disarm()
        self.handler.close()
        self.broker.close()
        self.cluster.close()
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "Viper":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ViperProducer:
    """Training-side view: save checkpoints, build fit callbacks."""

    def __init__(self, viper: Viper):
        self.viper = viper

    def save_weights(self, model_name: str, model_weights, **kwargs) -> UpdateResult:
        return self.viper.save_weights(model_name, model_weights, **kwargs)

    def checkpoint_callback(self, model_name: str, **kwargs) -> CheckpointCallback:
        """A :class:`CheckpointCallback` bound to this deployment."""
        return CheckpointCallback(self.viper, model_name, **kwargs)

    def drain(self) -> None:
        self.viper.drain()


class ViperConsumer:
    """Serving-side view: double-buffered live model + push updates.

    ``model_builder`` constructs a fresh model instance; the consumer
    keeps two (primary serving, alternate staging) and swaps atomically
    on every update, so inference never observes a half-loaded model.
    """

    def __init__(
        self,
        viper: Viper,
        model_builder: Callable[[], object],
        name: str = "consumer-0",
    ):
        self.viper = viper
        self.name = name
        self._builder = model_builder
        self._spare = model_builder()
        self._buffer: DoubleBuffer = DoubleBuffer(
            model_builder(),
            version=0,
            metrics=viper.metrics,
            freshness=viper.freshness,
            owner=name,
        )
        self._sub: Optional[Subscription] = None
        self._lock = threading.Lock()
        self.updates_applied = 0
        self.load_seconds = 0.0
        self._last_model: Optional[str] = None
        #: Lazily-built third model replica backing the canary slot (the
        #: rollout path needs primary + spare + canary live at once).
        self._canary_model = None

    # ------------------------------------------------------------------
    def subscribe(self) -> Subscription:
        """Register for push notifications of new checkpoints.

        The subscription carries this consumer's name as its lease
        identity; on a lease-armed broker it must :meth:`heartbeat`
        within the TTL or be evicted.
        """
        if self._sub is None:
            self._sub = self.viper.broker.subscribe(
                self.viper.topic,
                member=self.name,
                now=self.viper.handler.sim_now,
            )
        return self._sub

    def heartbeat(self, now: Optional[float] = None) -> bool:
        """Renew this consumer's broker lease (serving loops call this on
        every update poll).  False when leases are off or already lapsed —
        a lapsed lease means the broker evicted us and the next
        :meth:`resubscribe` owes a catch-up read."""
        if now is None:
            now = self.viper.handler.sim_now
        return self.viper.broker.heartbeat(self.name, now)

    @property
    def evicted(self) -> bool:
        """True when the broker evicted this consumer's subscription."""
        return self._sub is not None and self._sub.evicted

    @property
    def last_seq(self) -> int:
        """Highest notification sequence number consumed so far."""
        return self._sub.last_seq if self._sub is not None else 0

    def resubscribe(self, since: Optional[int] = None) -> Subscription:
        """Re-attach to the broker after a restart, with gap detection.

        ``since`` defaults to the last sequence number this consumer
        consumed (e.g. carried over from a previous incarnation).  A
        sequence mismatch flags the subscription for one metadata
        catch-up read, which the next :meth:`refresh` performs.
        """
        if since is None:
            since = self.last_seq
        old = self._sub
        self._sub = self.viper.broker.resubscribe(
            self.viper.topic,
            since,
            member=self.name,
            now=self.viper.handler.sim_now,
        )
        if old is not None and not old.evicted:
            # An evicted subscription is already detached and closed;
            # unsubscribing it would release the lease the resubscribe
            # just re-granted.
            self.viper.broker.unsubscribe(old)
        if self._sub.needs_catchup:
            self.viper.handler.stats.record_notification_gap()
        return self._sub

    def current_model(self):
        """The live model for serving (never torn, possibly stale)."""
        return self._buffer.acquire().model

    @property
    def current_version(self) -> int:
        return self._buffer.version

    # ------------------------------------------------------------------
    def apply_update(self, model_name: str, version: Optional[int] = None) -> LoadResult:
        """Load a checkpoint and atomically swap it into serving."""
        with self._lock, self.viper.tracer.span(
            "consumer.apply_update", track="consumer", model=model_name
        ) as sp:
            try:
                result = self.viper.load_weights(model_name, version)
            except (IntegrityError, RetriesExhausted) as exc:
                # A corrupt checkpoint never reaches either buffer slot:
                # the swap is rejected and the live model keeps serving.
                cause = exc if isinstance(exc, IntegrityError) else exc.__cause__
                if isinstance(cause, IntegrityError):
                    self._buffer.record_rejection()
                    self.viper.handler.stats.record_swap_rejected()
                    sp.set(outcome="swap_rejected")
                raise
            if result.record.quarantined:
                # Never swap a condemned version live, even when a caller
                # names it explicitly (metadata.latest already skips it).
                self.viper.freshness.record_stale_rejection(self.name, model_name)
                raise ServingError(
                    f"version {result.version} of {model_name!r} is "
                    f"quarantined ({result.record.quarantine_reason})"
                )
            if result.version <= self._buffer.version:
                self.viper.freshness.record_stale_rejection(self.name, model_name)
                raise ServingError(
                    f"update {result.version} is not newer than live "
                    f"{self._buffer.version}"
                )
            # Stage into the spare replica, then swap; the displaced
            # primary becomes the next spare (classic double buffering).
            self._spare.load_state_dict(result.state)
            displaced = self._buffer.acquire().model
            self._buffer.update(self._spare, result.version)
            self._spare = displaced
            self.updates_applied += 1
            self.load_seconds += result.cost.total
            self._last_model = model_name
            # Lifecycle + freshness: the load and swap land at the
            # handler's simulated "now" (already advanced by the load).
            sim_now = self.viper.handler.sim_now
            header = result.record.trace_ctx
            self.viper.lineage.record_header(
                header, "load", sim_time=sim_now, actor=self.name,
                sim_seconds=result.cost.total, location=result.location,
            )
            self.viper.lineage.record_header(
                header, "swap", sim_time=sim_now, actor=self.name,
                location=result.location,
            )
            self.viper.freshness.record_swap(
                self.name, model_name, result.version, sim_now
            )
            sp.set(version=result.version, location=result.location)
            return result

    # ------------------------------------------------------------------
    # Canary lifecycle (driven by the rollout controller)
    # ------------------------------------------------------------------
    def stage_candidate(
        self, model_name: str, version: Optional[int] = None
    ) -> LoadResult:
        """Load a checkpoint into the canary slot without touching the
        primary.  The candidate serves only the traffic the rollout
        controller routes to it until a promote/rollback verdict lands.

        Rejects quarantined versions outright; integrity failures follow
        the same swap-rejection accounting as :meth:`apply_update`.
        """
        with self._lock, self.viper.tracer.span(
            "consumer.stage_candidate", track="consumer", model=model_name
        ) as sp:
            try:
                result = self.viper.load_weights(model_name, version)
            except (IntegrityError, RetriesExhausted) as exc:
                cause = exc if isinstance(exc, IntegrityError) else exc.__cause__
                if isinstance(cause, IntegrityError):
                    self._buffer.record_rejection()
                    self.viper.handler.stats.record_swap_rejected()
                    sp.set(outcome="swap_rejected")
                raise
            if result.record.quarantined:
                self.viper.freshness.record_stale_rejection(self.name, model_name)
                raise ServingError(
                    f"version {result.version} of {model_name!r} is "
                    f"quarantined ({result.record.quarantine_reason})"
                )
            if self._canary_model is None:
                self._canary_model = self._builder()
            self._canary_model.load_state_dict(result.state)
            self._buffer.stage_canary(self._canary_model, result.version)
            self.load_seconds += result.cost.total
            self._last_model = model_name
            sim_now = self.viper.handler.sim_now
            header = result.record.trace_ctx
            self.viper.lineage.record_header(
                header, "load", sim_time=sim_now, actor=self.name,
                sim_seconds=result.cost.total, location=result.location,
            )
            self.viper.lineage.record_header(
                header, "canary", sim_time=sim_now, actor=self.name,
                location=result.location,
            )
            sp.set(version=result.version, location=result.location)
            return result

    def canary_snapshot(self) -> Optional[BufferSnapshot]:
        """The staged candidate (model + version), or None when idle."""
        return self._buffer.acquire_canary()

    @property
    def candidate_version(self) -> Optional[int]:
        return self._buffer.canary_version

    def promote_candidate(self, model_name: str) -> BufferSnapshot:
        """Atomically swap the canary into the primary (health-gate
        verdict: promote).  The displaced primary's model object becomes
        the next canary replica."""
        with self._lock:
            staged = self._buffer.acquire_canary()
            if staged is None:
                raise ServingError("promote_candidate() with no canary staged")
            displaced = self._buffer.promote_canary()
            self._canary_model = displaced.model
            self.updates_applied += 1
            self._last_model = model_name
            sim_now = self.viper.handler.sim_now
            self.viper.freshness.record_swap(
                self.name, model_name, staged.version, sim_now
            )
            try:
                record, _cost = self.viper.metadata.record(
                    model_name, staged.version
                )
                header = record.trace_ctx
            except Exception:
                header = ""
            self.viper.lineage.record_header(
                header, "swap", sim_time=sim_now, actor=self.name,
            )
            return staged

    def drop_candidate(self) -> Optional[int]:
        """Discard the canary (rollback or supersede); returns its
        version, or None when no candidate was staged."""
        with self._lock:
            return self._buffer.drop_canary()

    def refresh(self, model_name: Optional[str] = None) -> Optional[LoadResult]:
        """Pick up the newest checkpoint if it is newer than the live one.

        With a subscription active, drains queued notifications first
        (keeping only the newest, as Viper's memory channels hold only
        the latest model).  Returns None when already current.
        """
        if self._sub is not None and self._sub.evicted:
            # The broker evicted us (lease lapse or slow-consumer); the
            # resubscribe reconciles sequence numbers, so the catch-up
            # read below replaces everything the eviction reclaimed.
            self.resubscribe()
        if model_name is None:
            notes = self._sub.drain() if self._sub is not None else []
            catchup = self._sub is not None and self._sub.needs_catchup
            if notes:
                model_name = notes[-1].model_name
                self._last_model = model_name
            elif catchup and self._last_model is not None:
                # Gap detected but nothing queued: one metadata catch-up
                # read replaces the pushes that never arrived.
                model_name = self._last_model
            else:
                return None
            if catchup:
                self._sub.needs_catchup = False
        record, _cost = self.viper.metadata.latest(model_name)
        if record is None or record.version <= self._buffer.version:
            return None
        return self.apply_update(model_name)
