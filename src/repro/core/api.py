"""Viper's public API (paper Fig. 4): ``save_weights`` / ``load_weights``.

:class:`Viper` wires the whole stack together for a two-node
producer/consumer deployment: hardware profile -> cluster -> metadata DB,
notification broker, model weights handler.  Role views keep the usage
honest to the paper:

- :class:`ViperProducer` — the training side: ``save_weights`` plus a
  factory for the :class:`~repro.core.callback.CheckpointCallback`.
- :class:`ViperConsumer` — the serving side: subscribes to update
  notifications, loads new checkpoints, and swaps them into a
  double-buffered live model.

Example::

    viper = Viper()
    producer = viper.producer()
    consumer = viper.consumer(model_builder=build_tc1)

    cb = producer.checkpoint_callback("tc1", interval=50, warmup_iters=100)
    model.fit(x, y, epochs=5, batch_size=20, callbacks=[cb])

    consumer.refresh()              # pick up the newest checkpoint
    live = consumer.current_model() # serve inferences with it
"""

from __future__ import annotations

import threading
from typing import Callable, Optional


from repro.errors import ServingError
from repro.substrates.cluster.cluster import make_producer_consumer_pair
from repro.substrates.profiles import POLARIS, HardwareProfile
from repro.dnn.serialization import Serializer
from repro.core.callback import CheckpointCallback
from repro.core.metadata import MetadataStore
from repro.core.notification import NotificationBroker, Subscription
from repro.core.transfer.double_buffer import DoubleBuffer
from repro.core.transfer.handler import LoadResult, ModelWeightsHandler, UpdateResult
from repro.core.transfer.selector import TransferSelector

__all__ = ["Viper", "ViperProducer", "ViperConsumer"]


class Viper:
    """One producer/consumer deployment of the Viper I/O framework."""

    def __init__(
        self,
        profile: HardwareProfile = POLARIS,
        *,
        serializer: Optional[Serializer] = None,
        selector: Optional[TransferSelector] = None,
        flush_history: bool = False,
        retention=None,
        topic: str = "model-updates",
        tracer=None,
        metrics=None,
        pipeline=None,
        retry_policy=None,
        failover: bool = True,
        fault_plan=None,
    ):
        from repro.obs.metrics import NULL_METRICS
        from repro.obs.tracer import NULL_TRACER

        self.profile = profile
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.cluster, self.producer_node, self.consumer_node = (
            make_producer_consumer_pair(profile)
        )
        self.metadata = MetadataStore()
        self.broker = NotificationBroker(metrics=self.metrics)
        self.handler = ModelWeightsHandler(
            self.cluster,
            self.producer_node,
            self.consumer_node,
            profile,
            metadata=self.metadata,
            broker=self.broker,
            serializer=serializer,
            selector=selector,
            flush_history=flush_history,
            retention=retention,
            topic=topic,
            tracer=self.tracer,
            metrics=self.metrics,
            pipeline=pipeline,
            retry_policy=retry_policy,
            failover=failover,
        )
        self.topic = topic
        # An armed fault plan (chaos testing) hooks this deployment's
        # fabric and tier stores for the session; close() disarms it.
        self.fault_plan = fault_plan
        if fault_plan is not None:
            fault_plan.bind_metrics(self.metrics).arm(self.cluster)

    # -- paper Fig. 4 API -------------------------------------------------
    def save_weights(self, model_name: str, model_weights, **kwargs) -> UpdateResult:
        """Save the current model state (producer interface)."""
        return self.handler.save_weights(model_name, model_weights, **kwargs)

    def load_weights(self, model_name: str, version: Optional[int] = None) -> LoadResult:
        """Load an updated model (consumer interface)."""
        return self.handler.load_weights(model_name, version)

    # -- role views --------------------------------------------------------
    def producer(self) -> "ViperProducer":
        return ViperProducer(self)

    def consumer(self, model_builder: Callable[[], object]) -> "ViperConsumer":
        return ViperConsumer(self, model_builder)

    # -- lifecycle ----------------------------------------------------------
    def drain(self) -> None:
        self.handler.drain()

    def close(self) -> None:
        if self.fault_plan is not None:
            self.fault_plan.disarm()
        self.handler.close()
        self.broker.close()
        self.cluster.close()

    def __enter__(self) -> "Viper":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ViperProducer:
    """Training-side view: save checkpoints, build fit callbacks."""

    def __init__(self, viper: Viper):
        self.viper = viper

    def save_weights(self, model_name: str, model_weights, **kwargs) -> UpdateResult:
        return self.viper.save_weights(model_name, model_weights, **kwargs)

    def checkpoint_callback(self, model_name: str, **kwargs) -> CheckpointCallback:
        """A :class:`CheckpointCallback` bound to this deployment."""
        return CheckpointCallback(self.viper, model_name, **kwargs)

    def drain(self) -> None:
        self.viper.drain()


class ViperConsumer:
    """Serving-side view: double-buffered live model + push updates.

    ``model_builder`` constructs a fresh model instance; the consumer
    keeps two (primary serving, alternate staging) and swaps atomically
    on every update, so inference never observes a half-loaded model.
    """

    def __init__(self, viper: Viper, model_builder: Callable[[], object]):
        self.viper = viper
        self._builder = model_builder
        self._spare = model_builder()
        self._buffer: DoubleBuffer = DoubleBuffer(
            model_builder(), version=0, metrics=viper.metrics
        )
        self._sub: Optional[Subscription] = None
        self._lock = threading.Lock()
        self.updates_applied = 0
        self.load_seconds = 0.0

    # ------------------------------------------------------------------
    def subscribe(self) -> Subscription:
        """Register for push notifications of new checkpoints."""
        if self._sub is None:
            self._sub = self.viper.broker.subscribe(self.viper.topic)
        return self._sub

    def current_model(self):
        """The live model for serving (never torn, possibly stale)."""
        return self._buffer.acquire().model

    @property
    def current_version(self) -> int:
        return self._buffer.version

    # ------------------------------------------------------------------
    def apply_update(self, model_name: str, version: Optional[int] = None) -> LoadResult:
        """Load a checkpoint and atomically swap it into serving."""
        with self._lock, self.viper.tracer.span(
            "consumer.apply_update", track="consumer", model=model_name
        ) as sp:
            result = self.viper.load_weights(model_name, version)
            if result.version <= self._buffer.version:
                raise ServingError(
                    f"update {result.version} is not newer than live "
                    f"{self._buffer.version}"
                )
            # Stage into the spare replica, then swap; the displaced
            # primary becomes the next spare (classic double buffering).
            self._spare.load_state_dict(result.state)
            displaced = self._buffer.acquire().model
            self._buffer.update(self._spare, result.version)
            self._spare = displaced
            self.updates_applied += 1
            self.load_seconds += result.cost.total
            sp.set(version=result.version, location=result.location)
            return result

    def refresh(self, model_name: Optional[str] = None) -> Optional[LoadResult]:
        """Pick up the newest checkpoint if it is newer than the live one.

        With a subscription active, drains queued notifications first
        (keeping only the newest, as Viper's memory channels hold only
        the latest model).  Returns None when already current.
        """
        if model_name is None:
            notes = self._sub.drain() if self._sub is not None else []
            if not notes:
                return None
            model_name = notes[-1].model_name
        record, _cost = self.viper.metadata.latest(model_name)
        if record is None or record.version <= self._buffer.version:
            return None
        return self.apply_update(model_name)
