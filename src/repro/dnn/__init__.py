"""A small numpy DNN framework standing in for TensorFlow-2.9.

The paper trains CANDLE NT3/TC1 (1-D convolutional classifiers) and
PtychoNN (a convolutional encoder–decoder) with ``model.fit`` plus a custom
checkpoint callback.  Viper only needs three things from the framework:

1. genuine, convergent training-loss curves at *iteration* granularity,
2. a callback hook after every training batch,
3. a ``state_dict`` of named tensors to checkpoint.

This package provides exactly that: layers with correct forward/backward
passes, SGD/Adam optimizers, cross-entropy/MSE/MAE losses, a
``Sequential.fit`` training loop with a Keras-style callback list, and
binary serializers for checkpoints.
"""

from repro.dnn.layers import (
    Conv1D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAveragePooling1D,
    Layer,
    MaxPool1D,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
    UpSampling2D,
)
from repro.dnn.losses import CrossEntropyLoss, Loss, MAELoss, MSELoss
from repro.dnn.models import Sequential
from repro.dnn.optimizers import SGD, Adam, Optimizer
from repro.dnn.training import Callback, History
from repro.dnn.serialization import (
    H5LikeSerializer,
    Serializer,
    ViperSerializer,
    state_dict_nbytes,
)

__all__ = [
    "Layer",
    "Dense",
    "Conv1D",
    "Conv2D",
    "MaxPool1D",
    "MaxPool2D",
    "UpSampling2D",
    "GlobalAveragePooling1D",
    "Flatten",
    "Dropout",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Loss",
    "CrossEntropyLoss",
    "MSELoss",
    "MAELoss",
    "Optimizer",
    "SGD",
    "Adam",
    "Sequential",
    "Callback",
    "History",
    "Serializer",
    "ViperSerializer",
    "H5LikeSerializer",
    "state_dict_nbytes",
]
