"""Weight initializers.

Glorot/He schemes keep the loss curves of the reproduction's synthetic
CANDLE/PtychoNN models in the stable, monotonically-decreasing regime the
paper's learning-curve predictor assumes (§4.3 assumption 1).
"""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_normal", "zeros", "normal"]


def glorot_uniform(rng: np.random.Generator, shape, fan_in: int, fan_out: int):
    """Glorot/Xavier uniform: U(-limit, limit), limit = sqrt(6/(fi+fo))."""
    limit = np.sqrt(6.0 / float(fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def he_normal(rng: np.random.Generator, shape, fan_in: int):
    """He normal: N(0, sqrt(2/fan_in)); the default for ReLU stacks."""
    std = np.sqrt(2.0 / float(fan_in))
    return (rng.standard_normal(shape) * std).astype(np.float32)


def normal(rng: np.random.Generator, shape, std: float = 0.01):
    """Plain Gaussian init with the given standard deviation."""
    return (rng.standard_normal(shape) * std).astype(np.float32)


def zeros(shape):
    """All-zeros init (the conventional bias initializer)."""
    return np.zeros(shape, dtype=np.float32)
