"""Checkpoint serializers: Viper's compact format and an h5py-like baseline.

The paper's Figure 8 compares ``h5py`` (the baseline every CANDLE app uses)
against Viper's own format, noting that Viper "only writes the model weights
and closely related metadata into the file, avoiding some unnecessary
metadata added by h5py".  We reproduce both:

- :class:`ViperSerializer` — a tight binary layout: magic, version, tensor
  count, then per tensor ``name | dtype | shape | raw bytes``.
- :class:`H5LikeSerializer` — the same payload plus the structural overhead
  an HDF5 file carries: a superblock, per-dataset object headers and
  attribute blocks, and chunk padding.  The overhead constants are small
  but per-tensor, which is exactly why many-tensor models (PtychoNN) pay
  more on the file path.

Each serializer also exposes a *timing* surface (``fixed_overhead`` /
``per_tensor_overhead``) the transfer engine charges on serialize and
deserialize; the h5py-like baseline is slower per tensor.

Both serializers additionally expose an *iovec* surface for the chunked
transfer pipeline (:mod:`repro.core.transfer.pipeline`):

- ``dump_chunks`` yields the serialized stream as zero-copy pieces —
  small header ``bytes`` plus ``memoryview`` s over the live tensors —
  avoiding the per-tensor ``tobytes`` copy and the monolithic join;
- ``load_chunks`` reassembles a chunk stream and deserializes it;
- ``loads(..., copy=False)`` returns read-only arrays aliasing the input
  buffer: a zero-copy load for consumers that only read the weights.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, Iterable, Iterator, Tuple

import numpy as np

from repro.errors import IntegrityError, StorageError

__all__ = [
    "Serializer",
    "ViperSerializer",
    "H5LikeSerializer",
    "state_dict_nbytes",
]

_VIPER_MAGIC = b"VIPR"
_H5_MAGIC = b"\x89HDF"
# Version 2 adds a CRC-32 of the packed-tensor payload to the header:
#   VIPR | <I version> | <I crc32> | payload
# Version-1 blobs (VIPR | <I 1> | payload) still load, unverified.
_FORMAT_VERSION = 2
_V1_PAYLOAD_OFFSET = 8
_V2_PAYLOAD_OFFSET = 12


def state_dict_nbytes(state: Dict[str, np.ndarray]) -> int:
    """Raw payload size of a state dict in bytes."""
    return sum(int(t.nbytes) for t in state.values())


class Serializer:
    """Contract: state dict <-> bytes, plus timing-model constants."""

    name = "serializer"
    # Seconds charged once per (de)serialize, modelling library setup cost.
    fixed_overhead = 0.0
    # Seconds charged per tensor, modelling per-dataset metadata handling.
    per_tensor_overhead = 0.0
    # Multiplier applied to the payload size on the wire / on disk.
    bytes_overhead_factor = 1.0

    def dumps(self, state: Dict[str, np.ndarray]) -> bytes:
        raise NotImplementedError

    def loads(self, blob, *, copy: bool = True) -> Dict[str, np.ndarray]:
        raise NotImplementedError

    # -- iovec surface (chunked pipeline) -------------------------------
    def dump_chunks(self, state: Dict[str, np.ndarray]) -> Iterator:
        """Yield the serialized stream as zero-copy bytes-like pieces.

        ``b"".join(dump_chunks(state))`` equals ``dumps(state)`` exactly;
        tensor payloads are yielded as ``memoryview`` s over the live
        arrays, so no full-payload copy happens here.  Callers must not
        mutate ``state`` until the pieces have been consumed.
        """
        raise NotImplementedError

    def load_chunks(self, chunks: Iterable, *, copy: bool = True) -> Dict[str, np.ndarray]:
        """Reassemble a chunk stream (in order) and deserialize it.

        One reassembly copy into a contiguous buffer, then a
        ``loads(..., copy=copy)`` over it — with ``copy=False`` the
        returned arrays alias that buffer (read-only).
        """
        buf = bytearray()
        for chunk in chunks:
            buf += chunk
        # ``buf`` is privately owned, so aliasing it with copy=False is safe.
        return self.loads(buf, copy=copy)

    # -- timing model ---------------------------------------------------
    def serialize_seconds(self, ntensors: int) -> float:
        return self.fixed_overhead + self.per_tensor_overhead * ntensors

    def deserialize_seconds(self, ntensors: int) -> float:
        return self.fixed_overhead + self.per_tensor_overhead * ntensors

    def wire_bytes(self, payload_bytes: int) -> int:
        """Bytes actually written/transferred for a raw payload size."""
        return int(payload_bytes * self.bytes_overhead_factor)


def _tensor_view(tensor: np.ndarray) -> memoryview:
    """Zero-copy flat byte view of a C-contiguous tensor."""
    if tensor.nbytes == 0:
        return memoryview(b"")
    # cast("B") rejects 0-d views; reshape(-1) is a view for contiguous data.
    return memoryview(tensor.reshape(-1)).cast("B")


def _tensor_pieces(state: Dict[str, np.ndarray]) -> Iterator:
    """The packed-tensor stream as an iovec: header bytes + tensor views.

    Joining the pieces reproduces the historical ``_pack_tensors`` output
    byte for byte; the tensor payloads are ``memoryview`` s over the live
    (contiguous) arrays, so emitting them copies nothing.
    """
    yield struct.pack("<I", len(state))
    for name in sorted(state):
        original = np.asarray(state[name])
        # ascontiguousarray promotes 0-d to 1-d; keep the true shape.
        shape = original.shape
        tensor = np.ascontiguousarray(original)
        name_b = name.encode("utf-8")
        dtype_b = tensor.dtype.str.encode("ascii")
        header = [struct.pack("<H", len(name_b)), name_b]
        header.append(struct.pack("<B", len(dtype_b)))
        header.append(dtype_b)
        header.append(struct.pack("<B", len(shape)))
        for dim in shape:
            header.append(struct.pack("<Q", dim))
        header.append(struct.pack("<Q", tensor.nbytes))
        yield b"".join(header)
        yield _tensor_view(tensor)


def _pack_tensors(state: Dict[str, np.ndarray]) -> bytes:
    return b"".join(_tensor_pieces(state))


def _unpack_tensors(
    blob, offset: int, *, copy: bool = True
) -> Tuple[Dict[str, np.ndarray], int]:
    mv = memoryview(blob)
    (count,) = struct.unpack_from("<I", mv, offset)
    offset += 4
    state: Dict[str, np.ndarray] = {}
    for _ in range(count):
        (name_len,) = struct.unpack_from("<H", mv, offset)
        offset += 2
        name = bytes(mv[offset : offset + name_len]).decode("utf-8")
        offset += name_len
        (dtype_len,) = struct.unpack_from("<B", mv, offset)
        offset += 1
        dtype = np.dtype(bytes(mv[offset : offset + dtype_len]).decode("ascii"))
        offset += dtype_len
        (ndim,) = struct.unpack_from("<B", mv, offset)
        offset += 1
        shape = []
        for _ in range(ndim):
            (dim,) = struct.unpack_from("<Q", mv, offset)
            shape.append(dim)
            offset += 8
        (raw_len,) = struct.unpack_from("<Q", mv, offset)
        offset += 8
        if raw_len % dtype.itemsize:
            raise StorageError(
                f"corrupt tensor {name!r}: {raw_len} bytes not a multiple "
                f"of itemsize {dtype.itemsize}"
            )
        tensor = np.frombuffer(
            mv, dtype=dtype, count=raw_len // dtype.itemsize, offset=offset
        ).reshape(shape)
        offset += raw_len
        if copy:
            tensor = tensor.copy()
        else:
            # Zero-copy fast path: the array aliases the caller's buffer.
            tensor.flags.writeable = False
        state[name] = tensor
    return state, offset


class ViperSerializer(Serializer):
    """Viper's compact checkpoint format (weights + minimal metadata).

    Format v2 carries a CRC-32 of the packed-tensor payload in the
    header; :meth:`loads` verifies it (including on the zero-copy path,
    which reads but does not copy the buffer) and raises
    :class:`~repro.errors.IntegrityError` on mismatch, so corruption on
    the wire or in a tier is detected before any tensor is materialized.
    """

    name = "viper"
    fixed_overhead = 0.010
    per_tensor_overhead = 0.0002
    bytes_overhead_factor = 1.005  # headers only

    def dumps(self, state):
        return b"".join(self.dump_chunks(state))

    def dump_chunks(self, state):
        if not state:
            raise StorageError("refusing to serialize an empty state dict")
        # The checksum pass touches every piece before the header can be
        # emitted; the pieces are views over the live tensors, so holding
        # them costs no copies.
        pieces = list(_tensor_pieces(state))
        crc = 0
        for piece in pieces:
            crc = zlib.crc32(piece, crc)
        yield _VIPER_MAGIC + struct.pack("<II", _FORMAT_VERSION, crc)
        yield from pieces

    def loads(self, blob, *, copy: bool = True):
        mv = memoryview(blob)
        if mv[:4] != _VIPER_MAGIC:
            raise StorageError("not a Viper checkpoint (bad magic)")
        (version,) = struct.unpack_from("<I", mv, 4)
        if version == 1:  # legacy, no checksum to verify
            offset = _V1_PAYLOAD_OFFSET
        elif version == _FORMAT_VERSION:
            (expected,) = struct.unpack_from("<I", mv, 8)
            offset = _V2_PAYLOAD_OFFSET
            actual = zlib.crc32(mv[offset:])
            if actual != expected:
                raise IntegrityError(
                    f"Viper checkpoint checksum mismatch: header says "
                    f"{expected:#010x}, payload hashes to {actual:#010x}",
                    expected=expected,
                    actual=actual,
                )
        else:
            raise StorageError(f"unsupported Viper checkpoint version {version}")
        state, _ = _unpack_tensors(mv, offset, copy=copy)
        return state


class H5LikeSerializer(Serializer):
    """Baseline emulating h5py's file structure and costs.

    Structural overheads modeled after HDF5:

    - a 512-byte superblock and root-group header;
    - per-dataset object headers + attribute blocks (~320 B each);
    - chunk/alignment padding folded into ``bytes_overhead_factor``.
    """

    name = "h5py"
    fixed_overhead = 0.150
    per_tensor_overhead = 0.003
    bytes_overhead_factor = 1.12

    _SUPERBLOCK = 512
    _PER_DATASET_HEADER = 320

    def dumps(self, state):
        return b"".join(self.dump_chunks(state))

    def dump_chunks(self, state):
        if not state:
            raise StorageError("refusing to serialize an empty state dict")
        yield _H5_MAGIC + b"\x00" * (self._SUPERBLOCK - 4)
        yield struct.pack("<I", len(state))
        # Attribute/object-header filler per dataset, as HDF5 would store
        # creation order, fill values, chunking info, etc.
        yield b"\x00" * (self._PER_DATASET_HEADER * len(state))
        yield from _tensor_pieces(state)

    def loads(self, blob, *, copy: bool = True):
        mv = memoryview(blob)
        if mv[:4] != _H5_MAGIC:
            raise StorageError("not an h5py-like checkpoint (bad magic)")
        (count,) = struct.unpack_from("<I", mv, self._SUPERBLOCK)
        offset = self._SUPERBLOCK + 4 + self._PER_DATASET_HEADER * count
        state, _ = _unpack_tensors(mv, offset, copy=copy)
        return state


def get_serializer(name: str) -> Serializer:
    """Resolve a serializer by name."""
    table = {"viper": ViperSerializer, "h5py": H5LikeSerializer}
    try:
        return table[name]()
    except KeyError:
        raise StorageError(f"unknown serializer {name!r}") from None
