"""Checkpoint serializers: Viper's compact format and an h5py-like baseline.

The paper's Figure 8 compares ``h5py`` (the baseline every CANDLE app uses)
against Viper's own format, noting that Viper "only writes the model weights
and closely related metadata into the file, avoiding some unnecessary
metadata added by h5py".  We reproduce both:

- :class:`ViperSerializer` — a tight binary layout: magic, version, tensor
  count, then per tensor ``name | dtype | shape | raw bytes``.
- :class:`H5LikeSerializer` — the same payload plus the structural overhead
  an HDF5 file carries: a superblock, per-dataset object headers and
  attribute blocks, and chunk padding.  The overhead constants are small
  but per-tensor, which is exactly why many-tensor models (PtychoNN) pay
  more on the file path.

Each serializer also exposes a *timing* surface (``fixed_overhead`` /
``per_tensor_overhead``) the transfer engine charges on serialize and
deserialize; the h5py-like baseline is slower per tensor.
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple

import numpy as np

from repro.errors import StorageError

__all__ = [
    "Serializer",
    "ViperSerializer",
    "H5LikeSerializer",
    "state_dict_nbytes",
]

_VIPER_MAGIC = b"VIPR"
_H5_MAGIC = b"\x89HDF"
_FORMAT_VERSION = 1


def state_dict_nbytes(state: Dict[str, np.ndarray]) -> int:
    """Raw payload size of a state dict in bytes."""
    return sum(int(t.nbytes) for t in state.values())


class Serializer:
    """Contract: state dict <-> bytes, plus timing-model constants."""

    name = "serializer"
    # Seconds charged once per (de)serialize, modelling library setup cost.
    fixed_overhead = 0.0
    # Seconds charged per tensor, modelling per-dataset metadata handling.
    per_tensor_overhead = 0.0
    # Multiplier applied to the payload size on the wire / on disk.
    bytes_overhead_factor = 1.0

    def dumps(self, state: Dict[str, np.ndarray]) -> bytes:
        raise NotImplementedError

    def loads(self, blob: bytes) -> Dict[str, np.ndarray]:
        raise NotImplementedError

    # -- timing model ---------------------------------------------------
    def serialize_seconds(self, ntensors: int) -> float:
        return self.fixed_overhead + self.per_tensor_overhead * ntensors

    def deserialize_seconds(self, ntensors: int) -> float:
        return self.fixed_overhead + self.per_tensor_overhead * ntensors

    def wire_bytes(self, payload_bytes: int) -> int:
        """Bytes actually written/transferred for a raw payload size."""
        return int(payload_bytes * self.bytes_overhead_factor)


def _pack_tensors(state: Dict[str, np.ndarray]) -> bytes:
    chunks = [struct.pack("<I", len(state))]
    for name in sorted(state):
        original = np.asarray(state[name])
        # ascontiguousarray promotes 0-d to 1-d; keep the true shape.
        shape = original.shape
        tensor = np.ascontiguousarray(original)
        name_b = name.encode("utf-8")
        dtype_b = tensor.dtype.str.encode("ascii")
        chunks.append(struct.pack("<H", len(name_b)))
        chunks.append(name_b)
        chunks.append(struct.pack("<B", len(dtype_b)))
        chunks.append(dtype_b)
        chunks.append(struct.pack("<B", len(shape)))
        for dim in shape:
            chunks.append(struct.pack("<Q", dim))
        raw = tensor.tobytes()
        chunks.append(struct.pack("<Q", len(raw)))
        chunks.append(raw)
    return b"".join(chunks)


def _unpack_tensors(blob: bytes, offset: int) -> Tuple[Dict[str, np.ndarray], int]:
    (count,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    state: Dict[str, np.ndarray] = {}
    for _ in range(count):
        (name_len,) = struct.unpack_from("<H", blob, offset)
        offset += 2
        name = blob[offset : offset + name_len].decode("utf-8")
        offset += name_len
        (dtype_len,) = struct.unpack_from("<B", blob, offset)
        offset += 1
        dtype = np.dtype(blob[offset : offset + dtype_len].decode("ascii"))
        offset += dtype_len
        (ndim,) = struct.unpack_from("<B", blob, offset)
        offset += 1
        shape = []
        for _ in range(ndim):
            (dim,) = struct.unpack_from("<Q", blob, offset)
            shape.append(dim)
            offset += 8
        (raw_len,) = struct.unpack_from("<Q", blob, offset)
        offset += 8
        raw = blob[offset : offset + raw_len]
        offset += raw_len
        tensor = np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
        state[name] = tensor
    return state, offset


class ViperSerializer(Serializer):
    """Viper's compact checkpoint format (weights + minimal metadata)."""

    name = "viper"
    fixed_overhead = 0.010
    per_tensor_overhead = 0.0002
    bytes_overhead_factor = 1.005  # headers only

    def dumps(self, state):
        if not state:
            raise StorageError("refusing to serialize an empty state dict")
        header = _VIPER_MAGIC + struct.pack("<I", _FORMAT_VERSION)
        return header + _pack_tensors(state)

    def loads(self, blob):
        if blob[:4] != _VIPER_MAGIC:
            raise StorageError("not a Viper checkpoint (bad magic)")
        (version,) = struct.unpack_from("<I", blob, 4)
        if version != _FORMAT_VERSION:
            raise StorageError(f"unsupported Viper checkpoint version {version}")
        state, _ = _unpack_tensors(blob, 8)
        return state


class H5LikeSerializer(Serializer):
    """Baseline emulating h5py's file structure and costs.

    Structural overheads modeled after HDF5:

    - a 512-byte superblock and root-group header;
    - per-dataset object headers + attribute blocks (~320 B each);
    - chunk/alignment padding folded into ``bytes_overhead_factor``.
    """

    name = "h5py"
    fixed_overhead = 0.150
    per_tensor_overhead = 0.003
    bytes_overhead_factor = 1.12

    _SUPERBLOCK = 512
    _PER_DATASET_HEADER = 320

    def dumps(self, state):
        if not state:
            raise StorageError("refusing to serialize an empty state dict")
        superblock = _H5_MAGIC + b"\x00" * (self._SUPERBLOCK - 4)
        body = _pack_tensors(state)
        # Attribute/object-header filler per dataset, as HDF5 would store
        # creation order, fill values, chunking info, etc.
        filler = b"\x00" * (self._PER_DATASET_HEADER * len(state))
        return superblock + struct.pack("<I", len(state)) + filler + body

    def loads(self, blob):
        if blob[:4] != _H5_MAGIC:
            raise StorageError("not an h5py-like checkpoint (bad magic)")
        (count,) = struct.unpack_from("<I", blob, self._SUPERBLOCK)
        offset = self._SUPERBLOCK + 4 + self._PER_DATASET_HEADER * count
        state, _ = _unpack_tensors(blob, offset)
        return state


def get_serializer(name: str) -> Serializer:
    """Resolve a serializer by name."""
    table = {"viper": ViperSerializer, "h5py": H5LikeSerializer}
    try:
        return table[name]()
    except KeyError:
        raise StorageError(f"unknown serializer {name!r}") from None
