"""Optimizers: SGD (the CANDLE Pilot1 choice) and Adam (PtychoNN's).

An optimizer owns per-parameter slot state keyed the same way the model's
state dict is; checkpoints can therefore optionally capture optimizer state
alongside the weights (paper §2, "DNN Model Checkpointing").
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base: apply an update given named params and named grads.

    ``decay`` applies Keras-style inverse-time learning-rate decay:
    ``lr_t = lr / (1 + decay * t)`` with ``t`` the update count.  The
    CANDLE-style workloads use it so their loss curves plateau the way
    the paper's learning-curve predictor assumes.
    """

    def __init__(self, lr: float, decay: float = 0.0):
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        if decay < 0:
            raise ConfigurationError(f"decay must be non-negative, got {decay}")
        self.lr = lr
        self.decay = decay
        self.iterations = 0

    @property
    def current_lr(self) -> float:
        return self.lr / (1.0 + self.decay * self.iterations)

    def step(
        self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]
    ) -> None:
        self.iterations += 1
        self._apply(params, grads)

    def _apply(self, params, grads) -> None:
        raise NotImplementedError

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Slot variables for checkpointing; empty for stateless updates."""
        return {}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore slot variables captured by :meth:`state_dict`."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.0, decay: float = 0.0):
        super().__init__(lr, decay)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: Dict[str, np.ndarray] = {}

    def _apply(self, params, grads):
        lr = self.current_lr
        for key, grad in grads.items():
            if self.momentum > 0.0:
                v = self._velocity.get(key)
                if v is None:
                    v = np.zeros_like(params[key])
                v = self.momentum * v - lr * grad
                self._velocity[key] = v
                params[key] += v
            else:
                params[key] -= lr * grad

    def state_dict(self):
        return {f"momentum/{k}": v.copy() for k, v in self._velocity.items()}

    def load_state_dict(self, state):
        self._velocity = {
            k[len("momentum/"):]: np.array(v)
            for k, v in state.items()
            if k.startswith("momentum/")
        }


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        decay: float = 0.0,
    ):
        super().__init__(lr, decay)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}

    def _apply(self, params, grads):
        t = self.iterations
        lr = self.current_lr
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**t
        bias2 = 1.0 - b2**t
        for key, grad in grads.items():
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = np.zeros_like(params[key])
                v = np.zeros_like(params[key])
            m = b1 * m + (1.0 - b1) * grad
            v = b2 * v + (1.0 - b2) * (grad * grad)
            self._m[key] = m
            self._v[key] = v
            m_hat = m / bias1
            v_hat = v / bias2
            params[key] -= lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self):
        out = {f"adam_m/{k}": v.copy() for k, v in self._m.items()}
        out.update({f"adam_v/{k}": v.copy() for k, v in self._v.items()})
        return out

    def load_state_dict(self, state):
        self._m = {
            k[len("adam_m/"):]: np.array(v)
            for k, v in state.items()
            if k.startswith("adam_m/")
        }
        self._v = {
            k[len("adam_v/"):]: np.array(v)
            for k, v in state.items()
            if k.startswith("adam_v/")
        }
