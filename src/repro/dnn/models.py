"""Sequential model container with a Keras-style ``fit``.

The model owns named parameters (``<layer>/<param>``), a forward/backward
pipeline across its layers, a ``state_dict`` for checkpointing, and the
training loop in :meth:`Sequential.fit` that drives the callback list —
the hook Viper's :class:`~repro.core.callback.CheckpointCallback` plugs
into, exactly as the paper attaches its callback to ``model.fit()``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.dnn.layers import Layer
from repro.dnn.losses import Loss
from repro.dnn.optimizers import Optimizer
from repro.dnn.training import Callback, History, run_fit_loop

__all__ = ["Sequential"]


class Sequential:
    """A linear stack of layers.

    Usage mirrors Keras closely enough that the paper's workflow pseudocode
    maps one-to-one::

        model = Sequential([...], input_shape=(L, C), name="tc1")
        model.compile(SGD(0.01), CrossEntropyLoss())
        model.fit(x, y, epochs=5, batch_size=20, callbacks=[ckpt_cb])
    """

    def __init__(
        self,
        layers: Sequence[Layer],
        input_shape: Tuple[int, ...],
        name: str = "model",
        seed: int = 1234,
    ):
        if not layers:
            raise ConfigurationError("model needs at least one layer")
        self.name = name
        self.layers: List[Layer] = list(layers)
        self.input_shape = tuple(input_shape)
        self.optimizer: Optional[Optimizer] = None
        self.loss: Optional[Loss] = None
        self.stop_training = False
        self._rng = np.random.default_rng(seed)
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        shape = self.input_shape
        seen = set()
        for layer in self.layers:
            if layer.name in seen:
                raise ConfigurationError(f"duplicate layer name {layer.name!r}")
            seen.add(layer.name)
            layer.build(shape, self._rng)
            shape = layer.output_shape(shape)
        self.output_shape = shape

    def compile(self, optimizer: Optimizer, loss: Loss) -> None:
        self.optimizer = optimizer
        self.loss = loss

    # ------------------------------------------------------------------
    # Parameters / checkpoint surface
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Named copy of every parameter (the checkpoint payload)."""
        out: Dict[str, np.ndarray] = {}
        for layer in self.layers:
            for pname, value in layer.params.items():
                out[f"{layer.name}/{pname}"] = value.copy()
        return out

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters in place; shapes must match exactly."""
        own = {
            f"{layer.name}/{p}": (layer, p)
            for layer in self.layers
            for p in layer.params
        }
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise ConfigurationError(
                f"state dict mismatch for {self.name!r}: "
                f"missing={sorted(missing)[:3]} extra={sorted(extra)[:3]}"
            )
        for key, value in state.items():
            layer, pname = own[key]
            if layer.params[pname].shape != value.shape:
                raise ConfigurationError(
                    f"shape mismatch for {key}: "
                    f"{layer.params[pname].shape} vs {value.shape}"
                )
            layer.params[pname][...] = value

    def freeze(self, prefix: str = "") -> int:
        """Mark layers whose name starts with ``prefix`` as non-trainable
        (all layers when empty); returns how many were frozen."""
        count = 0
        for layer in self.layers:
            if layer.name.startswith(prefix):
                layer.trainable = False
                count += 1
        return count

    @property
    def num_params(self) -> int:
        return sum(layer.num_params for layer in self.layers)

    @property
    def num_tensors(self) -> int:
        return sum(len(layer.params) for layer in self.layers)

    def summary(self) -> str:
        lines = [f"Model: {self.name}  (input {self.input_shape})"]
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
            lines.append(
                f"  {layer.name:<28s} out={str(shape):<20s} "
                f"params={layer.num_params}"
            )
        lines.append(f"  total params: {self.num_params}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        outs = []
        for start in range(0, x.shape[0], batch_size):
            outs.append(self.forward(x[start : start + batch_size], training=False))
        return np.concatenate(outs, axis=0)

    def train_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        """One optimizer step; returns the batch training loss.

        The batch predictions are kept on ``last_batch_pred`` so the
        training loop can derive secondary metrics (accuracy) without a
        second forward pass.
        """
        if self.optimizer is None or self.loss is None:
            raise ConfigurationError(f"model {self.name!r} is not compiled")
        pred = self.forward(x, training=True)
        self.last_batch_pred = pred
        loss_value = self.loss.forward(pred, y)
        grad = self.loss.backward(pred, y)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        params: Dict[str, np.ndarray] = {}
        grads: Dict[str, np.ndarray] = {}
        for layer in self.layers:
            if not layer.trainable:
                continue
            for pname in layer.params:
                key = f"{layer.name}/{pname}"
                params[key] = layer.params[pname]
                grads[key] = layer.grads[pname]
        self.optimizer.step(params, grads)
        return loss_value

    def evaluate(self, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> float:
        """Mean loss over a dataset (no parameter updates)."""
        if self.loss is None:
            raise ConfigurationError(f"model {self.name!r} is not compiled")
        total = 0.0
        count = 0
        for start in range(0, x.shape[0], batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            pred = self.forward(xb, training=False)
            total += self.loss.forward(pred, yb) * xb.shape[0]
            count += xb.shape[0]
        return total / max(count, 1)

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 1,
        batch_size: int = 32,
        callbacks: Optional[Iterable[Callback]] = None,
        shuffle: bool = True,
        seed: int = 0,
        verbose: bool = False,
    ) -> History:
        """Mini-batch training loop with Keras-style callbacks.

        Callbacks receive iteration-granular ``on_batch_end(iteration,
        logs)`` calls with ``logs["loss"]`` — the hook the paper's
        checkpoint callback uses to track training quality per iteration.
        """
        return run_fit_loop(
            self,
            x,
            y,
            epochs=epochs,
            batch_size=batch_size,
            callbacks=list(callbacks or []),
            shuffle=shuffle,
            seed=seed,
            verbose=verbose,
        )
