"""Full training-state checkpoints: weights + optimizer + progress.

The paper (§2, "DNN Model Checkpointing") notes a checkpoint "typically
includ[es] model parameters (i.e., weights and bias) and potentially
containing the optimizer state, and other intermediate states for
resuming training".  Model updates to the consumer ship weights only
(:meth:`Sequential.state_dict`), but the fault-tolerance path — the
background flush to the PFS — can carry the full training state so a
crashed producer resumes exactly where it stopped.

The packed representation stays a flat ``Dict[str, np.ndarray]`` so the
existing serializers, tier stores, and transfer strategies all apply
unchanged; reserved key prefixes separate the sections:

- ``model/<layer>/<param>`` — the weights;
- ``optim/<slot>/<layer>/<param>`` — optimizer slot variables;
- ``progress/...`` — scalar counters (iteration, optimizer steps).
"""

from __future__ import annotations

import json
from typing import Dict

import numpy as np

from repro.errors import StorageError

__all__ = ["pack_training_state", "unpack_training_state", "is_full_state"]

_MODEL = "model/"
_OPTIM = "optim/"
_RNG = "rng/"
_PROGRESS_ITER = "progress/iteration"
_PROGRESS_STEPS = "progress/optimizer_steps"


def _encode_rng(rng: np.random.Generator) -> np.ndarray:
    """Bit-generator state as a uint8 array (JSON bytes)."""
    return np.frombuffer(
        json.dumps(rng.bit_generator.state).encode("utf-8"), dtype=np.uint8
    ).copy()


def _decode_rng(blob: np.ndarray) -> dict:
    return json.loads(bytes(blob.tobytes()).decode("utf-8"))


def pack_training_state(model, optimizer, iteration: int) -> Dict[str, np.ndarray]:
    """Capture everything needed to resume training at ``iteration``."""
    if iteration < 0:
        raise StorageError(f"negative iteration {iteration}")
    state: Dict[str, np.ndarray] = {}
    for key, value in model.state_dict().items():
        state[_MODEL + key] = value
    for key, value in optimizer.state_dict().items():
        state[_OPTIM + key] = np.asarray(value)
    # Stochastic layers (Dropout) advance private RNGs during training;
    # exact resume needs their bit-generator state too.
    for layer in getattr(model, "layers", ()):
        rng = getattr(layer, "_rng", None)
        if isinstance(rng, np.random.Generator):
            state[_RNG + layer.name] = _encode_rng(rng)
    state[_PROGRESS_ITER] = np.asarray(iteration, dtype=np.int64)
    state[_PROGRESS_STEPS] = np.asarray(optimizer.iterations, dtype=np.int64)
    return state


def is_full_state(state: Dict[str, np.ndarray]) -> bool:
    """True when ``state`` is a packed training state (not bare weights)."""
    return _PROGRESS_ITER in state


def unpack_training_state(
    state: Dict[str, np.ndarray], model, optimizer
) -> int:
    """Restore model weights and optimizer slots; returns the iteration.

    The optimizer's update counter is restored too, so schedules that
    depend on it (inverse-time lr decay, Adam bias correction) continue
    seamlessly.
    """
    if not is_full_state(state):
        raise StorageError("not a full training state (missing progress keys)")
    model_state = {
        key[len(_MODEL):]: value
        for key, value in state.items()
        if key.startswith(_MODEL)
    }
    if not model_state:
        raise StorageError("training state has no model section")
    model.load_state_dict(model_state)
    optim_state = {
        key[len(_OPTIM):]: value
        for key, value in state.items()
        if key.startswith(_OPTIM)
    }
    optimizer.load_state_dict(optim_state)
    optimizer.iterations = int(state[_PROGRESS_STEPS])
    for layer in getattr(model, "layers", ()):
        blob = state.get(_RNG + layer.name)
        rng = getattr(layer, "_rng", None)
        if blob is not None and isinstance(rng, np.random.Generator):
            rng.bit_generator.state = _decode_rng(blob)
    return int(state[_PROGRESS_ITER])
