"""Neural-network layers with correct forward/backward passes.

Conventions:

- Data layout is channels-last: 1-D inputs are ``(N, L, C)``, 2-D inputs
  are ``(N, H, W, C)`` — matching the TensorFlow models the paper uses.
- Each layer exposes ``forward(x, training)`` and ``backward(dout)``;
  ``backward`` stores parameter gradients on the layer and returns the
  gradient w.r.t. the input.
- Parameters are named ``<layer_name>/<param>`` in the model state dict.

The convolutions are vectorized with ``sliding_window_view`` + ``tensordot``
(views, not copies, per the domain guides); the input-gradient loop runs
over the kernel taps only (a handful of iterations).
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import ConfigurationError
from repro.dnn import initializers

__all__ = [
    "Layer",
    "Dense",
    "Conv1D",
    "Conv2D",
    "MaxPool1D",
    "MaxPool2D",
    "UpSampling2D",
    "GlobalAveragePooling1D",
    "Flatten",
    "Dropout",
    "ReLU",
    "Sigmoid",
    "Tanh",
]

_counters = itertools.count(1)


class Layer:
    """Base class: parameter registry plus the forward/backward contract."""

    def __init__(self, name: Optional[str] = None):
        self.name = name or f"{type(self).__name__.lower()}_{next(_counters)}"
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}
        self.built = False
        # Frozen layers still propagate gradients but take no updates
        # (the transfer-learning / fine-tuning scenario of EvoStore).
        self.trainable = True

    # -- lifecycle ------------------------------------------------------
    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        """Allocate parameters once the input shape is known."""
        self.built = True

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Per-sample output shape given per-sample input shape."""
        return input_shape

    # -- compute --------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dout: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- utilities ------------------------------------------------------
    @property
    def num_params(self) -> int:
        return sum(int(p.size) for p in self.params.values())

    def zero_grads(self) -> None:
        for k in self.params:
            self.grads[k] = np.zeros_like(self.params[k])


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b`` over the last axis."""

    def __init__(self, units: int, name: Optional[str] = None):
        super().__init__(name)
        if units <= 0:
            raise ConfigurationError(f"{self.name}: units must be positive")
        self.units = units
        self._x: Optional[np.ndarray] = None

    def build(self, input_shape, rng):
        (in_features,) = input_shape
        self.params["W"] = initializers.glorot_uniform(
            rng, (in_features, self.units), in_features, self.units
        )
        self.params["b"] = initializers.zeros((self.units,))
        super().build(input_shape, rng)

    def output_shape(self, input_shape):
        return (self.units,)

    def forward(self, x, training=False):
        self._x = x
        return x @ self.params["W"] + self.params["b"]

    def backward(self, dout):
        x = self._x
        self.grads["W"] = x.T @ dout
        self.grads["b"] = dout.sum(axis=0)
        return dout @ self.params["W"].T


class Conv1D(Layer):
    """1-D convolution, channels-last ``(N, L, C)``, stride 1.

    ``padding`` is ``"valid"`` or ``"same"`` (odd kernel sizes only for
    ``"same"``), matching the CANDLE Pilot1 architectures.
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        padding: str = "valid",
        name: Optional[str] = None,
    ):
        super().__init__(name)
        if filters <= 0 or kernel_size <= 0:
            raise ConfigurationError(f"{self.name}: filters/kernel must be positive")
        if padding not in ("valid", "same"):
            raise ConfigurationError(f"{self.name}: unknown padding {padding!r}")
        if padding == "same" and kernel_size % 2 == 0:
            raise ConfigurationError(f"{self.name}: 'same' needs odd kernel size")
        self.filters = filters
        self.kernel_size = kernel_size
        self.padding = padding
        self._windows: Optional[np.ndarray] = None
        self._in_len = 0

    def _pad(self) -> int:
        return (self.kernel_size - 1) // 2 if self.padding == "same" else 0

    def build(self, input_shape, rng):
        length, channels = input_shape
        k = self.kernel_size
        self.params["W"] = initializers.he_normal(
            rng, (k, channels, self.filters), fan_in=k * channels
        )
        self.params["b"] = initializers.zeros((self.filters,))
        super().build(input_shape, rng)

    def output_shape(self, input_shape):
        length, _channels = input_shape
        if self.padding == "same":
            return (length, self.filters)
        return (length - self.kernel_size + 1, self.filters)

    def forward(self, x, training=False):
        pad = self._pad()
        self._in_len = x.shape[1]
        if pad:
            x = np.pad(x, ((0, 0), (pad, pad), (0, 0)))
        # windows: (N, L_out, C, K) — a strided view, no copy.
        windows = sliding_window_view(x, self.kernel_size, axis=1)
        self._windows = windows
        # y[n, i, o] = sum_{c,k} windows[n, i, c, k] * W[k, c, o]
        return (
            np.tensordot(windows, self.params["W"], axes=([3, 2], [0, 1]))
            + self.params["b"]
        )

    def backward(self, dout):
        windows = self._windows
        k = self.kernel_size
        # dW[k, c, o] = sum_{n,i} windows[n, i, c, k] * dout[n, i, o]
        self.grads["W"] = np.tensordot(
            windows, dout, axes=([0, 1], [0, 1])
        ).transpose(1, 0, 2)
        self.grads["b"] = dout.sum(axis=(0, 1))
        # dx_padded[n, i + t, c] += dout[n, i, o] * W[t, c, o]
        pad = self._pad()
        n, l_out, _ = dout.shape
        padded_len = self._in_len + 2 * pad
        dx = np.zeros((n, padded_len, windows.shape[2]), dtype=dout.dtype)
        w = self.params["W"]
        for t in range(k):
            dx[:, t : t + l_out, :] += dout @ w[t].T
        if pad:
            dx = dx[:, pad : padded_len - pad, :]
        return dx


class Conv2D(Layer):
    """2-D convolution, channels-last ``(N, H, W, C)``, stride 1."""

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        padding: str = "same",
        name: Optional[str] = None,
    ):
        super().__init__(name)
        if filters <= 0 or kernel_size <= 0:
            raise ConfigurationError(f"{self.name}: filters/kernel must be positive")
        if padding not in ("valid", "same"):
            raise ConfigurationError(f"{self.name}: unknown padding {padding!r}")
        if padding == "same" and kernel_size % 2 == 0:
            raise ConfigurationError(f"{self.name}: 'same' needs odd kernel size")
        self.filters = filters
        self.kernel_size = kernel_size
        self.padding = padding
        self._windows: Optional[np.ndarray] = None
        self._in_hw: Tuple[int, int] = (0, 0)

    def _pad(self) -> int:
        return (self.kernel_size - 1) // 2 if self.padding == "same" else 0

    def build(self, input_shape, rng):
        _h, _w, channels = input_shape
        k = self.kernel_size
        self.params["W"] = initializers.he_normal(
            rng, (k, k, channels, self.filters), fan_in=k * k * channels
        )
        self.params["b"] = initializers.zeros((self.filters,))
        super().build(input_shape, rng)

    def output_shape(self, input_shape):
        h, w, _c = input_shape
        if self.padding == "same":
            return (h, w, self.filters)
        k = self.kernel_size
        return (h - k + 1, w - k + 1, self.filters)

    def forward(self, x, training=False):
        pad = self._pad()
        self._in_hw = (x.shape[1], x.shape[2])
        if pad:
            x = np.pad(x, ((0, 0), (pad, pad), (pad, pad), (0, 0)))
        k = self.kernel_size
        # (N, H_out, W_out, C, K, K) strided view.
        windows = sliding_window_view(x, (k, k), axis=(1, 2))
        self._windows = windows
        # y[n,i,j,o] = sum_{c,p,q} win[n,i,j,c,p,q] * W[p,q,c,o]
        return (
            np.tensordot(windows, self.params["W"], axes=([4, 5, 3], [0, 1, 2]))
            + self.params["b"]
        )

    def backward(self, dout):
        windows = self._windows
        k = self.kernel_size
        # dW[p,q,c,o] = sum_{n,i,j} win[n,i,j,c,p,q] * dout[n,i,j,o]
        dw = np.tensordot(windows, dout, axes=([0, 1, 2], [0, 1, 2]))
        self.grads["W"] = dw.transpose(1, 2, 0, 3)
        self.grads["b"] = dout.sum(axis=(0, 1, 2))
        pad = self._pad()
        n, h_out, w_out, _ = dout.shape
        h_in, w_in = self._in_hw
        dx = np.zeros(
            (n, h_in + 2 * pad, w_in + 2 * pad, windows.shape[3]), dtype=dout.dtype
        )
        w = self.params["W"]
        for p in range(k):
            for q in range(k):
                dx[:, p : p + h_out, q : q + w_out, :] += dout @ w[p, q].T
        if pad:
            dx = dx[:, pad : pad + h_in, pad : pad + w_in, :]
        return dx


class MaxPool1D(Layer):
    """Max pooling with pool size == stride; truncates a ragged tail."""

    def __init__(self, pool_size: int = 2, name: Optional[str] = None):
        super().__init__(name)
        if pool_size <= 0:
            raise ConfigurationError(f"{self.name}: pool_size must be positive")
        self.pool_size = pool_size
        self._argmax: Optional[np.ndarray] = None
        self._in_shape: Tuple[int, ...] = ()

    def output_shape(self, input_shape):
        length, channels = input_shape
        return (length // self.pool_size, channels)

    def forward(self, x, training=False):
        p = self.pool_size
        n, length, c = x.shape
        l_out = length // p
        self._in_shape = x.shape
        view = x[:, : l_out * p, :].reshape(n, l_out, p, c)
        self._argmax = view.argmax(axis=2)
        return view.max(axis=2)

    def backward(self, dout):
        p = self.pool_size
        n, l_out, c = dout.shape
        dx = np.zeros(self._in_shape, dtype=dout.dtype)
        # Scatter via absolute indices: a reshape of the truncated slice
        # would copy (non-contiguous) and silently drop the gradients.
        ni, li, ci = np.ogrid[:n, :l_out, :c]
        dx[ni, li * p + self._argmax, ci] = dout
        return dx


class MaxPool2D(Layer):
    """2-D max pooling with pool size == stride."""

    def __init__(self, pool_size: int = 2, name: Optional[str] = None):
        super().__init__(name)
        if pool_size <= 0:
            raise ConfigurationError(f"{self.name}: pool_size must be positive")
        self.pool_size = pool_size
        self._argmax: Optional[np.ndarray] = None
        self._in_shape: Tuple[int, ...] = ()

    def output_shape(self, input_shape):
        h, w, c = input_shape
        p = self.pool_size
        return (h // p, w // p, c)

    def forward(self, x, training=False):
        p = self.pool_size
        n, h, w, c = x.shape
        ho, wo = h // p, w // p
        self._in_shape = x.shape
        view = x[:, : ho * p, : wo * p, :].reshape(n, ho, p, wo, p, c)
        flat = view.transpose(0, 1, 3, 2, 4, 5).reshape(n, ho, wo, p * p, c)
        self._argmax = flat.argmax(axis=3)
        return flat.max(axis=3)

    def backward(self, dout):
        p = self.pool_size
        n, ho, wo, c = dout.shape
        dx = np.zeros(self._in_shape, dtype=dout.dtype)
        # The flat argmax indexes a (p, p) window in row-major order;
        # scatter through absolute coordinates (see MaxPool1D.backward).
        rows = self._argmax // p
        cols = self._argmax % p
        ni, hi, wi, ci = np.ogrid[:n, :ho, :wo, :c]
        dx[ni, hi * p + rows, wi * p + cols, ci] = dout
        return dx


class UpSampling2D(Layer):
    """Nearest-neighbour upsampling (the PtychoNN decoder building block)."""

    def __init__(self, factor: int = 2, name: Optional[str] = None):
        super().__init__(name)
        if factor <= 0:
            raise ConfigurationError(f"{self.name}: factor must be positive")
        self.factor = factor

    def output_shape(self, input_shape):
        h, w, c = input_shape
        return (h * self.factor, w * self.factor, c)

    def forward(self, x, training=False):
        f = self.factor
        return x.repeat(f, axis=1).repeat(f, axis=2)

    def backward(self, dout):
        f = self.factor
        n, h, w, c = dout.shape
        return dout.reshape(n, h // f, f, w // f, f, c).sum(axis=(2, 4))


class GlobalAveragePooling1D(Layer):
    """Mean over the length axis: ``(N, L, C) -> (N, C)``."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self._in_len = 0

    def output_shape(self, input_shape):
        _length, channels = input_shape
        return (channels,)

    def forward(self, x, training=False):
        self._in_len = x.shape[1]
        return x.mean(axis=1)

    def backward(self, dout):
        n, c = dout.shape
        return np.broadcast_to(
            dout[:, None, :] / self._in_len, (n, self._in_len, c)
        ).copy()


class Flatten(Layer):
    """Flatten all per-sample axes to one feature vector."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self._in_shape: Tuple[int, ...] = ()

    def output_shape(self, input_shape):
        return (int(np.prod(input_shape)),)

    def forward(self, x, training=False):
        self._in_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dout):
        return dout.reshape(self._in_shape)


class Dropout(Layer):
    """Inverted dropout; identity outside of training."""

    def __init__(self, rate: float, name: Optional[str] = None, seed: int = 0x5EED):
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"{self.name}: rate must be in [0, 1)")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x, training=False):
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * self._mask

    def backward(self, dout):
        if self._mask is None:
            return dout
        return dout * self._mask


class ReLU(Layer):
    """Rectified linear unit: ``max(x, 0)`` elementwise."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x, training=False):
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, dout):
        return dout * self._mask


class Sigmoid(Layer):
    """Logistic sigmoid with a numerically stable piecewise forward."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self._y: Optional[np.ndarray] = None

    def forward(self, x, training=False):
        # Numerically stable piecewise sigmoid.
        y = np.empty_like(x)
        pos = x >= 0
        y[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        y[~pos] = ex / (1.0 + ex)
        self._y = y
        return y

    def backward(self, dout):
        y = self._y
        return dout * y * (1.0 - y)


class Tanh(Layer):
    """Hyperbolic-tangent activation."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self._y: Optional[np.ndarray] = None

    def forward(self, x, training=False):
        self._y = np.tanh(x)
        return self._y

    def backward(self, dout):
        return dout * (1.0 - self._y**2)
