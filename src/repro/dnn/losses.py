"""Loss functions with analytic gradients.

The paper measures inference quality with cross-entropy for the CANDLE
classifiers and mean absolute error for PtychoNN (§5.2); both live here,
plus MSE which the learning-curve fitter uses for model selection.
"""

from __future__ import annotations


import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Loss", "CrossEntropyLoss", "MSELoss", "MAELoss"]


class Loss:
    """Base contract: ``forward`` returns a scalar; ``backward`` the grad."""

    name = "loss"

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> float:
        return self.forward(pred, target)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise stable softmax."""
    z = logits - logits.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)


class CrossEntropyLoss(Loss):
    """Softmax cross-entropy over integer class labels.

    ``pred`` are raw logits ``(N, K)``; ``target`` is either integer labels
    ``(N,)`` or a one-hot matrix ``(N, K)``.  The backward pass returns the
    fused softmax-CE gradient ``(softmax(pred) - onehot) / N``.
    """

    name = "cross_entropy"

    def _onehot(self, target: np.ndarray, k: int) -> np.ndarray:
        if target.ndim == 2:
            return target
        out = np.zeros((target.shape[0], k), dtype=np.float64)
        out[np.arange(target.shape[0]), target.astype(int)] = 1.0
        return out

    def forward(self, pred, target):
        probs = softmax(pred.astype(np.float64))
        onehot = self._onehot(np.asarray(target), pred.shape[-1])
        eps = 1e-12
        per_sample = -(onehot * np.log(probs + eps)).sum(axis=-1)
        return float(per_sample.mean())

    def backward(self, pred, target):
        probs = softmax(pred.astype(np.float64))
        onehot = self._onehot(np.asarray(target), pred.shape[-1])
        return ((probs - onehot) / pred.shape[0]).astype(np.float32)

    @staticmethod
    def accuracy(pred: np.ndarray, target: np.ndarray) -> float:
        labels = target.argmax(axis=-1) if np.asarray(target).ndim == 2 else target
        return float((pred.argmax(axis=-1) == np.asarray(labels)).mean())


class MSELoss(Loss):
    """Mean squared error over all elements."""

    name = "mse"

    def forward(self, pred, target):
        diff = pred.astype(np.float64) - target
        return float(np.mean(diff * diff))

    def backward(self, pred, target):
        n = pred.size
        return (2.0 * (pred.astype(np.float64) - target) / n).astype(np.float32)


class MAELoss(Loss):
    """Mean absolute error (PtychoNN's inference-quality metric)."""

    name = "mae"

    def forward(self, pred, target):
        return float(np.mean(np.abs(pred.astype(np.float64) - target)))

    def backward(self, pred, target):
        n = pred.size
        return (np.sign(pred.astype(np.float64) - target) / n).astype(np.float32)


def get_loss(name: str) -> Loss:
    """Resolve a loss by name (used by app registry / config files)."""
    table = {
        "cross_entropy": CrossEntropyLoss,
        "mse": MSELoss,
        "mae": MAELoss,
    }
    try:
        return table[name]()
    except KeyError:
        raise ConfigurationError(f"unknown loss {name!r}") from None
