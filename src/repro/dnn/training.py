"""Training loop, history, and the Keras-style callback protocol.

``run_fit_loop`` is deliberately framework-shaped: epochs of shuffled
mini-batches, with ``on_train_begin`` / ``on_epoch_begin`` /
``on_batch_end`` / ``on_epoch_end`` / ``on_train_end`` hooks.  Viper's
checkpoint callback (paper Fig. 3) attaches here and observes the
training loss of every iteration, which feeds the learning-curve fit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Callback", "History", "run_fit_loop"]


class Callback:
    """Base callback; subclasses override any subset of the hooks.

    ``model`` is set by the loop before ``on_train_begin``.  The iteration
    counter is global across epochs (1-based after the first batch), which
    is the indexing the paper's Eq. 1 and Algorithms 1–3 use.
    """

    def __init__(self):
        self.model = None

    def set_model(self, model) -> None:
        self.model = model

    def on_train_begin(self, logs: Dict[str, Any]) -> None:
        pass

    def on_epoch_begin(self, epoch: int, logs: Dict[str, Any]) -> None:
        pass

    def on_batch_end(self, iteration: int, logs: Dict[str, Any]) -> None:
        pass

    def on_epoch_end(self, epoch: int, logs: Dict[str, Any]) -> None:
        pass

    def on_train_end(self, logs: Dict[str, Any]) -> None:
        pass


@dataclass
class History(Callback):
    """Records per-iteration and per-epoch training losses (and, for
    classification models, per-iteration training accuracy — the other
    training-quality metric the paper's predictor accepts)."""

    iteration_loss: List[float] = field(default_factory=list)
    iteration_accuracy: List[float] = field(default_factory=list)
    epoch_loss: List[float] = field(default_factory=list)
    epochs_run: int = 0

    def __post_init__(self):
        super().__init__()

    def on_batch_end(self, iteration, logs):
        self.iteration_loss.append(float(logs["loss"]))
        if "accuracy" in logs:
            self.iteration_accuracy.append(float(logs["accuracy"]))

    def on_epoch_end(self, epoch, logs):
        self.epoch_loss.append(float(logs["loss"]))
        self.epochs_run = epoch + 1


def run_fit_loop(
    model,
    x: np.ndarray,
    y: np.ndarray,
    *,
    epochs: int,
    batch_size: int,
    callbacks: List[Callback],
    shuffle: bool = True,
    seed: int = 0,
    verbose: bool = False,
) -> History:
    """Execute the mini-batch training loop; returns the History.

    A :class:`History` callback is always appended so the caller gets the
    full per-iteration loss trace back even with no explicit callbacks.
    """
    if epochs <= 0:
        raise ConfigurationError(f"epochs must be positive, got {epochs}")
    if batch_size <= 0:
        raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
    if x.shape[0] != np.asarray(y).shape[0]:
        raise ConfigurationError(
            f"x and y disagree on sample count: {x.shape[0]} vs "
            f"{np.asarray(y).shape[0]}"
        )
    if x.shape[0] == 0:
        raise ConfigurationError("cannot fit on an empty dataset")

    history = History()
    all_callbacks = list(callbacks) + [history]
    for cb in all_callbacks:
        cb.set_model(model)

    rng = np.random.default_rng(seed)
    n = x.shape[0]
    model.stop_training = False

    logs: Dict[str, Any] = {"n_samples": n, "batch_size": batch_size}
    for cb in all_callbacks:
        cb.on_train_begin(logs)

    iteration = 0
    for epoch in range(epochs):
        order = rng.permutation(n) if shuffle else np.arange(n)
        epoch_logs: Dict[str, Any] = {"epoch": epoch}
        for cb in all_callbacks:
            cb.on_epoch_begin(epoch, epoch_logs)

        losses = []
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            loss_value = model.train_batch(x[idx], y[idx])
            iteration += 1
            losses.append(loss_value)
            batch_logs = {
                "loss": loss_value,
                "epoch": epoch,
                "iteration": iteration,
                "size": len(idx),
            }
            accuracy_fn = getattr(model.loss, "accuracy", None)
            if accuracy_fn is not None:
                batch_logs["accuracy"] = accuracy_fn(
                    model.last_batch_pred, y[idx]
                )
            for cb in all_callbacks:
                cb.on_batch_end(iteration, batch_logs)
            if model.stop_training:
                break

        epoch_logs["loss"] = float(np.mean(losses)) if losses else float("nan")
        epoch_logs["iterations"] = iteration
        for cb in all_callbacks:
            cb.on_epoch_end(epoch, epoch_logs)
        if verbose:  # pragma: no cover - console nicety
            print(f"epoch {epoch + 1}/{epochs}: loss={epoch_logs['loss']:.5f}")
        if model.stop_training:
            break

    for cb in all_callbacks:
        cb.on_train_end({"iterations": iteration})
    return history
