"""ASCII timeline rendering of coupled-run traces.

Turns a :class:`~repro.workflow.trace.Trace` into a compact textual
timeline: one lane per actor, checkpoint/delivery/load/swap events laid
out on simulated time.  Used by the CLI's ``timeline`` command and handy
when debugging schedule or supersede behaviour.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkflowError
from repro.workflow.trace import Trace

__all__ = ["render_timeline", "summarize_trace"]

_LANE_ORDER = ("producer", "engine", "consumer")
_GLYPHS = {
    "ckpt_begin": "C",
    "ckpt_stall_end": "c",
    "delivered": "D",
    "notified": "n",
    "load_begin": "L",
    "load_done": "l",
    "swap": "S",
    "superseded": "x",
    "train_end": "E",
}


def render_timeline(
    trace: Trace,
    width: int = 100,
    t_start: float = 0.0,
    t_end: float = None,
) -> str:
    """Render the trace into fixed-width actor lanes.

    Each event kind maps to a glyph (C ckpt begin, c stall end,
    D delivered, n notified, L/l load begin/done, S swap, x superseded,
    E train end); later events overwrite earlier ones in the same column.
    Iteration events are omitted (they would saturate the lane).
    """
    if width < 10:
        raise WorkflowError("timeline width must be >= 10")
    events = [e for e in trace if e.kind in _GLYPHS]
    if not events:
        return "(empty trace)"
    if t_end is None:
        t_end = max(e.time for e in events)
    span = max(t_end - t_start, 1e-9)

    lanes: Dict[str, List[str]] = {
        actor: [" "] * width for actor in _LANE_ORDER
    }
    for event in events:
        if not t_start <= event.time <= t_end:
            continue
        column = min(int((event.time - t_start) / span * (width - 1)), width - 1)
        lane = lanes.setdefault(event.actor, [" "] * width)
        lane[column] = _GLYPHS[event.kind]

    label_w = max(len(a) for a in lanes) + 2
    lines = [
        f"t = [{t_start:.2f}s .. {t_end:.2f}s]   "
        "C/c ckpt begin/end  D delivered  n notified  L/l load  S swap  "
        "x superseded  E end",
    ]
    for actor in _LANE_ORDER:
        if actor in lanes:
            lines.append(f"{actor:<{label_w}}|{''.join(lanes[actor])}|")
    return "\n".join(lines)


def summarize_trace(trace: Trace) -> str:
    """One-line-per-kind event counts."""
    counts: Dict[str, int] = {}
    for event in trace:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
