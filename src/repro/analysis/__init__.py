"""Result analysis: metrics and paper-style reporting."""

from repro.analysis.metrics import (
    LatencySummary,
    cil_over_requests,
    latency_summary,
    speedup,
)
from repro.analysis.reporting import (
    format_fig8_table,
    format_fig9_table,
    format_fig10_table,
    format_table1,
)

__all__ = [
    "LatencySummary",
    "cil_over_requests",
    "latency_summary",
    "speedup",
    "format_fig8_table",
    "format_fig9_table",
    "format_fig10_table",
    "format_table1",
]
