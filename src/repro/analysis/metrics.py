"""Metric computations shared by tests and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import WorkflowError

__all__ = ["LatencySummary", "latency_summary", "speedup", "cil_over_requests"]


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of repeated latency measurements."""

    mean: float
    std: float
    minimum: float
    maximum: float
    n: int


def latency_summary(samples: Sequence[float]) -> LatencySummary:
    """Mean/std/min/max summary of a latency sample set."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        raise WorkflowError("no latency samples")
    return LatencySummary(
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        n=int(arr.size),
    )


def speedup(baseline: float, improved: float) -> float:
    """Baseline/improved ratio (the paper's "Nx lower latency")."""
    if improved <= 0:
        raise WorkflowError(f"non-positive improved latency {improved}")
    return baseline / improved


def cil_over_requests(
    losses_per_request: Sequence[float],
) -> Tuple[float, float]:
    """(cumulative, mean) inference loss over served requests."""
    arr = np.asarray(list(losses_per_request), dtype=np.float64)
    if arr.size == 0:
        raise WorkflowError("no requests")
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        raise WorkflowError("no scored requests")
    return float(finite.sum()), float(finite.mean())
