"""Figure 8 measurement harness: live update-latency per strategy.

Runs the live save/load path (real serialization and byte movement,
paper-scale virtual sizes) once per configuration the paper's Figure 8
compares, and returns the end-to-end update latency of each.  Shared by
the benchmark suite and the CLI.
"""

from __future__ import annotations

from typing import Dict

from repro.apps import get_app
from repro.core.transfer.handler import ModelWeightsHandler
from repro.core.transfer.strategies import CaptureMode, TransferStrategy
from repro.dnn.serialization import H5LikeSerializer, ViperSerializer
from repro.substrates.cluster.cluster import make_producer_consumer_pair
from repro.substrates.profiles import POLARIS, HardwareProfile

__all__ = ["FIG8_CONFIGS", "measure_latencies"]

#: The six configurations of the paper's Figure 8, in plot order.
FIG8_CONFIGS = (
    ("h5py-baseline", H5LikeSerializer, TransferStrategy.PFS, CaptureMode.SYNC),
    ("viper-pfs", ViperSerializer, TransferStrategy.PFS, CaptureMode.SYNC),
    ("host-sync", ViperSerializer, TransferStrategy.HOST_TO_HOST, CaptureMode.SYNC),
    ("host-async", ViperSerializer, TransferStrategy.HOST_TO_HOST, CaptureMode.ASYNC),
    ("gpu-sync", ViperSerializer, TransferStrategy.GPU_TO_GPU, CaptureMode.SYNC),
    ("gpu-async", ViperSerializer, TransferStrategy.GPU_TO_GPU, CaptureMode.ASYNC),
)


def measure_latencies(
    app_name: str, profile: HardwareProfile = POLARIS, pipeline=None
) -> Dict[str, float]:
    """One live save+load per Figure 8 configuration; returns latencies.

    ``pipeline`` (a :class:`~repro.core.transfer.pipeline.PipelineConfig`)
    switches every configuration onto the chunked transfer path.
    """
    app = get_app(app_name)
    state = app.build_model().state_dict()
    out: Dict[str, float] = {}
    for label, serializer_cls, strategy, mode in FIG8_CONFIGS:
        cluster, producer, consumer = make_producer_consumer_pair(profile)
        handler = ModelWeightsHandler(
            cluster, producer, consumer, profile, serializer=serializer_cls(),
            pipeline=pipeline,
        )
        try:
            result = handler.save_weights(
                app_name,
                state,
                mode=mode,
                strategy=strategy,
                virtual_bytes=app.checkpoint_bytes,
                virtual_tensors=app.checkpoint_tensors,
            )
            handler.drain()
            loaded = handler.load_weights(app_name)
            assert loaded.version == result.version
            out[label] = result.update_latency
        finally:
            handler.close()
    return out
