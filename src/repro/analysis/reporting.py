"""Render experiment results in the paper's figure/table formats.

Each formatter takes the reproduction's measured values (plus the paper's
published numbers for side-by-side comparison) and emits a plain-text
table the benchmark harness prints — the textual equivalent of the
corresponding figure.
"""

from __future__ import annotations

from typing import Dict, Mapping

__all__ = [
    "format_fig8_table",
    "format_fig9_table",
    "format_fig10_table",
    "format_table1",
    "PAPER_FIG8",
    "PAPER_FIG9",
    "PAPER_FIG10",
    "PAPER_TABLE1",
]

# ---------------------------------------------------------------------------
# Published numbers (transcribed from the paper)
# ---------------------------------------------------------------------------

#: Fig. 8: end-to-end model update latency in seconds, per app and strategy.
PAPER_FIG8: Dict[str, Dict[str, float]] = {
    "nt3a": {
        "h5py-baseline": 1.507,
        "viper-pfs": 1.145,
        "host-sync": 0.273,
        "host-async": 0.391,
        "gpu-sync": 0.098,
        "gpu-async": 0.123,
    },
    "tc1": {
        "h5py-baseline": 7.96,
        "viper-pfs": 6.977,
        "host-sync": 2.264,
        "host-async": 2.326,
        "gpu-sync": 0.626,
        "gpu-async": 0.856,
    },
    "ptychonn": {
        "h5py-baseline": 8.342,
        "viper-pfs": 6.886,
        "host-sync": 1.636,
        "host-async": 1.745,
        "gpu-sync": 0.417,
        "gpu-async": 0.541,
    },
}

#: Fig. 9: TC1 @ epoch interval — (CIL, training overhead seconds).
PAPER_FIG9: Dict[str, Dict[str, float]] = {
    "gpu": {"cil": 33_000.0, "overhead": 1.0},
    "host": {"cil": 34_500.0, "overhead": 22.0},
    "pfs": {"cil": 38_500.0, "overhead": 60.0},
}

#: Fig. 10: CIL per app and schedule.
PAPER_FIG10: Dict[str, Dict[str, float]] = {
    "nt3b": {"baseline": 3_800.0, "fixed": 3_600.0, "adaptive": 3_000.0},
    "tc1": {"baseline": 32_800.0, "fixed": 30_600.0, "adaptive": 30_400.0},
    "ptychonn": {"baseline": 66_200.0, "fixed": 52_900.0, "adaptive": 45_100.0},
}

#: Table 1: (num checkpoints, training overhead seconds).
PAPER_TABLE1: Dict[str, Dict[str, Dict[str, float]]] = {
    "nt3b": {
        "baseline": {"ckpts": 7, "overhead": 0.107},
        "fixed": {"ckpts": 49, "overhead": 0.372},
        "adaptive": {"ckpts": 40, "overhead": 0.353},
    },
    "tc1": {
        "baseline": {"ckpts": 16, "overhead": 1.29},
        "fixed": {"ckpts": 128, "overhead": 3.437},
        "adaptive": {"ckpts": 63, "overhead": 2.579},
    },
    "ptychonn": {
        "baseline": {"ckpts": 13, "overhead": 0.39},
        "fixed": {"ckpts": 16, "overhead": 0.48},
        "adaptive": {"ckpts": 6, "overhead": 0.18},
    },
}

_FIG8_ORDER = (
    "h5py-baseline",
    "viper-pfs",
    "host-sync",
    "host-async",
    "gpu-sync",
    "gpu-async",
)


def _rule(width: int) -> str:
    return "-" * width


def format_fig8_table(app: str, measured: Mapping[str, float]) -> str:
    """Fig. 8 (one panel): measured vs paper update latency per strategy."""
    paper = PAPER_FIG8.get(app, {})
    lines = [
        f"Figure 8 [{app}] end-to-end model update latency (s)",
        f"{'strategy':<16}{'measured':>10}{'paper':>10}{'ratio':>8}",
        _rule(44),
    ]
    for key in _FIG8_ORDER:
        if key not in measured:
            continue
        m = measured[key]
        p = paper.get(key, float("nan"))
        ratio = m / p if p and p == p else float("nan")
        lines.append(f"{key:<16}{m:>10.3f}{p:>10.3f}{ratio:>8.2f}")
    base = measured.get("h5py-baseline")
    if base:
        for key, label in (("gpu-async", "GPU"), ("host-async", "Host")):
            if key in measured and measured[key] > 0:
                lines.append(
                    f"speedup vs baseline ({label}): {base / measured[key]:.1f}x"
                )
    return "\n".join(lines)


def format_fig9_table(measured: Mapping[str, Mapping[str, float]]) -> str:
    """Fig. 9: CIL and training overhead per transfer strategy (TC1)."""
    lines = [
        "Figure 9 [tc1 @ epoch interval] transfer-strategy impact",
        f"{'strategy':<8}{'CIL':>12}{'overhead(s)':>12}"
        f"{'paper CIL':>12}{'paper ovh':>10}",
        _rule(54),
    ]
    for key in ("gpu", "host", "pfs"):
        if key not in measured:
            continue
        m = measured[key]
        p = PAPER_FIG9.get(key, {})
        lines.append(
            f"{key:<8}{m['cil']:>12.1f}{m['overhead']:>12.2f}"
            f"{p.get('cil', float('nan')):>12.1f}"
            f"{p.get('overhead', float('nan')):>10.1f}"
        )
    return "\n".join(lines)


def format_fig10_table(app: str, measured: Mapping[str, float]) -> str:
    """Fig. 10 (one panel): CIL per schedule, measured vs paper."""
    paper = PAPER_FIG10.get(app, {})
    lines = [
        f"Figure 10 [{app}] cumulative inference loss by schedule",
        f"{'schedule':<10}{'measured':>12}{'paper':>10}",
        _rule(32),
    ]
    for key in ("baseline", "fixed", "adaptive"):
        if key not in measured:
            continue
        lines.append(
            f"{key:<10}{measured[key]:>12.1f}"
            f"{paper.get(key, float('nan')):>10.1f}"
        )
    return "\n".join(lines)


def format_table1(
    measured: Mapping[str, Mapping[str, Mapping[str, float]]],
) -> str:
    """Table 1: checkpoints and training overhead per app and schedule."""
    lines = [
        "Table 1: checkpoints and training overhead",
        f"{'app':<10}{'schedule':<10}{'ckpts':>7}{'ovh(s)':>9}"
        f"{'paper ckpts':>12}{'paper ovh':>10}",
        _rule(58),
    ]
    for app, per_sched in measured.items():
        paper_app = PAPER_TABLE1.get(app, {})
        for sched in ("baseline", "fixed", "adaptive"):
            if sched not in per_sched:
                continue
            m = per_sched[sched]
            p = paper_app.get(sched, {})
            lines.append(
                f"{app:<10}{sched:<10}{m['ckpts']:>7.0f}{m['overhead']:>9.2f}"
                f"{p.get('ckpts', float('nan')):>12.0f}"
                f"{p.get('overhead', float('nan')):>10.2f}"
            )
    return "\n".join(lines)
