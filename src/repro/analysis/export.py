"""Machine-readable export of experiment results.

The reporting module renders paper-style text tables; this module emits
the same data as JSON so downstream tooling (plotting, regression
tracking across commits) can consume it.  Every document carries a
schema version and the generator name.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Optional

from repro.errors import WorkflowError
from repro.workflow.runner import WorkflowResult

__all__ = ["SCHEMA_VERSION", "workflow_result_to_dict", "export_json"]

SCHEMA_VERSION = 1


def workflow_result_to_dict(result: WorkflowResult) -> Dict[str, Any]:
    """Flatten a coupled-run result into JSON-serializable primitives."""
    return {
        "cil": result.cil,
        "inferences": result.inferences,
        "mean_inference_loss": result.mean_inference_loss,
        "checkpoints": result.checkpoints,
        "superseded": result.superseded,
        "training_overhead_s": result.training_overhead,
        "training_end_time_s": result.training_end_time,
        "switches": [
            {
                "time": s.time,
                "version": s.version,
                "iteration": s.iteration,
                "loss": s.loss,
            }
            for s in result.switches
        ],
        "per_version_inferences": result.per_version_inferences.tolist(),
    }


def export_json(
    path,
    experiment: str,
    payload: Dict[str, Any],
    extra: Optional[Dict[str, Any]] = None,
) -> pathlib.Path:
    """Write one experiment's results as a schema-stamped JSON document.

    ``payload`` values may be plain primitives or
    :class:`~repro.workflow.runner.WorkflowResult` objects (converted
    automatically).  Returns the written path.
    """
    if not experiment:
        raise WorkflowError("experiment name must be non-empty")

    def convert(value):
        if isinstance(value, WorkflowResult):
            return workflow_result_to_dict(value)
        if isinstance(value, dict):
            return {k: convert(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [convert(v) for v in value]
        return value

    document = {
        "schema_version": SCHEMA_VERSION,
        "generator": "repro (Viper reproduction)",
        "experiment": experiment,
        "results": convert(payload),
    }
    if extra:
        document["extra"] = convert(extra)
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return out
