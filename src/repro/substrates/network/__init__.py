"""Interconnect substrate: link models and mpi4py-style channels."""

from repro.substrates.network.links import LinkKind, LinkSpec
from repro.substrates.network.channels import Fabric, Endpoint, Message, Request

__all__ = ["LinkKind", "LinkSpec", "Fabric", "Endpoint", "Message", "Request"]
