"""Point-to-point interconnect performance models.

A :class:`LinkSpec` models one hop of the checkpoint's journey with the
standard alpha-beta law: ``time = latency + nbytes / bandwidth`` plus an
optional per-message overhead (protocol setup, registration of RDMA
buffers).  The Viper transfer engine composes hops:

- GPU-to-GPU: one NVLink/GPUDirect-RDMA hop.
- Host-to-Host: PCIe device-to-host, InfiniBand host-to-host, PCIe
  host-to-device.
- PFS: the tier model in :mod:`repro.substrates.memory.tiers` covers the
  storage side; the fabric hop to the PFS servers is folded into the tier
  bandwidth the way the paper folds it into measured Lustre throughput.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.substrates.cost import Cost, GB

__all__ = ["LinkKind", "LinkSpec", "install_fault_hook", "uninstall_fault_hook"]

# Module-level fault hook.  LinkSpec is a frozen dataclass shared across
# fabrics, so per-instance hooks are impossible; an armed FaultPlan
# installs itself here instead and every timing-law evaluation consults
# it.  ``None`` (the overwhelmingly common case) costs one global read.
_FAULT_HOOK = None


def install_fault_hook(plan) -> None:
    """Route ``link.time:{name}`` sites through ``plan`` (one plan at a time)."""
    global _FAULT_HOOK
    if _FAULT_HOOK is not None and _FAULT_HOOK is not plan:
        raise ConfigurationError("a links fault hook is already installed")
    _FAULT_HOOK = plan


def uninstall_fault_hook(plan) -> None:
    """Remove ``plan``'s hook; a no-op if another plan owns the slot."""
    global _FAULT_HOOK
    if _FAULT_HOOK is plan:
        _FAULT_HOOK = None


class LinkKind(enum.Enum):
    """The interconnect families a checkpoint hop can traverse."""

    NVLINK = "nvlink"            # intra/inter-node GPU-direct path
    PCIE = "pcie"                # GPU <-> host staging copies
    INFINIBAND = "infiniband"    # host <-> host RDMA
    DRAM_COPY = "dram_copy"      # host-memory staging memcpy
    HBM_COPY = "hbm_copy"        # device-memory snapshot memcpy
    LOOPBACK = "loopback"        # same-process testing link


@dataclass(frozen=True)
class LinkSpec:
    """Performance description of one interconnect hop.

    Attributes:
        name: identifier, e.g. ``"polaris.ib"``.
        kind: link family (used for cost labels and selection policy).
        bandwidth: sustained bytes/second for large messages.
        latency: one-way startup latency in seconds.
        per_message_overhead: extra seconds per message (rendezvous,
            memory registration); charged once per transfer.
    """

    name: str
    kind: LinkKind
    bandwidth: float
    latency: float = 0.0
    per_message_overhead: float = 0.0

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise ConfigurationError(f"{self.name}: bandwidth must be positive")
        if self.latency < 0 or self.per_message_overhead < 0:
            raise ConfigurationError(f"{self.name}: latencies must be non-negative")

    def transfer_time(self, nbytes: int, nmessages: int = 1) -> float:
        """Seconds to move ``nbytes`` as ``nmessages`` messages."""
        if nbytes < 0 or nmessages < 1:
            raise ConfigurationError(
                f"transfer_time: nbytes={nbytes}, nmessages={nmessages} out of range"
            )
        seconds = (
            self.latency
            + nbytes / self.bandwidth
            + self.per_message_overhead * nmessages
        )
        if _FAULT_HOOK is not None:
            effect = _FAULT_HOOK.fire(f"link.time:{self.name}")
            seconds *= effect.cost_scale
        return seconds

    def transfer_cost(self, nbytes: int, nmessages: int = 1) -> Cost:
        return Cost.of(
            f"link.{self.kind.value}", self.transfer_time(nbytes, nmessages)
        )

    def pipelined_transfer_time(
        self, nbytes: int, chunk_bytes: int, lanes: int = 1
    ) -> float:
        """Seconds to move ``nbytes`` as pipelined chunks over ``lanes`` lanes.

        The chunked law: the first chunk pays the full startup
        (``latency + per_message_overhead``); later chunks stream behind
        it, their startups issued by ``lanes`` parallel lanes and hidden
        under the in-flight data whenever the transfer is bandwidth-bound::

            T = startup + max(nbytes / bandwidth, (k - 1) * startup / lanes)

        Where per-message overhead would dominate (tiny chunks on a
        chatty link), a real sender falls back to the monolithic send, so
        the law is clamped at :meth:`transfer_time` — it is monotone in
        ``lanes``, never slower than the monolithic law, and equal to it
        at one chunk.
        """
        if nbytes < 0:
            raise ConfigurationError(f"pipelined_transfer_time: nbytes={nbytes}")
        if chunk_bytes <= 0 or lanes < 1:
            raise ConfigurationError(
                f"pipelined_transfer_time: chunk_bytes={chunk_bytes}, "
                f"lanes={lanes} out of range"
            )
        monolithic = self.transfer_time(nbytes)
        nchunks = max(1, -(-nbytes // chunk_bytes))
        startup = self.latency + self.per_message_overhead
        pipelined = startup + max(
            nbytes / self.bandwidth, (nchunks - 1) * startup / lanes
        )
        return min(monolithic, pipelined)

    def pipelined_transfer_cost(
        self, nbytes: int, chunk_bytes: int, lanes: int = 1
    ) -> Cost:
        return Cost.of(
            f"link.{self.kind.value}",
            self.pipelined_transfer_time(nbytes, chunk_bytes, lanes),
        )

    def describe(self) -> str:
        return (
            f"{self.name} [{self.kind.value}] {self.bandwidth / GB:.2f} GB/s "
            f"lat={self.latency * 1e6:.1f} us"
        )
