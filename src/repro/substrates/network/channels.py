"""An in-process message fabric with mpi4py-style point-to-point semantics.

The paper's transfer engine uses ``MPI_Send`` / ``MPI_Recv`` over
vendor-optimized GPU-direct paths.  We reproduce the *interface* — blocking
``send`` / ``recv`` plus non-blocking ``isend`` / ``irecv`` returning
:class:`Request` handles, matched by ``(source, tag)`` — on top of Python
queues, and we reproduce the *performance* via the :class:`LinkSpec` cost
model.  Payloads are real bytes-like buffers: the consumer receives exactly
the bytes the producer sent, so serialization bugs cannot hide behind the
simulation.

Following the mpi4py idiom from the domain guides, the buffer-based API
avoids pickling: callers pass ``bytes`` / ``memoryview`` / numpy buffers and
get ``bytes`` back.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.errors import ChannelClosedError, TransferError
from repro.substrates.cost import Cost
from repro.substrates.network.links import LinkSpec

__all__ = ["Message", "Request", "Endpoint", "Fabric", "ANY_TAG", "ANY_SOURCE"]

ANY_TAG = -1
ANY_SOURCE = "*"


@dataclass
class Message:
    """A delivered message: payload plus envelope and simulated cost."""

    source: str
    dest: str
    tag: int
    payload: bytes
    cost: Cost
    virtual_bytes: int
    seq: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)


class Request:
    """Completion handle for a non-blocking operation (mpi4py style)."""

    def __init__(self, kind: str):
        self._kind = kind
        self._event = threading.Event()
        self._result: Optional[Message] = None
        self._error: Optional[BaseException] = None

    def _complete(self, result: Optional[Message]) -> None:
        self._result = result
        self._event.set()

    def _fail(self, exc: BaseException) -> None:
        self._error = exc
        self._event.set()

    def test(self) -> bool:
        """True if the operation has completed (never blocks)."""
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> Optional[Message]:
        """Block until completion; returns the message for receives."""
        if not self._event.wait(timeout):
            raise TransferError(f"{self._kind} request timed out after {timeout}s")
        if self._error is not None:
            raise self._error
        return self._result


class Endpoint:
    """One addressable party on the fabric (a node-side engine thread)."""

    def __init__(self, fabric: "Fabric", name: str):
        self.fabric = fabric
        self.name = name
        self._inbox: "queue.Queue[Message]" = queue.Queue()
        self._unmatched: list = []  # messages popped but not matched yet
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        dest: str,
        payload,
        tag: int = 0,
        *,
        virtual_bytes: Optional[int] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Cost:
        """Blocking send of a bytes-like payload; returns the link cost.

        "Blocking" in the MPI sense: the call returns once the payload has
        been handed to the fabric (buffered send); the simulated cost is the
        full wire time, which the caller charges to its own timeline.
        """
        return self.fabric.deliver(self.name, dest, payload, tag, virtual_bytes, meta)

    def isend(
        self,
        dest: str,
        payload,
        tag: int = 0,
        *,
        virtual_bytes: Optional[int] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Tuple[Request, Cost]:
        """Non-blocking send; the returned request completes immediately
        after the fabric accepts the message (buffered semantics)."""
        req = Request("isend")
        try:
            cost = self.send(dest, payload, tag, virtual_bytes=virtual_bytes, meta=meta)
        except BaseException as exc:  # propagate through the request too
            req._fail(exc)
            raise
        req._complete(None)
        return req, cost

    def scatter_send(
        self,
        dest: str,
        chunks: Iterable,
        tag: int = 0,
        *,
        virtual_bytes: Optional[int] = None,
        lanes: int = 1,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Cost:
        """Send a payload as a stream of zero-copy chunk messages.

        Each chunk travels as its own message *without* the per-message
        ``bytes(payload)`` wire copy — the receiver sees views over the
        sender's buffers, so (like ``MPI_Isend``) the sender must not
        mutate them until the transfer is reassembled.  The simulated
        cost is the link's pipelined law over the total byte count, not
        a per-chunk sum.  Pair with :meth:`recv_scatter`.
        """
        chunk_list = [memoryview(c) for c in chunks]
        if not chunk_list:
            raise TransferError("scatter_send: no chunks")
        sizes = [c.nbytes for c in chunk_list]
        total = sum(sizes)
        vbytes = total if virtual_bytes is None else int(virtual_bytes)
        link = self.fabric.link_for(self.name, dest)
        max_chunk = max(sizes) if sizes else 1
        cost = link.pipelined_transfer_cost(vbytes, max(1, max_chunk), lanes)
        offset = 0
        for i, chunk in enumerate(chunk_list):
            chunk_meta = dict(meta or {})
            chunk_meta["scatter"] = {
                "index": i,
                "nchunks": len(chunk_list),
                "offset": offset,
                "total_bytes": total,
            }
            # The whole transfer's cost and virtual size ride on chunk 0;
            # later chunks are free (they overlap chunk 0's wire time).
            self.fabric.deliver(
                self.name,
                dest,
                chunk,
                tag,
                virtual_bytes=vbytes if i == 0 else 0,
                meta=chunk_meta,
                copy=False,
                cost_override=cost if i == 0 else Cost.zero(),
            )
            offset += chunk.nbytes
        return cost

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def recv(
        self,
        source: str = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: Optional[float] = None,
    ) -> Message:
        """Blocking receive matched on ``(source, tag)``.

        ``timeout`` bounds the *whole* call: non-matching messages that
        arrive while waiting are parked without resetting the clock, and
        each queue wait gets only the time remaining until the deadline.
        """
        if self._closed:
            raise ChannelClosedError(f"endpoint {self.name!r} is closed")
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            msg = self._match_unlocked(source, tag)
            if msg is not None:
                return msg
        while True:
            if deadline is None:
                remaining = None
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TransferError(
                        f"recv on {self.name!r} timed out waiting for "
                        f"source={source!r} tag={tag}"
                    )
            try:
                msg = self._inbox.get(timeout=remaining)
            except queue.Empty:
                raise TransferError(
                    f"recv on {self.name!r} timed out waiting for "
                    f"source={source!r} tag={tag}"
                ) from None
            if msg is _CLOSE_SENTINEL:
                raise ChannelClosedError(f"endpoint {self.name!r} closed during recv")
            if _matches(msg, source, tag):
                return msg
            with self._lock:
                self._unmatched.append(msg)

    def recv_scatter(
        self,
        source: str = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: Optional[float] = None,
        into=None,
    ) -> Message:
        """Receive and reassemble a :meth:`scatter_send` chunk stream.

        Chunks may arrive interleaved with other traffic and (with
        multiple lanes upstream) out of order; each is copied into its
        slot of the destination buffer — the single full-payload copy of
        the pipelined path.  ``into`` may supply a pre-allocated
        ``bytearray`` (e.g. from a
        :class:`~repro.core.transfer.pipeline.BufferPool`); otherwise one
        is allocated.  Returns a :class:`Message` whose ``payload`` is a
        view of the reassembled bytes and whose ``cost``/``virtual_bytes``
        aggregate the whole transfer.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        buf = None
        seen = 0
        expected = None
        total_bytes = 0
        cost = None
        vbytes = 0
        first = None
        while expected is None or seen < expected:
            remaining = None if deadline is None else deadline - time.monotonic()
            msg = self.recv(source, tag, timeout=remaining)
            scatter = msg.meta.get("scatter")
            if scatter is None:
                raise TransferError(
                    f"recv_scatter on {self.name!r}: got a non-scatter message "
                    f"from {msg.source!r} (tag={msg.tag})"
                )
            if expected is None:
                expected = int(scatter["nchunks"])
                total_bytes = int(scatter["total_bytes"])
                source = msg.source  # lock on to one sender's stream
                if into is None:
                    buf = bytearray(total_bytes)
                else:
                    if len(into) < total_bytes:
                        raise TransferError(
                            f"recv_scatter: buffer of {len(into)} bytes is "
                            f"smaller than payload ({total_bytes})"
                        )
                    buf = into
            offset = int(scatter["offset"])
            view = memoryview(msg.payload)
            memoryview(buf)[offset : offset + view.nbytes] = view
            cost = msg.cost if cost is None else cost + msg.cost
            vbytes += msg.virtual_bytes
            if first is None or scatter["index"] == 0:
                first = msg
            seen += 1
        assert first is not None and cost is not None
        return Message(
            source=first.source,
            dest=self.name,
            tag=first.tag,
            payload=memoryview(buf)[:total_bytes],
            cost=cost,
            virtual_bytes=vbytes,
            seq=first.seq,
            meta={k: v for k, v in first.meta.items() if k != "scatter"},
        )

    def irecv(
        self,
        source: str = ANY_SOURCE,
        tag: int = ANY_TAG,
    ) -> Request:
        """Non-blocking receive; completes when a matching message arrives."""
        req = Request("irecv")

        def _worker():
            try:
                req._complete(self.recv(source, tag))
            except BaseException as exc:
                req._fail(exc)

        threading.Thread(target=_worker, daemon=True, name=f"irecv-{self.name}").start()
        return req

    def probe(self, source: str = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True if a matching message is already available (no dequeue)."""
        with self._lock:
            if any(_matches(m, source, tag) for m in self._unmatched):
                return True
        # Drain the inbox into the unmatched list without blocking.
        while True:
            try:
                msg = self._inbox.get_nowait()
            except queue.Empty:
                return False
            if msg is _CLOSE_SENTINEL:
                self._closed = True
                return False
            with self._lock:
                self._unmatched.append(msg)
            if _matches(msg, source, tag):
                return True

    def _match_unlocked(self, source: str, tag: int) -> Optional[Message]:
        for i, msg in enumerate(self._unmatched):
            if _matches(msg, source, tag):
                return self._unmatched.pop(i)
        return None

    def _enqueue(self, msg) -> None:
        self._inbox.put(msg)

    def close(self) -> None:
        self._closed = True
        self._inbox.put(_CLOSE_SENTINEL)


_CLOSE_SENTINEL = object()


def _matches(msg: Message, source: str, tag: int) -> bool:
    return (source == ANY_SOURCE or msg.source == source) and (
        tag == ANY_TAG or msg.tag == tag
    )


class Fabric:
    """Routes messages between named endpoints over configured links.

    A link is registered per ordered endpoint pair (or with a default);
    :meth:`deliver` copies the payload (modelling the wire), charges the
    link's cost, and enqueues the message at the destination endpoint.
    """

    def __init__(self, default_link: Optional[LinkSpec] = None):
        self._endpoints: Dict[str, Endpoint] = {}
        self._links: Dict[Tuple[str, str], LinkSpec] = {}
        self._default_link = default_link
        self._seq = itertools.count(1)
        self._lock = threading.Lock()
        self.delivered = 0
        self.bytes_moved = 0
        # Fault-injection hook: an armed FaultPlan (duck-typed, see
        # repro.resilience.faults) or None.  One attribute check per
        # deliver() is the entire cost when no plan is armed.
        self.faults = None

    def endpoint(self, name: str) -> Endpoint:
        """Create (or fetch) the endpoint with this name."""
        with self._lock:
            ep = self._endpoints.get(name)
            if ep is None:
                ep = Endpoint(self, name)
                self._endpoints[name] = ep
            return ep

    def connect(self, src: str, dest: str, link: LinkSpec, *, both_ways: bool = True):
        """Associate a link model with the ``src -> dest`` route."""
        with self._lock:
            self._links[(src, dest)] = link
            if both_ways:
                self._links[(dest, src)] = link

    def link_for(self, src: str, dest: str) -> LinkSpec:
        with self._lock:
            link = self._links.get((src, dest), self._default_link)
        if link is None:
            raise TransferError(f"no link configured for route {src!r} -> {dest!r}")
        return link

    def deliver(
        self,
        src: str,
        dest: str,
        payload,
        tag: int,
        virtual_bytes: Optional[int] = None,
        meta: Optional[Dict[str, Any]] = None,
        *,
        copy: bool = True,
        cost_override: Optional[Cost] = None,
    ) -> Cost:
        """Route one message; ``copy=False`` skips the wire copy.

        The zero-copy mode (used by :meth:`Endpoint.scatter_send`) hands
        the receiver a view over the sender's buffer, so the sender must
        not mutate it until receipt — the MPI rendezvous contract.
        ``cost_override`` substitutes a pre-computed (e.g. pipelined)
        cost for the link's per-message law.
        """
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            raise TransferError("payload must be bytes-like (no pickling on the wire)")
        data = bytes(payload) if copy else payload  # the (optional) wire copy
        nbytes = data.nbytes if isinstance(data, memoryview) else len(data)
        vbytes = nbytes if virtual_bytes is None else int(virtual_bytes)
        if cost_override is not None:
            cost = cost_override
        else:
            link = self.link_for(src, dest)
            cost = link.transfer_cost(vbytes)
        if self.faults is not None:
            effect = self.faults.fire(f"link.send:{src}->{dest}", payload=data)
            if effect.payload is not None:
                data = effect.payload  # corrupted wire copy
            if effect.cost_scale != 1.0:
                cost = cost.scaled(effect.cost_scale)  # injected stall
        with self._lock:
            ep = self._endpoints.get(dest)
            seq = next(self._seq)
        if ep is None:
            raise TransferError(f"unknown destination endpoint {dest!r}")
        msg = Message(
            source=src,
            dest=dest,
            tag=tag,
            payload=data,
            cost=cost,
            virtual_bytes=vbytes,
            seq=seq,
            meta=dict(meta or {}),
        )
        ep._enqueue(msg)
        with self._lock:
            self.delivered += 1
            self.bytes_moved += vbytes
        return cost

    def close(self) -> None:
        with self._lock:
            eps = list(self._endpoints.values())
        for ep in eps:
            ep.close()
