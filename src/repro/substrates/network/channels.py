"""An in-process message fabric with mpi4py-style point-to-point semantics.

The paper's transfer engine uses ``MPI_Send`` / ``MPI_Recv`` over
vendor-optimized GPU-direct paths.  We reproduce the *interface* — blocking
``send`` / ``recv`` plus non-blocking ``isend`` / ``irecv`` returning
:class:`Request` handles, matched by ``(source, tag)`` — on top of Python
queues, and we reproduce the *performance* via the :class:`LinkSpec` cost
model.  Payloads are real bytes-like buffers: the consumer receives exactly
the bytes the producer sent, so serialization bugs cannot hide behind the
simulation.

Following the mpi4py idiom from the domain guides, the buffer-based API
avoids pickling: callers pass ``bytes`` / ``memoryview`` / numpy buffers and
get ``bytes`` back.
"""

from __future__ import annotations

import itertools
import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import ChannelClosedError, TransferError
from repro.substrates.cost import Cost
from repro.substrates.network.links import LinkSpec

__all__ = ["Message", "Request", "Endpoint", "Fabric", "ANY_TAG", "ANY_SOURCE"]

ANY_TAG = -1
ANY_SOURCE = "*"


@dataclass
class Message:
    """A delivered message: payload plus envelope and simulated cost."""

    source: str
    dest: str
    tag: int
    payload: bytes
    cost: Cost
    virtual_bytes: int
    seq: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)


class Request:
    """Completion handle for a non-blocking operation (mpi4py style)."""

    def __init__(self, kind: str):
        self._kind = kind
        self._event = threading.Event()
        self._result: Optional[Message] = None
        self._error: Optional[BaseException] = None

    def _complete(self, result: Optional[Message]) -> None:
        self._result = result
        self._event.set()

    def _fail(self, exc: BaseException) -> None:
        self._error = exc
        self._event.set()

    def test(self) -> bool:
        """True if the operation has completed (never blocks)."""
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> Optional[Message]:
        """Block until completion; returns the message for receives."""
        if not self._event.wait(timeout):
            raise TransferError(f"{self._kind} request timed out after {timeout}s")
        if self._error is not None:
            raise self._error
        return self._result


class Endpoint:
    """One addressable party on the fabric (a node-side engine thread)."""

    def __init__(self, fabric: "Fabric", name: str):
        self.fabric = fabric
        self.name = name
        self._inbox: "queue.Queue[Message]" = queue.Queue()
        self._unmatched: list = []  # messages popped but not matched yet
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        dest: str,
        payload,
        tag: int = 0,
        *,
        virtual_bytes: Optional[int] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Cost:
        """Blocking send of a bytes-like payload; returns the link cost.

        "Blocking" in the MPI sense: the call returns once the payload has
        been handed to the fabric (buffered send); the simulated cost is the
        full wire time, which the caller charges to its own timeline.
        """
        return self.fabric.deliver(self.name, dest, payload, tag, virtual_bytes, meta)

    def isend(
        self,
        dest: str,
        payload,
        tag: int = 0,
        *,
        virtual_bytes: Optional[int] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Tuple[Request, Cost]:
        """Non-blocking send; the returned request completes immediately
        after the fabric accepts the message (buffered semantics)."""
        req = Request("isend")
        try:
            cost = self.send(dest, payload, tag, virtual_bytes=virtual_bytes, meta=meta)
        except BaseException as exc:  # propagate through the request too
            req._fail(exc)
            raise
        req._complete(None)
        return req, cost

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def recv(
        self,
        source: str = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: Optional[float] = None,
    ) -> Message:
        """Blocking receive matched on ``(source, tag)``."""
        if self._closed:
            raise ChannelClosedError(f"endpoint {self.name!r} is closed")
        deadline = None
        with self._lock:
            msg = self._match_unlocked(source, tag)
            if msg is not None:
                return msg
        while True:
            try:
                msg = self._inbox.get(timeout=timeout)
            except queue.Empty:
                raise TransferError(
                    f"recv on {self.name!r} timed out waiting for "
                    f"source={source!r} tag={tag}"
                ) from None
            if msg is _CLOSE_SENTINEL:
                raise ChannelClosedError(f"endpoint {self.name!r} closed during recv")
            if _matches(msg, source, tag):
                return msg
            with self._lock:
                self._unmatched.append(msg)
            # loop again; deadline handling is coarse (per-get timeout)
            del deadline

    def irecv(
        self,
        source: str = ANY_SOURCE,
        tag: int = ANY_TAG,
    ) -> Request:
        """Non-blocking receive; completes when a matching message arrives."""
        req = Request("irecv")

        def _worker():
            try:
                req._complete(self.recv(source, tag))
            except BaseException as exc:
                req._fail(exc)

        threading.Thread(target=_worker, daemon=True, name=f"irecv-{self.name}").start()
        return req

    def probe(self, source: str = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True if a matching message is already available (no dequeue)."""
        with self._lock:
            if any(_matches(m, source, tag) for m in self._unmatched):
                return True
        # Drain the inbox into the unmatched list without blocking.
        while True:
            try:
                msg = self._inbox.get_nowait()
            except queue.Empty:
                return False
            if msg is _CLOSE_SENTINEL:
                self._closed = True
                return False
            with self._lock:
                self._unmatched.append(msg)
            if _matches(msg, source, tag):
                return True

    def _match_unlocked(self, source: str, tag: int) -> Optional[Message]:
        for i, msg in enumerate(self._unmatched):
            if _matches(msg, source, tag):
                return self._unmatched.pop(i)
        return None

    def _enqueue(self, msg) -> None:
        self._inbox.put(msg)

    def close(self) -> None:
        self._closed = True
        self._inbox.put(_CLOSE_SENTINEL)


_CLOSE_SENTINEL = object()


def _matches(msg: Message, source: str, tag: int) -> bool:
    return (source == ANY_SOURCE or msg.source == source) and (
        tag == ANY_TAG or msg.tag == tag
    )


class Fabric:
    """Routes messages between named endpoints over configured links.

    A link is registered per ordered endpoint pair (or with a default);
    :meth:`deliver` copies the payload (modelling the wire), charges the
    link's cost, and enqueues the message at the destination endpoint.
    """

    def __init__(self, default_link: Optional[LinkSpec] = None):
        self._endpoints: Dict[str, Endpoint] = {}
        self._links: Dict[Tuple[str, str], LinkSpec] = {}
        self._default_link = default_link
        self._seq = itertools.count(1)
        self._lock = threading.Lock()
        self.delivered = 0
        self.bytes_moved = 0

    def endpoint(self, name: str) -> Endpoint:
        """Create (or fetch) the endpoint with this name."""
        with self._lock:
            ep = self._endpoints.get(name)
            if ep is None:
                ep = Endpoint(self, name)
                self._endpoints[name] = ep
            return ep

    def connect(self, src: str, dest: str, link: LinkSpec, *, both_ways: bool = True):
        """Associate a link model with the ``src -> dest`` route."""
        with self._lock:
            self._links[(src, dest)] = link
            if both_ways:
                self._links[(dest, src)] = link

    def link_for(self, src: str, dest: str) -> LinkSpec:
        with self._lock:
            link = self._links.get((src, dest), self._default_link)
        if link is None:
            raise TransferError(f"no link configured for route {src!r} -> {dest!r}")
        return link

    def deliver(
        self,
        src: str,
        dest: str,
        payload,
        tag: int,
        virtual_bytes: Optional[int] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Cost:
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            raise TransferError("payload must be bytes-like (no pickling on the wire)")
        data = bytes(payload)  # the wire copy
        vbytes = len(data) if virtual_bytes is None else int(virtual_bytes)
        link = self.link_for(src, dest)
        cost = link.transfer_cost(vbytes)
        with self._lock:
            ep = self._endpoints.get(dest)
            seq = next(self._seq)
        if ep is None:
            raise TransferError(f"unknown destination endpoint {dest!r}")
        msg = Message(
            source=src,
            dest=dest,
            tag=tag,
            payload=data,
            cost=cost,
            virtual_bytes=vbytes,
            seq=seq,
            meta=dict(meta or {}),
        )
        ep._enqueue(msg)
        with self._lock:
            self.delivered += 1
            self.bytes_moved += vbytes
        return cost

    def close(self) -> None:
        with self._lock:
            eps = list(self._endpoints.values())
        for ep in eps:
            ep.close()
