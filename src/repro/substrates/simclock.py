"""Simulated time and a minimal discrete-event engine.

All latency results in this reproduction are *simulated*: operations against
the hardware model compute their duration from bandwidth/latency constants
and advance a :class:`SimClock` instead of sleeping.  This keeps benchmark
runs fast and deterministic while preserving the arithmetic that drives the
paper's figures.

Two abstractions live here:

- :class:`SimClock` — a monotonic, thread-safe simulated clock.  Components
  charge time with :meth:`SimClock.advance` and read it with
  :meth:`SimClock.now`.
- :class:`EventLoop` — a priority-queue discrete-event engine used by
  :mod:`repro.workflow` to interleave training iterations, checkpoint stalls,
  transfers, model loads, and inference requests on a single timeline.

The event loop is deliberately small (schedule / cancel / run-until); the
workflow layer builds producer/consumer actors on top of it.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import SimulationError

__all__ = ["SimClock", "Event", "EventLoop"]


class SimClock:
    """A monotonic simulated clock measured in seconds.

    The clock never goes backwards: :meth:`advance` rejects negative
    durations and :meth:`advance_to` rejects timestamps in the past.  All
    operations are thread-safe so that live-mode components (background
    flush threads, notification subscribers) can charge time concurrently.
    """

    __slots__ = ("_now", "_lock")

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        """Current simulated time in seconds."""
        with self._lock:
            return self._now

    def advance(self, dt: float) -> float:
        """Advance the clock by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise SimulationError(f"cannot advance clock by negative dt {dt!r}")
        with self._lock:
            self._now += dt
            return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to absolute time ``t`` (no-op if past)."""
        with self._lock:
            if t > self._now:
                self._now = t
            return self._now

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock (used between benchmark repetitions)."""
        if start < 0:
            raise SimulationError(f"clock cannot reset to negative time {start!r}")
        with self._lock:
            self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(t={self.now():.6f}s)"


@dataclass(order=True)
class _QueueEntry:
    """Internal heap entry; ordering is (time, sequence) for FIFO ties."""

    time: float
    seq: int
    event: "Event" = field(compare=False)


@dataclass
class Event:
    """A scheduled callback on the simulated timeline.

    Attributes:
        time: absolute simulated time at which the event fires.
        action: zero-argument callable run when the event fires.
        name: human-readable label used in traces and error messages.
        payload: optional arbitrary data carried for tracing.
    """

    time: float
    action: Callable[[], None]
    name: str = ""
    payload: Any = None
    _cancelled: bool = field(default=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it when popped."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class EventLoop:
    """A single-threaded discrete-event simulation loop.

    Events are executed in timestamp order (FIFO among equal timestamps).
    Event actions may schedule further events, including at the current
    time.  The loop drives a :class:`SimClock` forward; user code observes
    time exclusively through that clock.
    """

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock if clock is not None else SimClock()
        self._heap: List[_QueueEntry] = []
        self._seq = itertools.count()
        self._running = False
        self._executed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        name: str = "",
        payload: Any = None,
    ) -> Event:
        """Schedule ``action`` at absolute simulated time ``time``."""
        now = self.clock.now()
        if time < now:
            raise SimulationError(
                f"cannot schedule event {name!r} at t={time:.6f} before now={now:.6f}"
            )
        ev = Event(time=time, action=action, name=name, payload=payload)
        heapq.heappush(self._heap, _QueueEntry(time, next(self._seq), ev))
        return ev

    def schedule_after(
        self,
        delay: float,
        action: Callable[[], None],
        name: str = "",
        payload: Any = None,
    ) -> Event:
        """Schedule ``action`` ``delay`` seconds after the current time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r} for event {name!r}")
        return self.schedule_at(self.clock.now() + delay, action, name, payload)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    @property
    def executed(self) -> int:
        """Number of events executed so far."""
        return self._executed

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if drained."""
        while self._heap and self._heap[0].event.cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> Optional[Event]:
        """Execute the next event; return it, or ``None`` if drained."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.event.cancelled:
                continue
            self.clock.advance_to(entry.time)
            entry.event.action()
            self._executed += 1
            return entry.event
        return None

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 10_000_000,
    ) -> int:
        """Run events until the queue drains or ``until`` is reached.

        Returns the number of events executed by this call.  ``until`` is an
        absolute simulated time; events scheduled strictly after it remain
        queued and the clock is advanced exactly to ``until``.
        """
        if self._running:
            raise SimulationError("event loop is not reentrant")
        self._running = True
        executed = 0
        try:
            while executed < max_events:
                t = self.peek_time()
                if t is None:
                    break
                if until is not None and t > until:
                    break
                self.step()
                executed += 1
            else:
                raise SimulationError(
                    f"event loop exceeded max_events={max_events}; likely a "
                    f"runaway self-scheduling actor"
                )
        finally:
            self._running = False
        if until is not None:
            self.clock.advance_to(until)
        return executed

    def drain(self) -> Dict[str, int]:
        """Discard all pending events (used when tearing a workflow down)."""
        dropped: Dict[str, int] = {}
        for entry in self._heap:
            key = entry.event.name or "<anonymous>"
            dropped[key] = dropped.get(key, 0) + 1
        self._heap.clear()
        return dropped
