"""Multi-tier storage substrate (GPU HBM, host DRAM, local SSD, PFS)."""

from repro.substrates.memory.tiers import TierKind, TierSpec
from repro.substrates.memory.storage import TierStore, StoredObject, EvictionPolicy

__all__ = [
    "TierKind",
    "TierSpec",
    "TierStore",
    "StoredObject",
    "EvictionPolicy",
]
