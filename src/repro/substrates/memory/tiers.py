"""Storage-tier performance models.

A :class:`TierSpec` captures the performance envelope of one tier of the
multi-tiered storage hierarchy on a Polaris-class compute node: GPU HBM,
host DRAM, node-local SSD, and the shared parallel file system (Lustre in
the paper).  The model is the classic latency + size/bandwidth law, with an
optional per-object fixed overhead that captures file-system metadata costs
(open/close, attribute writes) — the term that makes many-small-tensor
checkpoints disproportionately expensive on a PFS (paper §3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.substrates.cost import Cost, GB

__all__ = ["TierKind", "TierSpec"]


class TierKind(enum.Enum):
    """The four tiers Viper can stage a checkpoint in (paper Fig. 7)."""

    GPU_HBM = "gpu_hbm"
    HOST_DRAM = "host_dram"
    LOCAL_SSD = "local_ssd"
    PFS = "pfs"

    @property
    def is_memory(self) -> bool:
        """True for byte-addressable tiers (no file metadata costs)."""
        return self in (TierKind.GPU_HBM, TierKind.HOST_DRAM)

    @property
    def is_shared(self) -> bool:
        """True if the tier is reachable from every node (the PFS)."""
        return self is TierKind.PFS


@dataclass(frozen=True)
class TierSpec:
    """Performance and capacity description of one storage tier.

    Attributes:
        name: human-readable identifier, e.g. ``"polaris.lustre"``.
        kind: which hierarchy level this tier sits at.
        capacity_bytes: usable capacity for checkpoint staging.
        read_bw: sustained single-client read bandwidth, bytes/second.
        write_bw: sustained single-client write bandwidth, bytes/second.
        read_latency: fixed per-operation read latency, seconds.
        write_latency: fixed per-operation write latency, seconds.
        per_object_overhead: extra seconds charged per stored object
            (file create/open/attr cost on file-backed tiers; ~0 for memory).
    """

    name: str
    kind: TierKind
    capacity_bytes: int
    read_bw: float
    write_bw: float
    read_latency: float = 0.0
    write_latency: float = 0.0
    per_object_overhead: float = 0.0

    def __post_init__(self):
        if self.capacity_bytes <= 0:
            raise ConfigurationError(f"{self.name}: capacity must be positive")
        if self.read_bw <= 0 or self.write_bw <= 0:
            raise ConfigurationError(f"{self.name}: bandwidths must be positive")
        if min(self.read_latency, self.write_latency, self.per_object_overhead) < 0:
            raise ConfigurationError(f"{self.name}: latencies must be non-negative")

    # ------------------------------------------------------------------
    # Timing laws
    # ------------------------------------------------------------------
    def write_time(self, nbytes: int, nobjects: int = 1) -> float:
        """Seconds to write ``nbytes`` split across ``nobjects`` objects."""
        if nbytes < 0 or nobjects < 1:
            raise ConfigurationError(
                f"write_time: nbytes={nbytes}, nobjects={nobjects} out of range"
            )
        return (
            self.write_latency
            + nbytes / self.write_bw
            + self.per_object_overhead * nobjects
        )

    def read_time(self, nbytes: int, nobjects: int = 1) -> float:
        """Seconds to read ``nbytes`` split across ``nobjects`` objects."""
        if nbytes < 0 or nobjects < 1:
            raise ConfigurationError(
                f"read_time: nbytes={nbytes}, nobjects={nobjects} out of range"
            )
        return (
            self.read_latency
            + nbytes / self.read_bw
            + self.per_object_overhead * nobjects
        )

    def write_cost(self, nbytes: int, nobjects: int = 1) -> Cost:
        return Cost.of(f"{self.kind.value}.write", self.write_time(nbytes, nobjects))

    def read_cost(self, nbytes: int, nobjects: int = 1) -> Cost:
        return Cost.of(f"{self.kind.value}.read", self.read_time(nbytes, nobjects))

    def describe(self) -> str:
        return (
            f"{self.name} [{self.kind.value}] cap={self.capacity_bytes / GB:.1f} GB "
            f"r={self.read_bw / GB:.2f} GB/s w={self.write_bw / GB:.2f} GB/s"
        )
