"""A real byte store per tier, with simulated timing.

:class:`TierStore` holds actual ``bytes`` objects keyed by name while
charging simulated time according to its :class:`TierSpec`.  This is the
"it really moves the bytes" half of the substitution documented in
DESIGN.md: the transfer engine genuinely serializes, stages, and copies
checkpoints through these stores, while the *timing* can be driven by a
virtual object size (e.g. the paper's 4.7 GB TC1 checkpoint) that is far
larger than the laptop-sized test tensors.

Capacity is accounted against the virtual size, so eviction and
out-of-space behaviour match what the modeled hardware would do.
"""

from __future__ import annotations

import enum
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CapacityError, ObjectNotFoundError, StorageError
from repro.substrates.cost import Cost
from repro.substrates.memory.tiers import TierSpec

__all__ = ["EvictionPolicy", "StoredObject", "TierStore"]


class EvictionPolicy(enum.Enum):
    """What to do when a write does not fit (paper Fig. 3, "Cached Models")."""

    NONE = "none"          # raise CapacityError
    LRU = "lru"            # evict least-recently-used unpinned objects
    OLDEST_VERSION = "oldest_version"  # evict lowest-version unpinned objects


@dataclass
class StoredObject:
    """One object resident in a tier."""

    key: str
    data: bytes
    virtual_bytes: int
    nobjects: int = 1
    version: int = 0
    pinned: bool = False
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def real_bytes(self) -> int:
        return len(self.data)


class TierStore:
    """Thread-safe keyed byte store with simulated-time accounting.

    Every :meth:`put` / :meth:`get` returns ``(result, Cost)``; callers add
    the cost to whatever timeline they maintain (a :class:`SimClock`, a
    latency accumulator, ...).  The store itself never sleeps.
    """

    def __init__(
        self,
        spec: TierSpec,
        eviction: EvictionPolicy = EvictionPolicy.NONE,
    ):
        self.spec = spec
        self.eviction = eviction
        self._objects: "OrderedDict[str, StoredObject]" = OrderedDict()
        self._used = 0
        self._lock = threading.RLock()
        self._evictions: List[str] = []
        # Fault-injection hook: an armed FaultPlan (duck-typed, see
        # repro.resilience.faults) or None.  The single attribute check in
        # put()/get() is the entire overhead when no plan is armed.
        self.faults = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._used

    @property
    def free_bytes(self) -> int:
        with self._lock:
            return self.spec.capacity_bytes - self._used

    @property
    def eviction_log(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._evictions)

    def keys(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._objects.keys())

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._objects

    def __len__(self) -> int:
        with self._lock:
            return len(self._objects)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def put(
        self,
        key: str,
        data: bytes,
        *,
        virtual_bytes: Optional[int] = None,
        nobjects: int = 1,
        version: int = 0,
        pinned: bool = False,
        meta: Optional[Dict[str, object]] = None,
    ) -> Cost:
        """Store ``data`` under ``key``, evicting per policy if needed.

        ``virtual_bytes`` drives both timing and capacity accounting and
        defaults to the real payload length.  Overwriting an existing key
        releases its old allocation first.
        """
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise StorageError(f"put({key!r}): payload must be bytes-like")
        data = bytes(data)
        vbytes = len(data) if virtual_bytes is None else int(virtual_bytes)
        if vbytes < 0:
            raise StorageError(f"put({key!r}): negative virtual size {vbytes}")
        cost_scale = 1.0
        if self.faults is not None:
            effect = self.faults.fire(f"store.put:{self.spec.name}", payload=data)
            if effect.payload is not None:
                data = effect.payload
            cost_scale = effect.cost_scale
        with self._lock:
            old = self._objects.pop(key, None)
            if old is not None:
                self._used -= old.virtual_bytes
            try:
                self._make_room(vbytes)
            except CapacityError:
                if old is not None:  # restore the displaced old object
                    self._objects[key] = old
                    self._used += old.virtual_bytes
                raise
            obj = StoredObject(
                key=key,
                data=data,
                virtual_bytes=vbytes,
                nobjects=nobjects,
                version=version,
                pinned=pinned,
                meta=dict(meta or {}),
            )
            self._objects[key] = obj
            self._used += vbytes
        cost = self.spec.write_cost(vbytes, nobjects)
        return cost if cost_scale == 1.0 else cost.scaled(cost_scale)

    def get(self, key: str) -> Tuple[bytes, Cost]:
        """Read the payload stored under ``key`` (marks it recently used)."""
        with self._lock:
            obj = self._objects.get(key)
            if obj is None:
                raise ObjectNotFoundError(f"{self.spec.name}: no object {key!r}")
            self._objects.move_to_end(key)
            data = obj.data
            cost = self.spec.read_cost(obj.virtual_bytes, obj.nobjects)
        if self.faults is not None:
            effect = self.faults.fire(f"store.get:{self.spec.name}", payload=data)
            if effect.payload is not None:
                data = effect.payload  # corrupt the returned copy, not the store
            if effect.cost_scale != 1.0:
                cost = cost.scaled(effect.cost_scale)
        return data, cost

    def stat(self, key: str) -> StoredObject:
        """Return the stored object's descriptor without charging a read."""
        with self._lock:
            obj = self._objects.get(key)
            if obj is None:
                raise ObjectNotFoundError(f"{self.spec.name}: no object {key!r}")
            return obj

    def delete(self, key: str) -> None:
        with self._lock:
            obj = self._objects.pop(key, None)
            if obj is None:
                raise ObjectNotFoundError(f"{self.spec.name}: no object {key!r}")
            self._used -= obj.virtual_bytes

    def pin(self, key: str, pinned: bool = True) -> None:
        """Protect / unprotect an object from eviction."""
        with self._lock:
            self.stat(key).pinned = pinned

    def clear(self) -> None:
        with self._lock:
            self._objects.clear()
            self._used = 0

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _make_room(self, needed: int) -> None:
        """Evict unpinned objects until ``needed`` bytes fit (lock held)."""
        if needed > self.spec.capacity_bytes:
            raise CapacityError(
                f"{self.spec.name}: object of {needed} B exceeds tier capacity",
                requested=needed,
                available=self.spec.capacity_bytes,
            )
        if self._used + needed <= self.spec.capacity_bytes:
            return
        if self.eviction is EvictionPolicy.NONE:
            raise CapacityError(
                f"{self.spec.name}: out of space and eviction disabled",
                requested=needed,
                available=self.spec.capacity_bytes - self._used,
            )
        victims = self._victim_order()
        for key in victims:
            if self._used + needed <= self.spec.capacity_bytes:
                break
            obj = self._objects.pop(key)
            self._used -= obj.virtual_bytes
            self._evictions.append(key)
        if self._used + needed > self.spec.capacity_bytes:
            raise CapacityError(
                f"{self.spec.name}: eviction could not free enough space "
                f"(pinned objects remain)",
                requested=needed,
                available=self.spec.capacity_bytes - self._used,
            )

    def _victim_order(self) -> List[str]:
        """Unpinned keys in eviction order (lock held)."""
        unpinned = [o for o in self._objects.values() if not o.pinned]
        if self.eviction is EvictionPolicy.LRU:
            return [o.key for o in unpinned]  # OrderedDict is LRU-ordered
        if self.eviction is EvictionPolicy.OLDEST_VERSION:
            return [o.key for o in sorted(unpinned, key=lambda o: o.version)]
        return []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TierStore({self.spec.name}, {len(self)} objects, "
            f"{self.used_bytes}/{self.spec.capacity_bytes} B)"
        )
