"""A real byte store per tier, with simulated timing.

:class:`TierStore` holds actual ``bytes`` objects keyed by name while
charging simulated time according to its :class:`TierSpec`.  This is the
"it really moves the bytes" half of the substitution documented in
DESIGN.md: the transfer engine genuinely serializes, stages, and copies
checkpoints through these stores, while the *timing* can be driven by a
virtual object size (e.g. the paper's 4.7 GB TC1 checkpoint) that is far
larger than the laptop-sized test tensors.

Capacity is accounted against the virtual size, so eviction and
out-of-space behaviour match what the modeled hardware would do.

A tier that models durable hardware (the PFS) can additionally mirror
its objects to a *media directory* on the real filesystem
(:meth:`TierStore.attach_media`).  Media writes are atomic — payload and
header go to a temp file that is ``os.replace``-d into place — so a
crash mid-flush leaves either the old object or a complete new one,
never a torn mix; any torn write that slips through a non-atomic path is
still caught by the serialization CRC header at load time.  A restarted
deployment reloads the surviving objects with ``attach_media(load=True)``.
"""

from __future__ import annotations

import enum
import json
import os
import threading
import urllib.parse
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import CapacityError, ObjectNotFoundError, StorageError
from repro.substrates.cost import Cost
from repro.substrates.memory.tiers import TierSpec

__all__ = ["EvictionPolicy", "StoredObject", "TierStore"]


class EvictionPolicy(enum.Enum):
    """What to do when a write does not fit (paper Fig. 3, "Cached Models")."""

    NONE = "none"          # raise CapacityError
    LRU = "lru"            # evict least-recently-used unpinned objects
    OLDEST_VERSION = "oldest_version"  # evict lowest-version unpinned objects


@dataclass
class StoredObject:
    """One object resident in a tier."""

    key: str
    data: bytes
    virtual_bytes: int
    nobjects: int = 1
    version: int = 0
    pinned: bool = False
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def real_bytes(self) -> int:
        return len(self.data)


class TierStore:
    """Thread-safe keyed byte store with simulated-time accounting.

    Every :meth:`put` / :meth:`get` returns ``(result, Cost)``; callers add
    the cost to whatever timeline they maintain (a :class:`SimClock`, a
    latency accumulator, ...).  The store itself never sleeps.
    """

    def __init__(
        self,
        spec: TierSpec,
        eviction: EvictionPolicy = EvictionPolicy.NONE,
    ):
        self.spec = spec
        self.eviction = eviction
        self._objects: "OrderedDict[str, StoredObject]" = OrderedDict()
        self._used = 0
        self._lock = threading.RLock()
        self._evictions: List[str] = []
        # Fault-injection hook: an armed FaultPlan (duck-typed, see
        # repro.resilience.faults) or None.  The single attribute check in
        # put()/get() is the entire overhead when no plan is armed.
        self.faults = None
        # Crash-point hook: an armed CrashPlan (duck-typed, see
        # repro.resilience.recovery) or None; same zero-overhead contract.
        self.crashpoints = None
        self._media_dir: Optional[Path] = None

    # ------------------------------------------------------------------
    # Durable media (crash recovery)
    # ------------------------------------------------------------------
    def attach_media(self, media_dir, *, load: bool = False) -> int:
        """Mirror this tier's objects to ``media_dir`` on the filesystem.

        With ``load=True``, objects already on the media (survivors of a
        previous incarnation) are restored into the in-memory store
        first; returns how many were loaded.  Stray ``.tmp`` files — the
        footprint of a write that crashed before its atomic rename — are
        discarded: the rename never happened, so the object was never
        durable.
        """
        media = Path(media_dir)
        media.mkdir(parents=True, exist_ok=True)
        loaded = 0
        with self._lock:
            self._media_dir = media
            if load:
                for tmp in media.glob("*.tmp"):
                    tmp.unlink()
                for path in sorted(media.glob("*.obj")):
                    obj = self._media_read(path)
                    self._objects[obj.key] = obj
                    self._used += obj.virtual_bytes
                    loaded += 1
        return loaded

    def _media_path(self, key: str) -> Path:
        assert self._media_dir is not None
        return self._media_dir / (urllib.parse.quote(key, safe="") + ".obj")

    def _media_write(self, obj: StoredObject) -> None:
        """Persist one object: temp file + fsync-free atomic rename."""
        final = self._media_path(obj.key)
        tmp = final.with_suffix(".tmp")
        header = json.dumps(
            {
                "key": obj.key,
                "virtual_bytes": obj.virtual_bytes,
                "nobjects": obj.nobjects,
                "version": obj.version,
                "pinned": obj.pinned,
            }
        ).encode("utf-8")
        with open(tmp, "wb") as fh:
            fh.write(header + b"\n")
            fh.write(obj.data)
            fh.flush()
        if self.crashpoints is not None:
            # The kill point between the complete temp write and the
            # atomic rename: a crash here leaves a .tmp the next boot
            # discards, never a torn object.
            self.crashpoints.reached(f"media.staged:{self.spec.name}")
        os.replace(tmp, final)

    @staticmethod
    def _media_read(path: Path) -> StoredObject:
        with open(path, "rb") as fh:
            header = json.loads(fh.readline())
            data = fh.read()
        return StoredObject(
            key=header["key"],
            data=data,
            virtual_bytes=int(header["virtual_bytes"]),
            nobjects=int(header.get("nobjects", 1)),
            version=int(header.get("version", 0)),
            pinned=bool(header.get("pinned", False)),
        )

    def _media_delete(self, key: str) -> None:
        path = self._media_path(key)
        if path.exists():
            path.unlink()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._used

    @property
    def free_bytes(self) -> int:
        with self._lock:
            return self.spec.capacity_bytes - self._used

    @property
    def eviction_log(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._evictions)

    def keys(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._objects.keys())

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._objects

    def __len__(self) -> int:
        with self._lock:
            return len(self._objects)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def put(
        self,
        key: str,
        data: bytes,
        *,
        virtual_bytes: Optional[int] = None,
        nobjects: int = 1,
        version: int = 0,
        pinned: bool = False,
        meta: Optional[Dict[str, object]] = None,
    ) -> Cost:
        """Store ``data`` under ``key``, evicting per policy if needed.

        ``virtual_bytes`` drives both timing and capacity accounting and
        defaults to the real payload length.  Overwriting an existing key
        releases its old allocation first.
        """
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise StorageError(f"put({key!r}): payload must be bytes-like")
        data = bytes(data)
        vbytes = len(data) if virtual_bytes is None else int(virtual_bytes)
        if vbytes < 0:
            raise StorageError(f"put({key!r}): negative virtual size {vbytes}")
        cost_scale = 1.0
        if self.faults is not None:
            effect = self.faults.fire(f"store.put:{self.spec.name}", payload=data)
            if effect.payload is not None:
                data = effect.payload
            cost_scale = effect.cost_scale
        with self._lock:
            old = self._objects.pop(key, None)
            if old is not None:
                self._used -= old.virtual_bytes
            try:
                self._make_room(vbytes)
            except CapacityError:
                if old is not None:  # restore the displaced old object
                    self._objects[key] = old
                    self._used += old.virtual_bytes
                raise
            obj = StoredObject(
                key=key,
                data=data,
                virtual_bytes=vbytes,
                nobjects=nobjects,
                version=version,
                pinned=pinned,
                meta=dict(meta or {}),
            )
            self._objects[key] = obj
            self._used += vbytes
            if self._media_dir is not None:
                self._media_write(obj)
        cost = self.spec.write_cost(vbytes, nobjects)
        return cost if cost_scale == 1.0 else cost.scaled(cost_scale)

    def get(self, key: str) -> Tuple[bytes, Cost]:
        """Read the payload stored under ``key`` (marks it recently used)."""
        with self._lock:
            obj = self._objects.get(key)
            if obj is None:
                raise ObjectNotFoundError(f"{self.spec.name}: no object {key!r}")
            self._objects.move_to_end(key)
            data = obj.data
            cost = self.spec.read_cost(obj.virtual_bytes, obj.nobjects)
        if self.faults is not None:
            effect = self.faults.fire(f"store.get:{self.spec.name}", payload=data)
            if effect.payload is not None:
                data = effect.payload  # corrupt the returned copy, not the store
            if effect.cost_scale != 1.0:
                cost = cost.scaled(effect.cost_scale)
        return data, cost

    def stat(self, key: str) -> StoredObject:
        """Return the stored object's descriptor without charging a read."""
        with self._lock:
            obj = self._objects.get(key)
            if obj is None:
                raise ObjectNotFoundError(f"{self.spec.name}: no object {key!r}")
            return obj

    def delete(self, key: str) -> None:
        with self._lock:
            obj = self._objects.pop(key, None)
            if obj is None:
                raise ObjectNotFoundError(f"{self.spec.name}: no object {key!r}")
            self._used -= obj.virtual_bytes
            if self._media_dir is not None:
                self._media_delete(key)

    def pin(self, key: str, pinned: bool = True) -> None:
        """Protect / unprotect an object from eviction."""
        with self._lock:
            self.stat(key).pinned = pinned

    def clear(self) -> None:
        with self._lock:
            if self._media_dir is not None:
                for key in self._objects:
                    self._media_delete(key)
            self._objects.clear()
            self._used = 0

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _make_room(self, needed: int) -> None:
        """Evict unpinned objects until ``needed`` bytes fit (lock held)."""
        if needed > self.spec.capacity_bytes:
            raise CapacityError(
                f"{self.spec.name}: object of {needed} B exceeds tier capacity",
                requested=needed,
                available=self.spec.capacity_bytes,
            )
        if self._used + needed <= self.spec.capacity_bytes:
            return
        if self.eviction is EvictionPolicy.NONE:
            raise CapacityError(
                f"{self.spec.name}: out of space and eviction disabled",
                requested=needed,
                available=self.spec.capacity_bytes - self._used,
            )
        victims = self._victim_order()
        for key in victims:
            if self._used + needed <= self.spec.capacity_bytes:
                break
            obj = self._objects.pop(key)
            self._used -= obj.virtual_bytes
            self._evictions.append(key)
            if self._media_dir is not None:
                self._media_delete(key)
        if self._used + needed > self.spec.capacity_bytes:
            raise CapacityError(
                f"{self.spec.name}: eviction could not free enough space "
                f"(pinned objects remain)",
                requested=needed,
                available=self.spec.capacity_bytes - self._used,
            )

    def _victim_order(self) -> List[str]:
        """Unpinned keys in eviction order (lock held)."""
        unpinned = [o for o in self._objects.values() if not o.pinned]
        if self.eviction is EvictionPolicy.LRU:
            return [o.key for o in unpinned]  # OrderedDict is LRU-ordered
        if self.eviction is EvictionPolicy.OLDEST_VERSION:
            return [o.key for o in sorted(unpinned, key=lambda o: o.version)]
        return []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TierStore({self.spec.name}, {len(self)} objects, "
            f"{self.used_bytes}/{self.spec.capacity_bytes} B)"
        )
