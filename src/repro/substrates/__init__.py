"""Hardware and execution substrates for the Viper reproduction.

The paper evaluates Viper on ALCF Polaris (A100 GPUs, NVLink, InfiniBand /
Slingshot, Lustre).  This package models that hardware so the rest of the
library can run anywhere:

- :mod:`repro.substrates.simclock` — a simulated clock and a small
  discrete-event engine used by the coupled producer/consumer workflow.
- :mod:`repro.substrates.memory` — multi-tier storage (GPU HBM, host DRAM,
  node-local SSD, parallel file system) with bandwidth/latency models and a
  real byte store per tier.
- :mod:`repro.substrates.network` — interconnect link models (NVLink, PCIe,
  InfiniBand, PFS fabric) and mpi4py-style point-to-point channels.
- :mod:`repro.substrates.cluster` — compute nodes and two-node topologies.
"""

from repro.substrates.simclock import SimClock, EventLoop, Event

__all__ = ["SimClock", "EventLoop", "Event"]
