"""Compute-node and cluster topology substrate."""

from repro.substrates.cluster.node import ComputeNode
from repro.substrates.cluster.cluster import Cluster, make_producer_consumer_pair

__all__ = ["ComputeNode", "Cluster", "make_producer_consumer_pair"]
