"""A modeled compute node: GPU memory, host memory, and intra-node copies.

Each :class:`ComputeNode` owns a :class:`TierStore` per local tier (GPU HBM
and host DRAM) plus the intra-node copy links (device-to-device snapshot
copies through HBM, host staging memcpys, and PCIe hops between the two).
Inter-node links and the shared PFS belong to :class:`repro.substrates.
cluster.cluster.Cluster`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.substrates.cost import Cost
from repro.substrates.memory.storage import EvictionPolicy, TierStore
from repro.substrates.memory.tiers import TierKind, TierSpec
from repro.substrates.network.links import LinkSpec

__all__ = ["ComputeNode"]


class ComputeNode:
    """One node of the producer/consumer pair.

    Attributes:
        name: node identifier used as the fabric endpoint address.
        gpu: the GPU HBM tier store (checkpoint staging on-device).
        dram: the host DRAM tier store (host staging / flush buffer).
        pcie: GPU<->host copy link.
        hbm_copy: device-to-device snapshot copy link.
        dram_copy: host staging memcpy link.
    """

    def __init__(
        self,
        name: str,
        *,
        gpu_spec: TierSpec,
        dram_spec: TierSpec,
        pcie: LinkSpec,
        hbm_copy: LinkSpec,
        dram_copy: LinkSpec,
        eviction: EvictionPolicy = EvictionPolicy.OLDEST_VERSION,
    ):
        if gpu_spec.kind is not TierKind.GPU_HBM:
            raise ConfigurationError(f"{name}: gpu_spec must be a GPU_HBM tier")
        if dram_spec.kind is not TierKind.HOST_DRAM:
            raise ConfigurationError(f"{name}: dram_spec must be a HOST_DRAM tier")
        self.name = name
        self.gpu = TierStore(gpu_spec, eviction=eviction)
        self.dram = TierStore(dram_spec, eviction=eviction)
        self.pcie = pcie
        self.hbm_copy = hbm_copy
        self.dram_copy = dram_copy

    # ------------------------------------------------------------------
    # Intra-node copy cost laws
    # ------------------------------------------------------------------
    def d2h_cost(self, nbytes: int) -> Cost:
        """Device-to-host copy over PCIe (blocks training when sync)."""
        return self.pcie.transfer_cost(nbytes)

    def h2d_cost(self, nbytes: int) -> Cost:
        """Host-to-device upload over PCIe (consumer-side model load)."""
        return self.pcie.transfer_cost(nbytes)

    def d2d_cost(self, nbytes: int) -> Cost:
        """Device-to-device snapshot copy through HBM."""
        return self.hbm_copy.transfer_cost(nbytes)

    def h2h_cost(self, nbytes: int) -> Cost:
        """Host staging memcpy (async engines use an extra buffer copy)."""
        return self.dram_copy.transfer_cost(nbytes)

    def store(self, kind: TierKind) -> TierStore:
        """The local store for ``kind`` (GPU_HBM or HOST_DRAM)."""
        if kind is TierKind.GPU_HBM:
            return self.gpu
        if kind is TierKind.HOST_DRAM:
            return self.dram
        raise ConfigurationError(f"{self.name} has no local tier of kind {kind}")

    def describe(self) -> str:
        return (
            f"node {self.name}: {self.gpu.spec.describe()}; "
            f"{self.dram.spec.describe()}"
        )
