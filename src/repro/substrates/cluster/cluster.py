"""Cluster topology: nodes, inter-node links, and the shared PFS.

The evaluation deploys one producer and one consumer on separate nodes
(paper §3), connected by a GPU-direct path (NVLink/GPUDirect over the HPC
interconnect) and a host-to-host InfiniBand path, with Lustre as the shared
parallel file system.  :func:`make_producer_consumer_pair` builds exactly
that two-node topology from a hardware profile.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.substrates.memory.storage import EvictionPolicy, TierStore
from repro.substrates.memory.tiers import TierKind, TierSpec
from repro.substrates.network.channels import Fabric
from repro.substrates.network.links import LinkSpec
from repro.substrates.cluster.node import ComputeNode

__all__ = ["Cluster", "make_producer_consumer_pair"]


class Cluster:
    """A set of compute nodes sharing a PFS and a message fabric.

    The fabric carries two logical planes between each node pair, addressed
    by endpoint name suffix:

    - ``"<node>"``: the host plane (InfiniBand host-to-host).
    - ``"<node>.gpu"``: the GPU plane (NVLink / GPUDirect RDMA).
    """

    def __init__(
        self,
        pfs_spec: TierSpec,
        *,
        gpu_link: LinkSpec,
        host_link: LinkSpec,
        eviction: EvictionPolicy = EvictionPolicy.NONE,
    ):
        if pfs_spec.kind is not TierKind.PFS:
            raise ConfigurationError("pfs_spec must be a PFS tier")
        self.pfs = TierStore(pfs_spec, eviction=eviction)
        self.fabric = Fabric()
        self.gpu_link = gpu_link
        self.host_link = host_link
        self._nodes: Dict[str, ComputeNode] = {}

    @property
    def nodes(self) -> Tuple[ComputeNode, ...]:
        return tuple(self._nodes.values())

    def add_node(self, node: ComputeNode) -> ComputeNode:
        if node.name in self._nodes:
            raise ConfigurationError(f"duplicate node name {node.name!r}")
        # Create both planes' endpoints up front so sends never race
        # endpoint creation.
        self.fabric.endpoint(node.name)
        self.fabric.endpoint(f"{node.name}.gpu")
        # Wire this node to every existing node on both planes.
        for other in self._nodes.values():
            self.fabric.connect(node.name, other.name, self.host_link)
            self.fabric.connect(f"{node.name}.gpu", f"{other.name}.gpu", self.gpu_link)
        self._nodes[node.name] = node
        return node

    def node(self, name: str) -> ComputeNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise ConfigurationError(f"unknown node {name!r}") from None

    def host_endpoint(self, name: str):
        self.node(name)  # validate
        return self.fabric.endpoint(name)

    def gpu_endpoint(self, name: str):
        self.node(name)  # validate
        return self.fabric.endpoint(f"{name}.gpu")

    def close(self) -> None:
        self.fabric.close()


def make_producer_consumer_pair(profile) -> Tuple[Cluster, ComputeNode, ComputeNode]:
    """Build the paper's two-node producer/consumer topology.

    ``profile`` is a :class:`repro.substrates.profiles.HardwareProfile`.
    Returns ``(cluster, producer_node, consumer_node)``.
    """
    cluster = Cluster(
        profile.pfs,
        gpu_link=profile.nvlink,
        host_link=profile.infiniband,
    )
    producer = ComputeNode(
        "producer",
        gpu_spec=profile.gpu_hbm,
        dram_spec=profile.host_dram,
        pcie=profile.pcie,
        hbm_copy=profile.hbm_copy,
        dram_copy=profile.dram_copy,
    )
    consumer = ComputeNode(
        "consumer",
        gpu_spec=profile.gpu_hbm,
        dram_spec=profile.host_dram,
        pcie=profile.pcie,
        hbm_copy=profile.hbm_copy,
        dram_copy=profile.dram_copy,
    )
    cluster.add_node(producer)
    cluster.add_node(consumer)
    return cluster, producer, consumer
