"""Simulated-time cost accounting.

Every operation against the hardware model (tier read/write, link transfer,
serialization) returns a :class:`Cost` describing how much simulated time it
consumed, broken into named components.  Costs compose with ``+`` so a
multi-hop transfer can report ``capture + link + load`` as one object while
preserving the breakdown for analysis and for the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

__all__ = ["Cost", "GB", "MB", "KB"]

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000


@dataclass(frozen=True)
class Cost:
    """An immutable simulated duration with a per-component breakdown.

    Components are free-form labels such as ``"pfs.write"`` or
    ``"link.nvlink"``.  ``Cost.zero()`` is the additive identity.
    """

    components: Tuple[Tuple[str, float], ...] = ()

    @staticmethod
    def zero() -> "Cost":
        return Cost(())

    @staticmethod
    def of(label: str, seconds: float) -> "Cost":
        if seconds < 0:
            raise ValueError(f"negative cost {seconds!r} for {label!r}")
        return Cost(((label, float(seconds)),))

    @staticmethod
    def from_mapping(mapping: Mapping[str, float]) -> "Cost":
        return Cost(tuple((k, float(v)) for k, v in mapping.items()))

    @property
    def total(self) -> float:
        """Total simulated seconds across all components."""
        return sum(v for _, v in self.components)

    def breakdown(self) -> Dict[str, float]:
        """Merge duplicate labels into a single dict."""
        out: Dict[str, float] = {}
        for k, v in self.components:
            out[k] = out.get(k, 0.0) + v
        return out

    def __add__(self, other: "Cost") -> "Cost":
        if not isinstance(other, Cost):
            return NotImplemented
        return Cost(self.components + other.components)

    def __radd__(self, other) -> "Cost":
        # Support sum() over an iterable of costs.
        if other == 0:
            return self
        return self.__add__(other)

    def scaled(self, factor: float) -> "Cost":
        """Return a cost with every component multiplied by ``factor``."""
        if factor < 0:
            raise ValueError(f"negative scale factor {factor!r}")
        return Cost(tuple((k, v * factor) for k, v in self.components))

    def only(self, prefixes: Iterable[str]) -> "Cost":
        """Keep only components whose label starts with one of ``prefixes``."""
        pref = tuple(prefixes)
        return Cost(tuple((k, v) for k, v in self.components if k.startswith(pref)))

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v:.4f}" for k, v in self.components)
        return f"Cost(total={self.total:.4f}s; {parts})"
