"""Hardware profiles: calibrated performance constants.

:data:`POLARIS` models ALCF Polaris as used in the paper's evaluation
(§5.1): AMD Milan CPU, 4x A100-40GB with NVLink, Slingshot-10 interconnect,
InfiniBand-class host RDMA, and Lustre as the shared PFS.  The constants
are *effective* end-to-end bandwidths, calibrated so that the latency law
(tier/link alpha-beta model) reproduces the paper's Figure 8 numbers:

- h5py baseline for NT3.A (600 MB) lands near 1.5 s, TC1 (4.7 GB) near 8 s;
- Viper Host-to-Host sync lands near 0.27 s / 2.3 s;
- Viper GPU-to-GPU sync lands near 0.1 s / 0.63 s;
- per-checkpoint producer stall matches Figure 9's overheads
  (GPU ≈ 1 s, PFS ≈ 60 s over 16 checkpoints of TC1).

Effective bandwidths are well below peak hardware numbers, exactly as the
measured end-to-end paths in the paper are (e.g. a 25 GB/s NVLink moving a
checkpoint end-to-end at ~8 GB/s once framing, registration and driver
overheads are paid).

Two further profiles exercise Viper's portability claims:

- :data:`FRONTIER` — an AMD-GPU system (MI250X-class, ROCm RDMA,
  Slingshot-11, larger per-client Lustre bandwidth).  The paper stresses
  that Viper "is designed to be generic, ensuring compatibility across
  various GPU vendors" (§4.4); the Figure 8 orderings must hold here too
  (tested in ``tests/substrates/test_profiles_portability.py``).
- :data:`LAPTOP` — small numbers so tests and examples can exercise
  capacity pressure and eviction cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.substrates.cost import GB, MB
from repro.substrates.memory.tiers import TierKind, TierSpec
from repro.substrates.network.links import LinkKind, LinkSpec

__all__ = ["HardwareProfile", "POLARIS", "FRONTIER", "LAPTOP"]


@dataclass(frozen=True)
class HardwareProfile:
    """All tier and link models needed to instantiate a two-node cluster."""

    name: str
    gpu_hbm: TierSpec
    host_dram: TierSpec
    pfs: TierSpec
    nvlink: LinkSpec       # GPU-to-GPU inter-node (GPUDirect RDMA path)
    infiniband: LinkSpec   # Host-to-Host inter-node RDMA
    pcie: LinkSpec         # GPU <-> host staging hop
    hbm_copy: LinkSpec     # device-to-device snapshot memcpy
    dram_copy: LinkSpec    # host staging memcpy


POLARIS = HardwareProfile(
    name="polaris",
    gpu_hbm=TierSpec(
        name="polaris.a100-hbm",
        kind=TierKind.GPU_HBM,
        capacity_bytes=40 * GB,
        # Staging reads/writes within HBM for cached checkpoints.
        read_bw=75.0 * GB,
        write_bw=75.0 * GB,
        read_latency=10e-6,
        write_latency=10e-6,
    ),
    host_dram=TierSpec(
        name="polaris.ddr4",
        kind=TierKind.HOST_DRAM,
        capacity_bytes=512 * GB,
        read_bw=20.0 * GB,
        write_bw=20.0 * GB,
        read_latency=1e-6,
        write_latency=1e-6,
    ),
    pfs=TierSpec(
        name="polaris.lustre",
        kind=TierKind.PFS,
        capacity_bytes=100_000 * GB,
        # Effective single-client bandwidth, not the 650 GB/s aggregate.
        read_bw=1.7 * GB,
        write_bw=1.25 * GB,
        read_latency=0.010,
        write_latency=0.020,
        # Per-file/tensor metadata cost: uncoordinated small I/O is what
        # makes checkpoint traffic hard on a PFS (paper §3).
        per_object_overhead=0.002,
    ),
    nvlink=LinkSpec(
        name="polaris.gpudirect",
        kind=LinkKind.NVLINK,
        bandwidth=8.0 * GB,
        latency=10e-6,
        per_message_overhead=0.005,
    ),
    infiniband=LinkSpec(
        name="polaris.ib",
        kind=LinkKind.INFINIBAND,
        bandwidth=3.2 * GB,
        latency=5e-6,
        per_message_overhead=0.002,
    ),
    pcie=LinkSpec(
        name="polaris.pcie4",
        kind=LinkKind.PCIE,
        bandwidth=11.0 * GB,
        latency=30e-6,
        per_message_overhead=0.001,
    ),
    hbm_copy=LinkSpec(
        name="polaris.hbm-copy",
        kind=LinkKind.HBM_COPY,
        bandwidth=75.0 * GB,
        latency=10e-6,
    ),
    dram_copy=LinkSpec(
        name="polaris.dram-copy",
        kind=LinkKind.DRAM_COPY,
        bandwidth=20.0 * GB,
        latency=1e-6,
    ),
)


FRONTIER = HardwareProfile(
    name="frontier",
    gpu_hbm=TierSpec(
        name="frontier.mi250x-hbm",
        kind=TierKind.GPU_HBM,
        capacity_bytes=64 * GB,
        read_bw=100.0 * GB,
        write_bw=100.0 * GB,
        read_latency=10e-6,
        write_latency=10e-6,
    ),
    host_dram=TierSpec(
        name="frontier.ddr4",
        kind=TierKind.HOST_DRAM,
        capacity_bytes=512 * GB,
        read_bw=25.0 * GB,
        write_bw=25.0 * GB,
        read_latency=1e-6,
        write_latency=1e-6,
    ),
    pfs=TierSpec(
        name="frontier.orion",
        kind=TierKind.PFS,
        capacity_bytes=500_000 * GB,
        read_bw=2.5 * GB,
        write_bw=2.0 * GB,
        read_latency=0.008,
        write_latency=0.015,
        per_object_overhead=0.002,
    ),
    nvlink=LinkSpec(
        # ROCm RDMA over Slingshot-11: the AMD GPU-direct path §4.4 names.
        name="frontier.rocm-rdma",
        kind=LinkKind.NVLINK,
        bandwidth=12.0 * GB,
        latency=10e-6,
        per_message_overhead=0.004,
    ),
    infiniband=LinkSpec(
        name="frontier.ss11-host",
        kind=LinkKind.INFINIBAND,
        bandwidth=5.0 * GB,
        latency=5e-6,
        per_message_overhead=0.002,
    ),
    pcie=LinkSpec(
        name="frontier.infinity-fabric",
        kind=LinkKind.PCIE,
        bandwidth=18.0 * GB,
        latency=20e-6,
        per_message_overhead=0.001,
    ),
    hbm_copy=LinkSpec(
        name="frontier.hbm-copy",
        kind=LinkKind.HBM_COPY,
        bandwidth=100.0 * GB,
        latency=10e-6,
    ),
    dram_copy=LinkSpec(
        name="frontier.dram-copy",
        kind=LinkKind.DRAM_COPY,
        bandwidth=25.0 * GB,
        latency=1e-6,
    ),
)


LAPTOP = HardwareProfile(
    name="laptop",
    gpu_hbm=TierSpec(
        name="laptop.vram",
        kind=TierKind.GPU_HBM,
        capacity_bytes=256 * MB,
        read_bw=20.0 * GB,
        write_bw=20.0 * GB,
    ),
    host_dram=TierSpec(
        name="laptop.dram",
        kind=TierKind.HOST_DRAM,
        capacity_bytes=1 * GB,
        read_bw=10.0 * GB,
        write_bw=10.0 * GB,
    ),
    pfs=TierSpec(
        name="laptop.nfs",
        kind=TierKind.PFS,
        capacity_bytes=50 * GB,
        read_bw=0.2 * GB,
        write_bw=0.1 * GB,
        read_latency=0.005,
        write_latency=0.010,
        per_object_overhead=0.001,
    ),
    nvlink=LinkSpec(
        name="laptop.gpu-p2p",
        kind=LinkKind.NVLINK,
        bandwidth=4.0 * GB,
        latency=20e-6,
    ),
    infiniband=LinkSpec(
        name="laptop.tcp",
        kind=LinkKind.INFINIBAND,
        bandwidth=1.0 * GB,
        latency=50e-6,
    ),
    pcie=LinkSpec(
        name="laptop.pcie3",
        kind=LinkKind.PCIE,
        bandwidth=6.0 * GB,
        latency=50e-6,
    ),
    hbm_copy=LinkSpec(
        name="laptop.vram-copy",
        kind=LinkKind.HBM_COPY,
        bandwidth=20.0 * GB,
    ),
    dram_copy=LinkSpec(
        name="laptop.dram-copy",
        kind=LinkKind.DRAM_COPY,
        bandwidth=10.0 * GB,
    ),
)
