"""Command-line driver: regenerate the paper's experiments without pytest.

Usage::

    python -m repro fig8 [--app tc1]        # update-latency table
    python -m repro fig9                    # transfer-strategy impact
    python -m repro fig10 [--app tc1] [--scale 0.25]
    python -m repro table1 [--scale 0.25]
    python -m repro timeline [--app tc1] [--scale 0.1]
    python -m repro obs [--export-trace t.json]   # per-stage latency breakdown
    python -m repro obs lineage [VERSION]   # one version's capture->serve trace
    python -m repro obs fleet               # per-consumer freshness scorecard
    python -m repro apps                    # list workload profiles

Figures 9/10 and Table 1 train the real model first (pass ``--scale`` to
shrink the synthetic dataset; the loss curve is stretched back to the
paper-scale iteration axis).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict

from repro.analysis.reporting import (
    format_fig8_table,
    format_fig9_table,
    format_fig10_table,
    format_table1,
)
from repro.analysis.timeline import render_timeline, summarize_trace
from repro.apps import get_app, list_apps

__all__ = ["main"]


def _curve(app_name: str, scale: float, seed: int):
    from repro.workflow.experiments import measured_loss_curve

    app = get_app(app_name)
    print(f"training {app.display_name} (scale={scale}, seed={seed}) ...",
          file=sys.stderr)
    return app, measured_loss_curve(app, scale=scale, seed=seed)


def cmd_apps(_args) -> int:
    """``repro apps``: list the workload profiles."""
    for name in list_apps():
        app = get_app(name)
        print(
            f"{name:<10} {app.display_name:<14} ckpt={app.checkpoint_bytes / 1e9:.1f} GB "
            f"epochs={app.epochs} iters/epoch={app.iters_per_epoch} "
            f"M={app.total_inferences}"
        )
    return 0


def cmd_fig8(args) -> int:
    """``repro fig8``: live update-latency tables."""
    from repro.analysis.latency import measure_latencies

    for app_name in [args.app] if args.app else ["nt3a", "tc1", "ptychonn"]:
        print(format_fig8_table(app_name, measure_latencies(app_name)))
        print()
    return 0


def cmd_fig9(args) -> int:
    """``repro fig9``: transfer-strategy impact on TC1."""
    from repro.workflow.experiments import run_strategy_comparison

    app, curve = _curve("tc1", args.scale, args.seed)
    results = run_strategy_comparison(app, curve)
    measured = {
        key: {"cil": r.cil, "overhead": r.training_overhead}
        for key, r in results.items()
    }
    print(format_fig9_table(measured))
    if args.json:
        from repro.analysis.export import export_json

        export_json(args.json, "fig9", results,
                    extra={"scale": args.scale, "seed": args.seed})
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def cmd_fig10(args) -> int:
    """``repro fig10``: CIL per checkpoint schedule."""
    from repro.workflow.experiments import run_schedule_comparison

    exported = {}
    for app_name in [args.app] if args.app else ["nt3b", "tc1", "ptychonn"]:
        app, curve = _curve(app_name, args.scale, args.seed)
        results = run_schedule_comparison(app, curve)
        exported[app_name] = results
        print(format_fig10_table(app_name, {k: r.cil for k, r in results.items()}))
        print()
    if args.json:
        from repro.analysis.export import export_json

        export_json(args.json, "fig10", exported,
                    extra={"scale": args.scale, "seed": args.seed})
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def cmd_table1(args) -> int:
    """``repro table1``: checkpoints and overheads."""
    from repro.workflow.experiments import run_schedule_comparison

    measured: Dict[str, Dict[str, Dict[str, float]]] = {}
    for app_name in ["nt3b", "tc1", "ptychonn"]:
        app, curve = _curve(app_name, args.scale, args.seed)
        results = run_schedule_comparison(app, curve)
        measured[app_name] = {
            sched: {"ckpts": r.checkpoints, "overhead": r.training_overhead}
            for sched, r in results.items()
        }
    print(format_table1(measured))
    if args.json:
        from repro.analysis.export import export_json

        export_json(args.json, "table1", measured,
                    extra={"scale": args.scale, "seed": args.seed})
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def cmd_timeline(args) -> int:
    """``repro timeline``: ASCII trace of a coupled run."""
    from repro.core.predictor.schedules import epoch_schedule
    from repro.core.transfer.strategies import CaptureMode, TransferStrategy
    from repro.workflow.runner import CoupledRunConfig, run_coupled

    app, curve = _curve(args.app or "tc1", args.scale, args.seed)
    schedule = epoch_schedule(app.warmup_iters, app.total_iters, app.iters_per_epoch)
    result = run_coupled(
        CoupledRunConfig(
            app=app,
            schedule=schedule,
            loss_curve=curve,
            strategy=TransferStrategy(args.strategy),
            mode=CaptureMode.ASYNC,
        )
    )
    print(f"events: {summarize_trace(result.trace)}")
    print(render_timeline(result.trace, width=args.width))
    print(
        f"CIL={result.cil:.1f}  checkpoints={result.checkpoints}  "
        f"training overhead={result.training_overhead:.2f}s"
    )
    return 0


def cmd_obs(args) -> int:
    """``repro obs``: instrumented coupled run + per-stage breakdown."""
    from repro.core.predictor.schedules import epoch_schedule
    from repro.core.transfer.strategies import CaptureMode, TransferStrategy
    from repro.obs import (
        MetricsRegistry,
        SpanTracer,
        format_stage_table,
        stage_breakdown,
    )
    from repro.obs.exporters import (
        write_chrome_trace,
        write_jsonl_events,
        write_prometheus,
    )
    from repro.workflow.runner import CoupledRunConfig, run_coupled

    app, curve = _curve(args.app or "tc1", args.scale, args.seed)
    schedule = epoch_schedule(app.warmup_iters, app.total_iters, app.iters_per_epoch)
    tracer = SpanTracer()
    result = run_coupled(
        CoupledRunConfig(
            app=app,
            schedule=schedule,
            loss_curve=curve,
            strategy=TransferStrategy(args.strategy),
            mode=CaptureMode.SYNC if args.sync else CaptureMode.ASYNC,
            tracer=tracer,
        )
    )
    breakdown = stage_breakdown(result.trace)

    print(f"{app.display_name}: {result.checkpoints} checkpoint(s), "
          f"{result.superseded} superseded, "
          f"training overhead {result.training_overhead:.3f}s, "
          f"CIL {result.cil:.1f}")
    print()
    print(format_stage_table(breakdown))

    # Mirror the per-stage aggregates into a metrics registry so the
    # Prometheus/JSONL exports carry the same numbers as the table.
    metrics = MetricsRegistry()
    for stats in breakdown.stages():
        hist = metrics.histogram("pipeline_stage_sim_seconds", stage=stats.stage)
        for duration in stats.durations:
            hist.observe(duration)
    metrics.counter("pipeline_checkpoints_total").inc(result.checkpoints)
    metrics.counter("pipeline_superseded_total").inc(result.superseded)
    metrics.gauge("pipeline_training_overhead_sim_seconds").set(
        result.training_overhead
    )

    if args.export_trace:
        write_chrome_trace(
            args.export_trace, spans=tracer.spans(), trace=result.trace,
            trace_kinds=("iteration", "superseded", "swap", "train_end"),
        )
        print(f"wrote Chrome trace: {args.export_trace} "
              f"(open at chrome://tracing or ui.perfetto.dev)", file=sys.stderr)
    if args.export_metrics:
        write_prometheus(args.export_metrics, metrics)
        print(f"wrote Prometheus metrics: {args.export_metrics}", file=sys.stderr)
    if args.export_events:
        n = write_jsonl_events(
            args.export_events, spans=tracer.spans(), trace=result.trace
        )
        print(f"wrote {n} JSONL events: {args.export_events}", file=sys.stderr)
    return 0


def _lineage_run(args):
    """Run a lineage-armed DES fanout for the obs lineage/fleet reports.

    No model is trained: a synthetic convex loss curve keeps the command
    instant, and the lineage/freshness content only depends on the app's
    timing law, not on actual losses.
    """
    from repro.core.predictor.schedules import epoch_schedule
    from repro.core.transfer.strategies import CaptureMode, TransferStrategy
    from repro.obs import FreshnessTracker, LifecycleLedger, SLOTarget
    from repro.workflow.multi import run_fanout

    app = get_app(args.app or "tc1")
    end = app.warmup_iters + args.epochs * app.iters_per_epoch
    schedule = epoch_schedule(app.warmup_iters, end, app.iters_per_epoch)
    ledger = LifecycleLedger()
    fresh = FreshnessTracker(
        slo=SLOTarget(
            update_latency=args.slo_latency,
            max_stale_seconds=args.slo_stale,
            max_version_lag=args.slo_lag,
        )
    )
    result = run_fanout(
        app,
        schedule,
        lambda i: 1.0 / (1.0 + i),
        n_consumers=args.consumers,
        strategy=TransferStrategy(args.strategy),
        mode=CaptureMode.SYNC if args.sync else CaptureMode.ASYNC,
        lineage=ledger,
        freshness=fresh,
    )
    return app, ledger, fresh, result


def _export_lineage(args, ledger) -> None:
    if args.export_lineage:
        n = ledger.write_jsonl(args.export_lineage)
        print(f"wrote {n} lineage transitions: {args.export_lineage}",
              file=sys.stderr)


def cmd_obs_lineage(args) -> int:
    """``repro obs lineage [VERSION]``: one version's cradle-to-serve trace."""
    from repro.obs import format_lineage_table

    app, ledger, _fresh, _result = _lineage_run(args)
    versions = ledger.versions(app.name)
    if not versions:
        print("no checkpoints recorded (schedule produced none)")
        return 1
    if args.version is not None and args.version not in versions:
        print(f"version {args.version} not recorded; have {list(versions)}")
        return 1
    targets = [args.version] if args.version is not None else list(versions)
    for i, version in enumerate(targets):
        if i:
            print()
        print(format_lineage_table(ledger, app.name, version))
    _export_lineage(args, ledger)
    return 0


def cmd_obs_fleet(args) -> int:
    """``repro obs fleet``: per-consumer freshness/SLO scorecard."""
    from repro.obs import format_fleet_table

    app, ledger, fresh, result = _lineage_run(args)
    print(f"{app.display_name}: {result.checkpoints} checkpoint(s), "
          f"{args.consumers} consumer(s), total CIL {result.total_cil:.1f}")
    print()
    print(format_fleet_table(fresh.fleet(app.name),
                             fresh.latest_version(app.name)))
    incomplete = [
        v for v in ledger.versions(app.name) if not ledger.complete(app.name, v)
    ]
    if incomplete:
        print()
        print(f"WARNING: incomplete lineage for version(s) {incomplete}")
    _export_lineage(args, ledger)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Viper reproduction: regenerate the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list workload profiles").set_defaults(fn=cmd_apps)

    p8 = sub.add_parser("fig8", help="end-to-end update latency table")
    p8.add_argument("--app", choices=["nt3a", "tc1", "ptychonn"])
    p8.set_defaults(fn=cmd_fig8)

    for name, fn, has_app in (
        ("fig9", cmd_fig9, False),
        ("fig10", cmd_fig10, True),
        ("table1", cmd_table1, False),
    ):
        p = sub.add_parser(name, help=f"regenerate {name}")
        if has_app:
            p.add_argument("--app", choices=["nt3b", "tc1", "ptychonn"])
        p.add_argument("--scale", type=float, default=0.25,
                       help="synthetic dataset scale (default 0.25)")
        p.add_argument("--seed", type=int, default=3)
        p.add_argument("--json", metavar="PATH",
                       help="also write results as JSON")
        p.set_defaults(fn=fn)

    po = sub.add_parser(
        "obs", help="instrumented coupled run: per-stage latency breakdown"
    )
    po.add_argument("--app", choices=["nt3b", "tc1", "ptychonn"])
    po.add_argument("--scale", type=float, default=0.1)
    po.add_argument("--seed", type=int, default=3)
    po.add_argument("--strategy", choices=["gpu", "host", "pfs"], default="gpu")
    po.add_argument("--sync", action="store_true",
                    help="synchronous capture (default: async)")
    po.add_argument("--export-trace", metavar="PATH",
                    help="write a Chrome/Perfetto trace_event JSON file")
    po.add_argument("--export-metrics", metavar="PATH",
                    help="write Prometheus-format metrics")
    po.add_argument("--export-events", metavar="PATH",
                    help="write spans and trace events as JSONL")
    po.set_defaults(fn=cmd_obs)

    obs_modes = po.add_subparsers(
        dest="obs_mode", metavar="{lineage,fleet}",
        help="lineage/fleet reports over a lineage-armed fanout run",
    )
    pl = obs_modes.add_parser(
        "lineage", help="per-version capture -> first-serve trace"
    )
    pl.add_argument("version", nargs="?", type=int, default=None,
                    help="checkpoint version to trace (default: all)")
    pf = obs_modes.add_parser(
        "fleet", help="per-consumer freshness/SLO scorecard"
    )
    for pm in (pl, pf):
        pm.add_argument("--app", choices=["nt3b", "tc1", "ptychonn"])
        pm.add_argument("--consumers", type=int, default=4,
                        help="serving replicas in the fanout (default 4)")
        pm.add_argument("--epochs", type=int, default=3,
                        help="checkpointing epochs to simulate (default 3)")
        pm.add_argument("--strategy", choices=["gpu", "host", "pfs"],
                        default="gpu")
        pm.add_argument("--sync", action="store_true",
                        help="synchronous capture (default: async)")
        pm.add_argument("--slo-latency", type=float, default=None,
                        help="SLO: publish->swap latency budget (sim s)")
        pm.add_argument("--slo-stale", type=float, default=None,
                        help="SLO: per-interval staleness budget (sim s)")
        pm.add_argument("--slo-lag", type=int, default=None,
                        help="SLO: max tolerated version lag at swap")
        pm.add_argument("--export-lineage", metavar="PATH",
                        help="write the lineage ledger as JSONL")
    pl.set_defaults(fn=cmd_obs_lineage)
    pf.set_defaults(fn=cmd_obs_fleet)

    pt = sub.add_parser("timeline", help="ASCII timeline of a coupled run")
    pt.add_argument("--app", choices=["nt3b", "tc1", "ptychonn"])
    pt.add_argument("--scale", type=float, default=0.1)
    pt.add_argument("--seed", type=int, default=3)
    pt.add_argument("--strategy", choices=["gpu", "host", "pfs"], default="gpu")
    pt.add_argument("--width", type=int, default=100)
    pt.set_defaults(fn=cmd_timeline)

    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
