"""CANDLE Pilot1 benchmark models: NT3 and TC1.

Both are 1-D convolutional classifiers over expression profiles — "multiple
1D convolutional layers interleaved with pooling layers followed by final
dense layers", trained with SGD (paper §5.2).  The architectures here keep
that shape at laptop scale; the paper-scale checkpoint sizes live in the
app registry as virtual sizes for the hardware model.
"""

from __future__ import annotations

import numpy as np

from repro.dnn.layers import (
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    MaxPool1D,
    ReLU,
)
from repro.dnn.losses import CrossEntropyLoss
from repro.dnn.models import Sequential
from repro.dnn.optimizers import SGD

__all__ = ["build_nt3", "build_tc1"]


def _conv_classifier(
    name: str,
    n_classes: int,
    length: int,
    seed: int,
    dense_units: int,
    lr: float = 0.03,
    decay: float = 0.008,
) -> Sequential:
    model = Sequential(
        [
            Conv1D(16, 5, padding="valid", name=f"{name}_conv1"),
            ReLU(name=f"{name}_relu1"),
            MaxPool1D(2, name=f"{name}_pool1"),
            Conv1D(32, 5, padding="valid", name=f"{name}_conv2"),
            ReLU(name=f"{name}_relu2"),
            MaxPool1D(2, name=f"{name}_pool2"),
            Flatten(name=f"{name}_flatten"),
            Dense(dense_units, name=f"{name}_dense1"),
            ReLU(name=f"{name}_relu3"),
            Dropout(0.1, name=f"{name}_dropout", seed=seed + 7),
            Dense(n_classes, name=f"{name}_logits"),
        ],
        input_shape=(length, 1),
        name=name,
        seed=seed,
    )
    # Inverse-time lr decay (standard in the CANDLE Pilot1 recipes) shapes
    # the loss curve into the decay-to-asymptote form the paper's
    # learning-curve predictor assumes: steep early improvement, a genuine
    # plateau in the last few epochs.
    model.compile(SGD(lr=lr, momentum=0.9, decay=decay), CrossEntropyLoss())
    return model


def build_nt3(length: int = 64, seed: int = 101) -> Sequential:
    """NT3: normal-vs-tumor binary classifier (2 classes, SGD).

    The 7-epoch budget is short, so NT3 uses a hotter initial rate and
    stronger decay than TC1 to plateau within the run.
    """
    return _conv_classifier(
        "nt3", n_classes=2, length=length, seed=seed, dense_units=64,
        lr=0.05, decay=0.02,
    )


def build_tc1(length: int = 64, seed: int = 202) -> Sequential:
    """TC1: 18-way balanced tumor-type classifier (SGD)."""
    return _conv_classifier("tc1", n_classes=18, length=length, seed=seed, dense_units=96)
