"""Application workloads from the paper's evaluation (§5.2).

Three applications drive the experiments:

- **CANDLE NT3** — 1-D convolutional classifier, RNA-seq profiles into
  normal/tumor (2 classes, 1120 train / 280 test samples, SGD).
- **CANDLE TC1** — same family, 18 balanced tumor types (4320 train / 1080
  test samples, SGD).
- **PtychoNN** — convolutional encoder–decoder predicting real-space
  amplitude and phase from diffraction patterns (16100 train / 3600 test
  samples, Adam, MAE loss).

The proprietary datasets are replaced by synthetic generators with the same
sample counts, class structure, and learnable signal (DESIGN.md §2); the
paper's checkpoint sizes (NT3.A 600 MB, NT3.B 1.7 GB, TC1 4.7 GB, PtychoNN
4.5 GB) ride along as *virtual* sizes for the hardware timing model.
"""

from repro.apps.registry import AppProfile, AppTiming, get_app, list_apps

__all__ = ["AppProfile", "AppTiming", "get_app", "list_apps"]
