"""PtychoNN: convolutional encoder–decoder for ptychographic inversion.

The real PtychoNN maps X-ray diffraction patterns to real-space amplitude
and phase through an encoder and two decoders (paper §5.2).  This laptop-
scale analogue keeps the structure — a shared convolutional encoder and an
upsampling convolutional decoder emitting a 2-channel (amplitude, phase)
image — trained with Adam and evaluated with MAE, as the paper specifies.
"""

from __future__ import annotations

from repro.dnn.layers import (
    Conv2D,
    MaxPool2D,
    ReLU,
    UpSampling2D,
)
from repro.dnn.losses import MAELoss
from repro.dnn.models import Sequential
from repro.dnn.optimizers import Adam

__all__ = ["build_ptychonn"]


def build_ptychonn(size: int = 16, seed: int = 303) -> Sequential:
    """Encoder (conv/pool) + decoder (conv/upsample), 2-channel output.

    One pooling stage keeps an 8x8 bottleneck: enough compression to be
    an encoder-decoder, enough spatial detail that reconstruction quality
    keeps improving across the full 13-epoch budget (the convergence
    behaviour the schedule experiments rely on).
    """
    model = Sequential(
        [
            # --- encoder: learn a representation of the sensor data
            Conv2D(12, 3, padding="same", name="ptycho_enc_conv1"),
            ReLU(name="ptycho_enc_relu1"),
            MaxPool2D(2, name="ptycho_enc_pool1"),
            Conv2D(24, 3, padding="same", name="ptycho_enc_conv2"),
            ReLU(name="ptycho_enc_relu2"),
            # --- decoder: map the encoding back to real space
            Conv2D(24, 3, padding="same", name="ptycho_dec_conv1"),
            ReLU(name="ptycho_dec_relu1"),
            UpSampling2D(2, name="ptycho_dec_up1"),
            Conv2D(12, 3, padding="same", name="ptycho_dec_conv2"),
            ReLU(name="ptycho_dec_relu2"),
            # 2 output channels: the amplitude and phase heads fused.
            Conv2D(2, 3, padding="same", name="ptycho_out"),
        ],
        input_shape=(size, size, 2),
        name="ptychonn",
        seed=seed,
    )
    # Inverse-time decay so reconstruction quality plateaus by the end of
    # the 13-epoch run (see repro.apps.candle for the same reasoning).
    model.compile(Adam(lr=2e-3, decay=0.004), MAELoss())
    return model
