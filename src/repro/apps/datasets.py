"""Synthetic dataset generators.

Each generator produces data with genuine learnable structure so the
training-loss curves exhibit the stable decreasing trend the paper's
learning-curve predictor relies on (§4.3, assumption 1):

- :func:`make_expression_profiles` — class-conditional "gene expression"
  vectors: per-class smooth centroid + correlated noise, mimicking the
  RNA-seq classification tasks of CANDLE NT3/TC1.
- :func:`make_diffraction_pairs` — (diffraction, amplitude+phase) image
  pairs generated from smooth latent objects through a fixed nonlinear
  forward map, mimicking the ptychography inversion task PtychoNN learns.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["make_expression_profiles", "make_diffraction_pairs"]


def make_expression_profiles(
    n_train: int,
    n_test: int,
    n_classes: int,
    length: int = 64,
    noise: float = 0.8,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Class-conditional 1-D profiles shaped ``(N, length, 1)``.

    Each class gets a smooth random centroid (low-frequency Fourier mix);
    samples are centroid + correlated noise.  ``noise`` controls class
    overlap and therefore how quickly the loss decays.
    """
    if n_classes < 2:
        raise ConfigurationError(f"need >= 2 classes, got {n_classes}")
    if n_train <= 0 or n_test < 0:
        raise ConfigurationError("sample counts out of range")
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 2.0 * np.pi, length)
    centroids = np.zeros((n_classes, length))
    for k in range(n_classes):
        for freq in range(1, 5):
            centroids[k] += rng.normal() * np.sin(freq * t + rng.uniform(0, 2 * np.pi))
    centroids /= np.abs(centroids).max(axis=1, keepdims=True) + 1e-9

    def sample(n: int, rng_: np.random.Generator):
        labels = rng_.integers(0, n_classes, size=n)
        base = centroids[labels]
        # Correlated noise: white noise smoothed with a short box filter.
        white = rng_.standard_normal((n, length + 4))
        kernel = np.ones(5) / 5.0
        smooth = np.apply_along_axis(
            lambda row: np.convolve(row, kernel, mode="valid"), 1, white
        )
        x = base + noise * smooth
        return x[..., None].astype(np.float32), labels.astype(np.int64)

    x_train, y_train = sample(n_train, rng)
    x_test, y_test = sample(n_test, rng)
    return x_train, y_train, x_test, y_test


def make_diffraction_pairs(
    n_train: int,
    n_test: int,
    size: int = 16,
    noise: float = 0.05,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(sensor image, real-space amplitude+phase) pairs, channels-last.

    A smooth random object (amplitude in [0,1], phase in [-pi/2, pi/2]) is
    pushed through a simulated optical forward model: the complex object
    is blurred by the instrument's point-spread function and a holographic
    sensor records the blurred field's real and imaginary parts plus shot
    noise.  The network learns the inverse map (deblurring + amplitude/
    phase decomposition) — a well-posed stand-in for the PtychoNN
    reconstruction task.  (True far-field phase retrieval from a single
    magnitude-only pattern is ill-posed without the overlapping-scan
    redundancy real ptychography provides, so a single-shot synthetic
    version of it would never converge.)

    Inputs are ``(N, size, size, 2)`` (real, imaginary); targets
    ``(N, size, size, 2)`` (amplitude, phase), both float32.
    """
    if n_train <= 0 or n_test < 0:
        raise ConfigurationError("sample counts out of range")
    rng = np.random.default_rng(seed)

    def smooth_field(n: int, rng_: np.random.Generator) -> np.ndarray:
        # Low-pass random fields: keep only the lowest Fourier modes.
        spectrum = rng_.standard_normal((n, size, size)) + 1j * rng_.standard_normal(
            (n, size, size)
        )
        fy = np.fft.fftfreq(size)[None, :, None]
        fx = np.fft.fftfreq(size)[None, None, :]
        mask = (np.abs(fy) < 0.2) & (np.abs(fx) < 0.2)
        field = np.fft.ifft2(spectrum * mask).real
        field -= field.min(axis=(1, 2), keepdims=True)
        field /= field.max(axis=(1, 2), keepdims=True) + 1e-9
        return field

    # Instrument PSF: gentle low-pass in Fourier space (fixed per dataset).
    fy = np.fft.fftfreq(size)[:, None]
    fx = np.fft.fftfreq(size)[None, :]
    psf_filter = np.exp(-((fy**2 + fx**2) / (2 * 0.15**2)))

    def sample(n: int, rng_: np.random.Generator):
        amplitude = smooth_field(n, rng_)
        phase = (smooth_field(n, rng_) - 0.5) * np.pi
        obj = amplitude * np.exp(1j * phase)
        blurred = np.fft.ifft2(np.fft.fft2(obj) * psf_filter[None])
        sensor = np.stack([blurred.real, blurred.imag], axis=-1)
        sensor = sensor + noise * rng_.standard_normal(sensor.shape)
        x = sensor.astype(np.float32)
        y = np.stack([amplitude, phase], axis=-1).astype(np.float32)
        return x, y

    x_train, y_train = sample(n_train, rng)
    x_test, y_test = sample(n_test, rng)
    return x_train, y_train, x_test, y_test
