"""App registry: workload profiles tying models, data, and paper constants.

An :class:`AppProfile` carries everything an experiment needs:

- a model builder and a synthetic dataset generator (laptop-scale);
- the paper's *virtual* checkpoint size and tensor count, which drive the
  hardware timing model (a 4.7 GB TC1 checkpoint takes 4.7 GB worth of
  simulated time even though the numpy tensors are tiny);
- measured-on-Polaris timing constants ``t_train`` (seconds per training
  iteration) and ``t_infer`` (seconds per inference request), which the
  paper empirically shows to be constant (Fig. 6);
- the experiment geometry: warm-up epochs, total epochs, iterations per
  epoch, and the number of inferences each figure evaluates.

Profiles: ``nt3a`` (Fig. 8a), ``nt3b`` (Fig. 10a / Table 1), ``tc1``
(Fig. 8b / 9 / 10b), ``ptychonn`` (Fig. 8c / 10c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.substrates.cost import GB, MB
from repro.apps import candle, ptychonn
from repro.apps.datasets import make_diffraction_pairs, make_expression_profiles

__all__ = ["AppTiming", "AppProfile", "get_app", "list_apps"]


@dataclass(frozen=True)
class AppTiming:
    """Polaris-measured per-operation timings (paper Fig. 6)."""

    t_train: float   # seconds per training iteration
    t_infer: float   # seconds per inference request

    def __post_init__(self):
        if self.t_train <= 0 or self.t_infer <= 0:
            raise ConfigurationError("timings must be positive")


@dataclass(frozen=True)
class AppProfile:
    """A complete workload description for one paper application."""

    name: str
    display_name: str
    build_model: Callable[[], object]
    make_data: Callable[[float, int], Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]
    loss_metric: str                 # "cross_entropy" | "mae"
    checkpoint_bytes: int            # paper checkpoint size (virtual)
    checkpoint_tensors: int          # paper-scale tensor count (virtual)
    timing: AppTiming
    n_train: int                     # paper training-set size
    n_test: int
    batch_size: int
    epochs: int                      # baseline run length (= baseline #ckpts)
    warmup_epochs: int
    total_inferences: int            # M in the problem formulation

    @property
    def iters_per_epoch(self) -> int:
        return -(-self.n_train // self.batch_size)  # ceil division

    @property
    def total_iters(self) -> int:
        return self.iters_per_epoch * self.epochs

    @property
    def warmup_iters(self) -> int:
        return self.iters_per_epoch * self.warmup_epochs

    def dataset(self, scale: float = 1.0, seed: int = 0):
        """Generate the synthetic dataset, optionally scaled down.

        ``scale < 1`` shrinks sample counts proportionally (tests use
        ``scale≈0.05``); iteration counts derived from the profile still
        refer to the full-scale geometry.
        """
        if not 0 < scale <= 1:
            raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
        n_train = max(2 * self.batch_size, int(self.n_train * scale))
        n_test = max(self.batch_size, int(self.n_test * scale))
        return self.make_data(n_train, n_test, seed)


def _nt3_data(n_train, n_test, seed):
    # Higher class overlap for the binary task so it converges over the
    # full 7-epoch budget rather than inside the warm-up.
    return make_expression_profiles(n_train, n_test, n_classes=2, noise=3.0, seed=seed)


def _tc1_data(n_train, n_test, seed):
    return make_expression_profiles(n_train, n_test, n_classes=18, noise=1.5, seed=seed)


def _ptycho_data(n_train, n_test, seed):
    return make_diffraction_pairs(n_train, n_test, seed=seed)


_REGISTRY: Dict[str, AppProfile] = {}


def _register(profile: AppProfile) -> AppProfile:
    _REGISTRY[profile.name] = profile
    return profile


NT3A = _register(
    AppProfile(
        name="nt3a",
        display_name="CANDLE-NT3.A",
        build_model=candle.build_nt3,
        make_data=_nt3_data,
        loss_metric="cross_entropy",
        checkpoint_bytes=600 * MB,
        checkpoint_tensors=24,
        timing=AppTiming(t_train=0.050, t_infer=0.005),
        n_train=1120,
        n_test=280,
        batch_size=20,
        epochs=7,
        warmup_epochs=2,
        total_inferences=25_000,
    )
)

NT3B = _register(
    AppProfile(
        name="nt3b",
        display_name="CANDLE-NT3.B",
        build_model=candle.build_nt3,
        make_data=_nt3_data,
        loss_metric="cross_entropy",
        checkpoint_bytes=int(1.7 * GB),
        checkpoint_tensors=30,
        timing=AppTiming(t_train=0.050, t_infer=0.005),
        n_train=1120,
        n_test=280,
        batch_size=20,
        epochs=7,
        warmup_epochs=2,
        total_inferences=25_000,
    )
)

TC1 = _register(
    AppProfile(
        name="tc1",
        display_name="CANDLE-TC1",
        build_model=candle.build_tc1,
        make_data=_tc1_data,
        loss_metric="cross_entropy",
        checkpoint_bytes=int(4.7 * GB),
        checkpoint_tensors=30,
        # Fig. 6: training ~0.04-0.1 s/iter, inference ~4-8 ms/request.
        timing=AppTiming(t_train=0.060, t_infer=0.005),
        n_train=4320,   # paper's TC1 training-set size; 216 iters/epoch @ 20
        n_test=1080,
        batch_size=20,
        epochs=16,
        warmup_epochs=3,
        total_inferences=50_000,
    )
)

PTYCHONN = _register(
    AppProfile(
        name="ptychonn",
        display_name="PtychoNN",
        build_model=ptychonn.build_ptychonn,
        make_data=_ptycho_data,
        loss_metric="mae",
        checkpoint_bytes=int(4.5 * GB),
        # Encoder + two decoders: many more, smaller tensors than the
        # CANDLE nets — this is what makes its file-path latency higher
        # (paper Fig. 8c discussion).
        checkpoint_tensors=120,
        timing=AppTiming(t_train=0.080, t_infer=0.006),
        n_train=16_100,
        n_test=3_600,
        batch_size=64,
        epochs=13,
        warmup_epochs=2,
        total_inferences=40_000,
    )
)


def get_app(name: str) -> AppProfile:
    """Look up an app profile by name (``nt3a``/``nt3b``/``tc1``/``ptychonn``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown app {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def list_apps() -> Tuple[str, ...]:
    """Names of every registered application profile."""
    return tuple(sorted(_REGISTRY))
