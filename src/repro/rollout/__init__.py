"""Canary rollout: health-gated promotion and automatic rollback.

Layered between update discovery and the double-buffer swap: a
:class:`RolloutPolicy` caps the candidate's traffic share, a
:class:`HealthGate` scores it live against the incumbent, and the
:class:`RolloutController` executes the verdict — staggered fleet
promotion or quarantine + rollback to the last-known-good version.
"""

from repro.rollout.controller import Candidate, RolloutController
from repro.rollout.gate import GateDecision, HealthGate, RollbackReason, Verdict
from repro.rollout.policy import CanaryRouter, RolloutPolicy

__all__ = [
    "Candidate",
    "CanaryRouter",
    "GateDecision",
    "HealthGate",
    "RollbackReason",
    "RolloutController",
    "RolloutPolicy",
    "Verdict",
]
