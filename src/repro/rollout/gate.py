"""Health gate: live scoring of a canary candidate against the incumbent.

The gate holds one sliding window of scored samples per arm (incumbent
primary vs. candidate canary) and renders a :class:`GateDecision` on
demand:

- **hard failures** fire at any sample count: a single non-finite
  prediction (NaN/inf anywhere in the candidate's output) or more than
  ``max_integrity_errors`` candidate-load checksum failures;
- **statistical checks** wait for ``min_canary_samples`` scored canary
  requests *and* at least one scored incumbent request, then compare
  windowed mean loss (ratio + absolute tolerance) and windowed p99
  request latency (ratio);
- with enough samples and no threshold tripped the verdict is
  :attr:`Verdict.PROMOTE`.

The gate is deliberately clock-free — callers stamp decisions with
their own simulated time — and lock-free: the serving thread is the
only writer (the server already serializes request accounting).
"""

from __future__ import annotations

import collections
import enum
import math
from dataclasses import dataclass
from typing import Deque, Optional, Sequence

import numpy as np

from repro.rollout.policy import RolloutPolicy

__all__ = ["Verdict", "RollbackReason", "GateDecision", "HealthGate"]


class Verdict(enum.Enum):
    """What the gate currently believes about the candidate."""

    PENDING = "pending"      # not enough evidence yet
    PROMOTE = "promote"      # healthy: full swap is justified
    ROLLBACK = "rollback"    # unhealthy: quarantine the candidate


class RollbackReason(enum.Enum):
    """Why a candidate was (or should be) quarantined."""

    LOSS_REGRESSION = "loss_regression"
    LATENCY_REGRESSION = "latency_regression"
    NAN_OUTPUT = "nan_output"
    INTEGRITY = "integrity"
    PEER = "peer"            # another consumer quarantined it first
    SUPERSEDED = "superseded"  # a newer candidate displaced it (no quarantine)


@dataclass(frozen=True)
class GateDecision:
    """One rendered verdict plus its supporting evidence."""

    verdict: Verdict
    reason: Optional[RollbackReason] = None
    detail: str = ""


def _p99(samples: Sequence[float]) -> float:
    """Windowed p99 (nearest-rank); NaN when the window is empty."""
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    rank = max(0, math.ceil(0.99 * len(ordered)) - 1)
    return ordered[rank]


class HealthGate:
    """Sliding-window health comparison of candidate vs. incumbent."""

    def __init__(self, policy: RolloutPolicy):
        self.policy = policy
        self.incumbent_loss: Deque[float] = collections.deque(maxlen=policy.window)
        self.canary_loss: Deque[float] = collections.deque(maxlen=policy.window)
        self.incumbent_latency: Deque[float] = collections.deque(maxlen=policy.window)
        self.canary_latency: Deque[float] = collections.deque(maxlen=policy.window)
        self.canary_scored = 0       # scored canary requests (finite loss)
        self.canary_served = 0       # all canary requests, scored or not
        self.nonfinite_outputs = 0
        self.integrity_errors = 0

    # ------------------------------------------------------------------
    # Evidence intake (serving thread)
    # ------------------------------------------------------------------
    def observe_primary(self, loss: float, latency: float) -> None:
        """One request served by the incumbent primary."""
        if math.isfinite(loss):
            self.incumbent_loss.append(loss)
        if math.isfinite(latency):
            self.incumbent_latency.append(latency)

    def observe_canary(
        self, prediction, loss: float, latency: float
    ) -> None:
        """One request served by the candidate.

        ``prediction`` is the raw model output; any non-finite element
        is a hard failure (a model emitting NaN/inf must never win the
        fleet, whatever its loss window says — NaN losses would simply
        fall out of the mean).
        """
        self.canary_served += 1
        if prediction is not None and not np.all(np.isfinite(prediction)):
            self.nonfinite_outputs += 1
        if math.isfinite(loss):
            self.canary_loss.append(loss)
            self.canary_scored += 1
        if math.isfinite(latency):
            self.canary_latency.append(latency)

    def record_integrity_error(self) -> None:
        """A candidate load failed verification after exhausting retries."""
        self.integrity_errors += 1

    # ------------------------------------------------------------------
    # Verdict
    # ------------------------------------------------------------------
    def decision(self) -> GateDecision:
        """Render the current verdict; cheap enough to call per request."""
        policy = self.policy
        if self.nonfinite_outputs > 0:
            return GateDecision(
                Verdict.ROLLBACK,
                RollbackReason.NAN_OUTPUT,
                f"{self.nonfinite_outputs} non-finite prediction(s)",
            )
        if self.integrity_errors > policy.max_integrity_errors:
            return GateDecision(
                Verdict.ROLLBACK,
                RollbackReason.INTEGRITY,
                f"{self.integrity_errors} integrity error(s) "
                f"(tolerated {policy.max_integrity_errors})",
            )
        if self.canary_scored < policy.min_canary_samples:
            return GateDecision(
                Verdict.PENDING,
                detail=f"{self.canary_scored}/{policy.min_canary_samples} "
                       f"scored canary samples",
            )
        if policy.max_loss_ratio is not None:
            if not self.incumbent_loss:
                return GateDecision(
                    Verdict.PENDING, detail="no scored incumbent samples yet"
                )
            incumbent = float(np.mean(self.incumbent_loss))
            candidate = float(np.mean(self.canary_loss))
            threshold = incumbent * policy.max_loss_ratio + policy.loss_tolerance
            if candidate > threshold:
                return GateDecision(
                    Verdict.ROLLBACK,
                    RollbackReason.LOSS_REGRESSION,
                    f"candidate mean loss {candidate:.6g} > "
                    f"{threshold:.6g} (incumbent {incumbent:.6g} x "
                    f"{policy.max_loss_ratio})",
                )
        if policy.max_latency_ratio is not None:
            incumbent_p99 = _p99(self.incumbent_latency)
            candidate_p99 = _p99(self.canary_latency)
            if math.isnan(incumbent_p99) or math.isnan(candidate_p99):
                return GateDecision(
                    Verdict.PENDING, detail="latency windows not filled"
                )
            if candidate_p99 > incumbent_p99 * policy.max_latency_ratio:
                return GateDecision(
                    Verdict.ROLLBACK,
                    RollbackReason.LATENCY_REGRESSION,
                    f"candidate p99 {candidate_p99:.6g}s > incumbent "
                    f"p99 {incumbent_p99:.6g}s x {policy.max_latency_ratio}",
                )
        return GateDecision(
            Verdict.PROMOTE,
            detail=f"{self.canary_scored} scored canary samples healthy",
        )
