"""Rollout policy: how much traffic a candidate gets, and when it wins.

A freshly published checkpoint is not trusted with the fleet.  The
:class:`RolloutPolicy` states the contract a candidate version must meet
before a full double-buffer swap:

- it serves at most ``canary_fraction`` of live requests while under
  evaluation (a **hard cap**, enforced by the deterministic
  :class:`CanaryRouter` — the canary share can round down, never up);
- the :class:`~repro.rollout.gate.HealthGate` must score at least
  ``min_canary_samples`` canary requests without tripping a rollback
  threshold (loss ratio, p99 latency ratio, non-finite outputs,
  integrity errors);
- once the gate votes *promote*, the actual swap is delayed by a
  deterministic per-consumer jitter in ``[0, stagger)`` simulated
  seconds, so a fleet of consumers never drains its serving capacity by
  swapping in the same instant.

The policy is a frozen value object; all mutable rollout state lives in
the :class:`~repro.rollout.controller.RolloutController`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import RolloutError

__all__ = ["RolloutPolicy", "CanaryRouter"]


@dataclass(frozen=True)
class RolloutPolicy:
    """Knobs of one canary rollout deployment.

    Attributes:
        canary_fraction: maximum share of requests the candidate may
            serve while under evaluation (0 < f <= 1; 1 degenerates to
            an unconditional swap after ``min_canary_samples``).
        min_canary_samples: scored canary requests required before the
            gate may vote promote (hard failures — non-finite outputs,
            integrity errors — roll back earlier).
        window: sliding-window length of the per-arm loss/latency
            samples the gate compares.
        max_loss_ratio: roll back when the candidate's mean windowed
            loss exceeds ``incumbent_mean * max_loss_ratio +
            loss_tolerance``; ``None`` disables the loss check.
        loss_tolerance: absolute slack added to the loss threshold so a
            near-zero incumbent loss does not make the ratio test
            vacuous.
        max_latency_ratio: roll back when the candidate's windowed p99
            request latency exceeds ``incumbent_p99 *
            max_latency_ratio``; ``None`` disables the latency check.
        max_integrity_errors: candidate-load integrity failures (each
            one already survived the retry layer) tolerated before an
            immediate rollback.
        stagger: width of the fleet promotion wave in simulated
            seconds; each consumer draws a deterministic delay in
            ``[0, stagger)`` from ``seed`` and its own name.
        seed: jitter stream seed (kept in the policy so a fleet sharing
            one policy staggers reproducibly).
    """

    canary_fraction: float = 0.1
    min_canary_samples: int = 8
    window: int = 64
    max_loss_ratio: Optional[float] = 1.5
    loss_tolerance: float = 1e-6
    max_latency_ratio: Optional[float] = None
    max_integrity_errors: int = 0
    stagger: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if not 0.0 < self.canary_fraction <= 1.0:
            raise RolloutError(
                f"canary_fraction {self.canary_fraction} outside (0, 1]"
            )
        if self.min_canary_samples < 1:
            raise RolloutError("min_canary_samples must be >= 1")
        if self.window < self.min_canary_samples:
            raise RolloutError(
                f"window {self.window} smaller than min_canary_samples "
                f"{self.min_canary_samples}"
            )
        if self.max_loss_ratio is not None and self.max_loss_ratio <= 0:
            raise RolloutError("max_loss_ratio must be positive")
        if self.loss_tolerance < 0:
            raise RolloutError("loss_tolerance must be non-negative")
        if self.max_latency_ratio is not None and self.max_latency_ratio <= 0:
            raise RolloutError("max_latency_ratio must be positive")
        if self.max_integrity_errors < 0:
            raise RolloutError("max_integrity_errors must be non-negative")
        if self.stagger < 0:
            raise RolloutError("stagger must be non-negative")

    def promote_delay(self, consumer: str) -> float:
        """Deterministic promotion jitter for ``consumer`` in [0, stagger).

        String seeds hash via SHA-512 in CPython, so the same (seed,
        consumer) pair draws the same delay in every process — a fleet
        re-running a wave staggers identically.
        """
        if self.stagger <= 0.0:
            return 0.0
        rng = random.Random(f"rollout/{self.seed}/{consumer}")
        return rng.random() * self.stagger


class CanaryRouter:
    """Deterministic stride routing with a hard canary share cap.

    Request ``k`` (0-based, counted from the instant the candidate was
    staged) routes to the canary iff ``floor((k+1) * f) > floor(k * f)``.
    After any ``n`` requests the canary has served exactly
    ``floor(n * f)`` of them, so its share can never exceed ``f`` — the
    chaos harness's "a bad version never exceeds its canary share"
    invariant holds by construction, not statistically.
    """

    def __init__(self, fraction: float):
        if not 0.0 < fraction <= 1.0:
            raise RolloutError(f"canary fraction {fraction} outside (0, 1]")
        self.fraction = fraction
        self.requests = 0       # requests routed (both arms)
        self.canary_requests = 0

    def route(self) -> bool:
        """Decide the next request; True routes it to the canary."""
        k = self.requests
        self.requests += 1
        hit = math.floor((k + 1) * self.fraction) > math.floor(k * self.fraction)
        if hit:
            self.canary_requests += 1
        return hit

    @property
    def canary_share(self) -> float:
        """Realized canary share so far (0.0 before any request)."""
        if self.requests == 0:
            return 0.0
        return self.canary_requests / self.requests
