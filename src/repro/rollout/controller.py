"""Rollback controller: candidate lifecycle between discovery and swap.

The :class:`RolloutController` sits between update discovery (the
server's ``poll_updates``) and the double-buffer swap.  Instead of the
unconditional ``consumer.refresh()`` path, a newly published version is
**staged** into the buffer's canary slot, served to a bounded fraction
of live requests, and scored by a :class:`~repro.rollout.gate.HealthGate`
until one of three things happens:

- **promote** — the gate votes healthy; after a deterministic
  per-consumer stagger delay the candidate is swapped into the primary
  (the fleet never promotes in lock-step);
- **rollback** — the gate trips a threshold; the candidate is dropped
  from the canary slot, **quarantined** in the metadata store with a
  reason code (journaled, so recovery converges on the last-known-good
  version too), the quarantine is fanned out on the notification topic
  so peer consumers drop their own canaries, and time-to-detect lands
  in metrics;
- **superseded** — a newer version appears mid-canary; the old
  candidate is dropped without prejudice and the newer one staged.

Every transition is appended to an in-memory decision log
(:meth:`RolloutController.write_decision_log` exports JSONL — the CI
chaos job uploads it as an artifact).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import IntegrityError, RetriesExhausted, ServingError
from repro.core.notification import QUARANTINE_EVENT, Notification
from repro.obs.metrics import NULL_METRICS
from repro.rollout.gate import GateDecision, HealthGate, RollbackReason, Verdict
from repro.rollout.policy import CanaryRouter, RolloutPolicy

__all__ = ["Candidate", "RolloutController"]

#: ``rollout_state`` gauge values (one gauge per consumer+model).
STATE_IDLE, STATE_CANARY, STATE_PROMOTING = 0, 1, 2


@dataclass
class Candidate:
    """One version under canary evaluation."""

    version: int
    staged_at: float                 # sim time of the (first) staging
    gate: HealthGate
    router: CanaryRouter
    promote_at: Optional[float] = None   # sim time the staggered swap is due
    verdict: Verdict = field(default=Verdict.PENDING)


class RolloutController:
    """Health-gated promotion / quarantine of candidate versions."""

    def __init__(
        self,
        consumer,
        model_name: str,
        policy: RolloutPolicy,
        *,
        name: Optional[str] = None,
        metrics=None,
    ):
        self.consumer = consumer
        self.viper = consumer.viper
        self.model_name = model_name
        self.policy = policy
        self.name = name if name is not None else consumer.name
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._candidate: Optional[Candidate] = None
        #: version -> integrity failures across staging attempts (each
        #: already exhausted the retry layer underneath).
        self._stage_failures: Dict[int, int] = {}
        #: version -> sim time of the first staging attempt, so
        #: time-to-detect covers candidates that never staged cleanly.
        self._first_attempt: Dict[int, float] = {}
        self.promotions = 0
        self.rollbacks = 0
        self.peer_drops = 0
        self.time_to_detect: List[float] = []
        self.decisions: List[dict] = []
        labels = dict(consumer=self.name, model=model_name)
        self._m_state = self.metrics.gauge("rollout_state", **labels)
        self._m_state.set(STATE_IDLE)
        self._m_share = self.metrics.gauge("rollout_canary_share", **labels)
        self._m_canary = self.metrics.counter(
            "rollout_canary_requests_total", **labels
        )
        self._m_promotions = self.metrics.counter(
            "rollout_promotions_total", **labels
        )
        self._m_ttd = self.metrics.histogram(
            "rollout_time_to_detect_sim_seconds", **labels
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self._candidate is not None

    @property
    def candidate_version(self) -> Optional[int]:
        cand = self._candidate
        return cand.version if cand is not None else None

    def _log(self, action: str, version: int, sim_time: float, **extra) -> None:
        self.decisions.append(
            {
                "action": action,
                "consumer": self.name,
                "model": self.model_name,
                "version": version,
                "sim_time": round(float(sim_time), 9),
                **extra,
            }
        )

    # ------------------------------------------------------------------
    # Discovery -> staging
    # ------------------------------------------------------------------
    def maybe_stage(self, sim_now: float) -> bool:
        """Stage the newest non-quarantined version as the candidate.

        Returns True when a new candidate was staged.  Integrity
        failures (the load's layered verification failed even after the
        retry budget) count against ``policy.max_integrity_errors``;
        crossing it quarantines the version without it ever touching a
        buffer slot.
        """
        record, _ = self.viper.metadata.latest(self.model_name)
        if record is None or record.version <= self.consumer.current_version:
            return False
        cand = self._candidate
        if cand is not None:
            if record.version <= cand.version:
                return False
            # A newer publish displaces the candidate mid-canary; the
            # displaced version is not condemned, just outdated.
            self.consumer.drop_candidate()
            self._log(
                "superseded", cand.version, sim_now,
                by=record.version, reason=RollbackReason.SUPERSEDED.value,
            )
            self._candidate = None
            self._m_state.set(STATE_IDLE)
        version = record.version
        self._first_attempt.setdefault(version, float(sim_now))
        try:
            self.consumer.stage_candidate(self.model_name, version)
        except (IntegrityError, RetriesExhausted) as exc:
            cause = exc if isinstance(exc, IntegrityError) else exc.__cause__
            if not isinstance(cause, IntegrityError):
                raise
            failures = self._stage_failures.get(version, 0) + 1
            self._stage_failures[version] = failures
            self._log(
                "stage_failed", version, sim_now,
                integrity_errors=failures, error=str(exc)[:200],
            )
            if failures > self.policy.max_integrity_errors:
                self._quarantine(
                    version, RollbackReason.INTEGRITY, sim_now,
                    detail=f"{failures} integrity failure(s) while staging",
                )
            return False
        except ServingError:
            # Raced a concurrent swap/quarantine; nothing to stage.
            return False
        self._candidate = Candidate(
            version=version,
            staged_at=self._first_attempt[version],
            gate=HealthGate(self.policy),
            router=CanaryRouter(self.policy.canary_fraction),
        )
        self._m_state.set(STATE_CANARY)
        self._log(
            "stage", version, sim_now,
            canary_fraction=self.policy.canary_fraction,
        )
        return True

    # ------------------------------------------------------------------
    # Request routing + evidence (serving thread)
    # ------------------------------------------------------------------
    def route(self):
        """Route the next request; a canary snapshot or None (primary).

        Must be called exactly once per served request while a
        candidate is active — the router's stride arithmetic is what
        enforces the hard canary share cap.
        """
        cand = self._candidate
        if cand is None:
            return None
        snapshot = self.consumer.canary_snapshot()
        if snapshot is None or snapshot.version != cand.version:
            return None
        if not cand.router.route():
            self._m_share.set(cand.router.canary_share)
            return None
        self._m_canary.inc()
        self._m_share.set(cand.router.canary_share)
        return snapshot

    def observe_primary(self, loss: float, latency: float) -> None:
        """Score one incumbent-served request (no-op when idle)."""
        cand = self._candidate
        if cand is not None:
            cand.gate.observe_primary(loss, latency)

    def observe_canary(
        self, prediction, loss: float, latency: float, sim_now: float
    ) -> None:
        """Score one canary-served request; may roll back immediately."""
        cand = self._candidate
        if cand is None:
            return
        cand.gate.observe_canary(prediction, loss, latency)
        decision = cand.gate.decision()
        if decision.verdict is Verdict.ROLLBACK:
            self.rollback(decision, sim_now)

    # ------------------------------------------------------------------
    # Verdict execution
    # ------------------------------------------------------------------
    def tick(self, sim_now: float) -> bool:
        """Evaluate the candidate; True when a promotion swap happened.

        Promotion is deferred by the policy's per-consumer stagger
        delay: the first promote verdict schedules the swap at
        ``sim_now + promote_delay(consumer)``; the swap itself executes
        on the first tick at or past that instant.
        """
        cand = self._candidate
        if cand is None:
            return False
        decision = cand.gate.decision()
        if decision.verdict is Verdict.ROLLBACK:
            self.rollback(decision, sim_now)
            return False
        if decision.verdict is not Verdict.PROMOTE:
            return False
        if cand.promote_at is None:
            cand.promote_at = sim_now + self.policy.promote_delay(self.name)
            cand.verdict = Verdict.PROMOTE
            self._m_state.set(STATE_PROMOTING)
        if sim_now < cand.promote_at:
            return False
        self.consumer.promote_candidate(self.model_name)
        self.promotions += 1
        self._m_promotions.inc()
        self.viper.handler.stats.record_promotion()
        self._log(
            "promote", cand.version, sim_now,
            canary_requests=cand.router.canary_requests,
            requests=cand.router.requests,
            canary_share=round(cand.router.canary_share, 6),
            staged_at=round(cand.staged_at, 9),
            stagger_delay=round(
                cand.promote_at - (cand.staged_at if cand.promote_at else 0), 9
            ) if self.policy.stagger else 0.0,
        )
        self._forget(cand.version)
        self._candidate = None
        self._m_state.set(STATE_IDLE)
        self._m_share.set(0.0)
        return True

    def rollback(self, decision: GateDecision, sim_now: float) -> None:
        """Quarantine the active candidate per the gate's verdict."""
        cand = self._candidate
        if cand is None:
            return
        reason = decision.reason if decision.reason is not None else (
            RollbackReason.LOSS_REGRESSION
        )
        self.consumer.drop_candidate()
        self._candidate = None
        self._quarantine(
            cand.version, reason, sim_now,
            detail=decision.detail,
            canary_requests=cand.router.canary_requests,
            requests=cand.router.requests,
            canary_share=round(cand.router.canary_share, 6),
        )

    def _quarantine(
        self,
        version: int,
        reason: RollbackReason,
        sim_now: float,
        detail: str = "",
        **extra,
    ) -> None:
        viper = self.viper
        viper.metadata.quarantine_version(self.model_name, version, reason.value)
        viper.freshness.record_quarantine(self.model_name, version, sim_now)
        viper.handler.stats.record_rollback(reason.value)
        self.rollbacks += 1
        ttd = max(0.0, sim_now - self._first_attempt.get(version, sim_now))
        self.time_to_detect.append(ttd)
        self._m_ttd.observe(ttd)
        self.metrics.counter(
            "rollout_rollbacks_total",
            consumer=self.name, model=self.model_name, reason=reason.value,
        ).inc()
        self._m_state.set(STATE_IDLE)
        self._m_share.set(0.0)
        self._log(
            "rollback", version, sim_now,
            reason=reason.value, detail=detail,
            time_to_detect=round(ttd, 9), **extra,
        )
        self._forget(version)
        # Fan the quarantine out so peer consumers drop their canaries
        # and the fleet converges on the last-known-good version.
        viper.broker.publish(
            viper.topic,
            model_name=self.model_name,
            version=version,
            location="quarantined",
            now=viper.handler.sim_now,
            payload={"event": QUARANTINE_EVENT, "reason": reason.value},
        )

    def on_quarantine_note(self, note: Notification, sim_now: float) -> None:
        """A peer quarantined ``note.version``; drop our matching canary."""
        cand = self._candidate
        if (
            cand is None
            or note.model_name != self.model_name
            or note.version != cand.version
        ):
            return
        self.consumer.drop_candidate()
        self._candidate = None
        self.peer_drops += 1
        self._m_state.set(STATE_IDLE)
        self._m_share.set(0.0)
        self.metrics.counter(
            "rollout_peer_drops_total",
            consumer=self.name, model=self.model_name,
        ).inc()
        self._log(
            "peer_drop", note.version, sim_now,
            reason=RollbackReason.PEER.value,
            peer_reason=str(note.payload.get("reason", "")),
        )
        self._forget(note.version)

    def _forget(self, version: int) -> None:
        """Drop per-version staging bookkeeping once a verdict landed."""
        self._stage_failures.pop(version, None)
        self._first_attempt.pop(version, None)

    # ------------------------------------------------------------------
    # Decision log export
    # ------------------------------------------------------------------
    def write_decision_log(self, path) -> int:
        """Append-free JSONL export of every decision; returns the count."""
        with open(path, "w", encoding="utf-8") as fh:
            for entry in self.decisions:
                fh.write(json.dumps(entry, sort_keys=True) + "\n")
        return len(self.decisions)
