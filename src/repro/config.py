"""Declarative experiment configuration.

:class:`ViperConfig` gathers the knobs a deployment chooses — hardware
profile, serializer, transfer strategy / capture mode, notification vs
polling discovery, flush policy — into one serializable object, so
examples and scripts can describe a run as data.  ``from_dict`` accepts
the plain-dict form (e.g. parsed from JSON).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # resilience imports lazily to avoid a module cycle
    from repro.resilience.faults import FaultPlan
    from repro.resilience.retry import RetryPolicy
from repro.substrates.profiles import FRONTIER, LAPTOP, POLARIS, HardwareProfile
from repro.dnn.serialization import H5LikeSerializer, Serializer, ViperSerializer
from repro.core.transfer.delta import DEFAULT_DELTA_CHUNK_BYTES, DeltaConfig
from repro.core.transfer.pipeline import DEFAULT_CHUNK_BYTES, PipelineConfig
from repro.core.transfer.strategies import CaptureMode, TransferStrategy

__all__ = ["ViperConfig"]

_PROFILES = {"polaris": POLARIS, "frontier": FRONTIER, "laptop": LAPTOP}
_SERIALIZERS = {"viper": ViperSerializer, "h5py": H5LikeSerializer}


@dataclass
class ViperConfig:
    """One deployment's configuration knobs."""

    profile: str = "polaris"
    serializer: str = "viper"
    strategy: Optional[str] = None     # None = let the selector decide
    mode: str = "async"
    flush_history: bool = False
    poll_interval: float = 0.0         # 0 = push notifications
    topic: str = "model-updates"
    # Chunked, pipelined transfer path (off = original monolithic path).
    pipeline: bool = False
    pipeline_chunk_bytes: int = DEFAULT_CHUNK_BYTES
    pipeline_lanes: int = 2
    # Delta/compressed wire path (off = every save ships the full blob).
    # ``compression`` applies to the literal chunks of a delta frame:
    # "none", "zlib", or "lz4" (when the package is installed).
    delta: bool = False
    delta_chunk_bytes: int = DEFAULT_DELTA_CHUNK_BYTES
    compression: str = "none"
    # Resilience: retry budget per site, strategy failover down the
    # GPU -> HOST -> PFS chain, and an optional fault plan (plain-dict
    # form of resilience.FaultPlan.to_dict) armed for the session.
    retry_max_attempts: int = 3
    retry_base_delay: float = 0.005
    retry_max_delay: float = 1.0
    retry_jitter: float = 0.25
    failover: bool = True
    fault_plan: Optional[Dict[str, Any]] = None
    # Crash recovery: a journal directory makes metadata mutations
    # durable (write-ahead) and mirrors the PFS to real files; recover
    # replays it on startup.  notify_queue_max bounds each subscriber's
    # notification queue (0 = unbounded); staleness_deadline arms the
    # consumer's fallback-to-polling watchdog (None = push-only).
    journal_dir: Optional[str] = None
    recover: bool = False
    notify_queue_max: int = 0
    staleness_deadline: Optional[float] = None
    # Canary rollout (off = every discovered version swaps in
    # unconditionally).  See repro.rollout.RolloutPolicy for semantics;
    # None thresholds disable the corresponding health check.
    rollout: bool = False
    rollout_canary_fraction: float = 0.1
    rollout_min_canary_samples: int = 8
    rollout_window: int = 64
    rollout_max_loss_ratio: Optional[float] = 1.5
    rollout_loss_tolerance: float = 1e-6
    rollout_max_latency_ratio: Optional[float] = None
    rollout_max_integrity_errors: int = 0
    rollout_stagger: float = 0.0
    rollout_seed: int = 0

    def __post_init__(self):
        if self.profile not in _PROFILES:
            raise ConfigurationError(
                f"unknown profile {self.profile!r}; options: {sorted(_PROFILES)}"
            )
        if self.serializer not in _SERIALIZERS:
            raise ConfigurationError(
                f"unknown serializer {self.serializer!r}; "
                f"options: {sorted(_SERIALIZERS)}"
            )
        if self.mode not in ("sync", "async"):
            raise ConfigurationError(f"mode must be sync|async, not {self.mode!r}")
        if self.strategy is not None:
            valid = {s.value for s in TransferStrategy}
            if self.strategy not in valid:
                raise ConfigurationError(
                    f"unknown strategy {self.strategy!r}; options: {sorted(valid)}"
                )
        if self.poll_interval < 0:
            raise ConfigurationError("poll_interval must be non-negative")
        if self.pipeline_chunk_bytes <= 0:
            raise ConfigurationError("pipeline_chunk_bytes must be positive")
        if self.pipeline_lanes < 1:
            raise ConfigurationError("pipeline_lanes must be >= 1")
        # DeltaConfig re-validates chunk size and codec name; building it
        # here fails fast at the bad knob.
        self.delta_config()
        if self.recover and self.journal_dir is None:
            raise ConfigurationError("recover=True requires journal_dir")
        if self.notify_queue_max < 0:
            raise ConfigurationError("notify_queue_max must be non-negative")
        if self.staleness_deadline is not None and self.staleness_deadline <= 0:
            raise ConfigurationError("staleness_deadline must be positive")
        # RetryPolicy re-validates, but failing at config-construction
        # time points at the bad knob instead of the first transfer.
        self.retry_policy()
        # Same fail-fast rule for the rollout knobs.
        self.rollout_policy()
        if self.fault_plan is not None:
            self.make_fault_plan()

    # ------------------------------------------------------------------
    # Resolution to live objects
    # ------------------------------------------------------------------
    def hardware(self) -> HardwareProfile:
        return _PROFILES[self.profile]

    def make_serializer(self) -> Serializer:
        return _SERIALIZERS[self.serializer]()

    def capture_mode(self) -> CaptureMode:
        return CaptureMode.SYNC if self.mode == "sync" else CaptureMode.ASYNC

    def transfer_strategy(self) -> Optional[TransferStrategy]:
        if self.strategy is None:
            return None
        return TransferStrategy(self.strategy)

    def pipeline_config(self) -> PipelineConfig:
        return PipelineConfig(
            enabled=self.pipeline,
            chunk_bytes=self.pipeline_chunk_bytes,
            lanes=self.pipeline_lanes,
        )

    def delta_config(self) -> DeltaConfig:
        return DeltaConfig(
            enabled=self.delta,
            chunk_bytes=self.delta_chunk_bytes,
            compression=self.compression,
        )

    def retry_policy(self) -> "RetryPolicy":
        from repro.resilience.retry import RetryPolicy

        return RetryPolicy(
            max_attempts=self.retry_max_attempts,
            base_delay=self.retry_base_delay,
            max_delay=self.retry_max_delay,
            jitter=self.retry_jitter,
        )

    def rollout_policy(self):
        """The configured :class:`~repro.rollout.RolloutPolicy`, or None
        when rollout is off."""
        if not self.rollout:
            return None
        from repro.rollout.policy import RolloutPolicy

        return RolloutPolicy(
            canary_fraction=self.rollout_canary_fraction,
            min_canary_samples=self.rollout_min_canary_samples,
            window=self.rollout_window,
            max_loss_ratio=self.rollout_max_loss_ratio,
            loss_tolerance=self.rollout_loss_tolerance,
            max_latency_ratio=self.rollout_max_latency_ratio,
            max_integrity_errors=self.rollout_max_integrity_errors,
            stagger=self.rollout_stagger,
            seed=self.rollout_seed,
        )

    def make_fault_plan(self) -> Optional["FaultPlan"]:
        """Build the configured fault plan (None when no plan is set)."""
        from repro.resilience.faults import FaultPlan

        if self.fault_plan is None:
            return None
        return FaultPlan.from_dict(self.fault_plan)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ViperConfig":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        extra = set(data) - known
        if extra:
            raise ConfigurationError(f"unknown config keys: {sorted(extra)}")
        return cls(**data)
