"""Declarative experiment configuration.

:class:`ViperConfig` gathers the knobs a deployment chooses — hardware
profile, serializer, transfer strategy / capture mode, notification vs
polling discovery, flush policy — into one serializable object, so
examples and scripts can describe a run as data.  ``from_dict`` accepts
the plain-dict form (e.g. parsed from JSON).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # resilience imports lazily to avoid a module cycle
    from repro.resilience.faults import FaultPlan
    from repro.resilience.retry import RetryPolicy
from repro.substrates.profiles import FRONTIER, LAPTOP, POLARIS, HardwareProfile
from repro.dnn.serialization import H5LikeSerializer, Serializer, ViperSerializer
from repro.core.transfer.delta import DEFAULT_DELTA_CHUNK_BYTES, DeltaConfig
from repro.core.transfer.pipeline import DEFAULT_CHUNK_BYTES, PipelineConfig
from repro.core.transfer.strategies import CaptureMode, TransferStrategy

__all__ = ["ViperConfig"]

_PROFILES = {"polaris": POLARIS, "frontier": FRONTIER, "laptop": LAPTOP}
_SERIALIZERS = {"viper": ViperSerializer, "h5py": H5LikeSerializer}


@dataclass
class ViperConfig:
    """One deployment's configuration knobs."""

    profile: str = "polaris"
    serializer: str = "viper"
    strategy: Optional[str] = None     # None = let the selector decide
    mode: str = "async"
    flush_history: bool = False
    poll_interval: float = 0.0         # 0 = push notifications
    topic: str = "model-updates"
    # Chunked, pipelined transfer path (off = original monolithic path).
    pipeline: bool = False
    pipeline_chunk_bytes: int = DEFAULT_CHUNK_BYTES
    pipeline_lanes: int = 2
    # Delta/compressed wire path (off = every save ships the full blob).
    # ``compression`` applies to the literal chunks of a delta frame:
    # "none", "zlib", or "lz4" (when the package is installed).
    delta: bool = False
    delta_chunk_bytes: int = DEFAULT_DELTA_CHUNK_BYTES
    compression: str = "none"
    # Resilience: retry budget per site, strategy failover down the
    # GPU -> HOST -> PFS chain, and an optional fault plan (plain-dict
    # form of resilience.FaultPlan.to_dict) armed for the session.
    retry_max_attempts: int = 3
    retry_base_delay: float = 0.005
    retry_max_delay: float = 1.0
    retry_jitter: float = 0.25
    failover: bool = True
    fault_plan: Optional[Dict[str, Any]] = None
    # Crash recovery: a journal directory makes metadata mutations
    # durable (write-ahead) and mirrors the PFS to real files; recover
    # replays it on startup.  notify_queue_max bounds each subscriber's
    # notification queue (0 = unbounded); staleness_deadline arms the
    # consumer's fallback-to-polling watchdog (None = push-only).
    journal_dir: Optional[str] = None
    recover: bool = False
    notify_queue_max: int = 0
    staleness_deadline: Optional[float] = None
    # Canary rollout (off = every discovered version swaps in
    # unconditionally).  See repro.rollout.RolloutPolicy for semantics;
    # None thresholds disable the corresponding health check.
    rollout: bool = False
    rollout_canary_fraction: float = 0.1
    rollout_min_canary_samples: int = 8
    rollout_window: int = 64
    rollout_max_loss_ratio: Optional[float] = 1.5
    rollout_loss_tolerance: float = 1e-6
    rollout_max_latency_ratio: Optional[float] = None
    rollout_max_integrity_errors: int = 0
    rollout_stagger: float = 0.0
    rollout_seed: int = 0
    # Whole-operation retry budget (None = per-attempt checks only).
    retry_total_deadline: Optional[float] = None
    # Fleet health: broker leases (None = no membership registry) and
    # slow-consumer escalation (0 = coalesce only, never evict).
    lease_ttl: Optional[float] = None
    slow_consumer_cycles: int = 0
    # Circuit breakers around the transfer stack's retry sites
    # (off = every call burns its full retry budget against a dead tier).
    breaker: bool = False
    breaker_failure_threshold: int = 3
    breaker_reset_timeout: float = 0.5
    breaker_probe_jitter: float = 0.25
    breaker_half_open_probes: int = 1
    # Admission control in front of the inference server (off = admit
    # everything, the historical behavior).
    admission: bool = False
    admission_rate: float = 1000.0
    admission_burst: float = 32.0
    admission_max_inflight: int = 0
    admission_default_budget: Optional[float] = None
    # Graceful degradation: absorb update-path failures and keep serving
    # last-known-good weights instead of raising out of poll_updates.
    degraded_ok: bool = False

    def __post_init__(self):
        if self.profile not in _PROFILES:
            raise ConfigurationError(
                f"unknown profile {self.profile!r}; options: {sorted(_PROFILES)}"
            )
        if self.serializer not in _SERIALIZERS:
            raise ConfigurationError(
                f"unknown serializer {self.serializer!r}; "
                f"options: {sorted(_SERIALIZERS)}"
            )
        if self.mode not in ("sync", "async"):
            raise ConfigurationError(f"mode must be sync|async, not {self.mode!r}")
        if self.strategy is not None:
            valid = {s.value for s in TransferStrategy}
            if self.strategy not in valid:
                raise ConfigurationError(
                    f"unknown strategy {self.strategy!r}; options: {sorted(valid)}"
                )
        if self.poll_interval < 0:
            raise ConfigurationError("poll_interval must be non-negative")
        if self.pipeline_chunk_bytes <= 0:
            raise ConfigurationError("pipeline_chunk_bytes must be positive")
        if self.pipeline_lanes < 1:
            raise ConfigurationError("pipeline_lanes must be >= 1")
        # DeltaConfig re-validates chunk size and codec name; building it
        # here fails fast at the bad knob.
        self.delta_config()
        if self.recover and self.journal_dir is None:
            raise ConfigurationError("recover=True requires journal_dir")
        if self.notify_queue_max < 0:
            raise ConfigurationError("notify_queue_max must be non-negative")
        if self.staleness_deadline is not None and self.staleness_deadline <= 0:
            raise ConfigurationError("staleness_deadline must be positive")
        # RetryPolicy re-validates, but failing at config-construction
        # time points at the bad knob instead of the first transfer.
        self.retry_policy()
        # Same fail-fast rule for the rollout knobs.
        self.rollout_policy()
        if self.fault_plan is not None:
            self.make_fault_plan()
        if self.lease_ttl is not None and self.lease_ttl <= 0:
            raise ConfigurationError("lease_ttl must be positive")
        if self.slow_consumer_cycles < 0:
            raise ConfigurationError("slow_consumer_cycles must be non-negative")
        if self.slow_consumer_cycles and not self.notify_queue_max:
            raise ConfigurationError(
                "slow_consumer_cycles requires notify_queue_max > 0"
            )
        # BreakerConfig / AdmissionConfig re-validate their own knobs.
        self.breaker_config()
        self.admission_config()

    # ------------------------------------------------------------------
    # Resolution to live objects
    # ------------------------------------------------------------------
    def hardware(self) -> HardwareProfile:
        return _PROFILES[self.profile]

    def make_serializer(self) -> Serializer:
        return _SERIALIZERS[self.serializer]()

    def capture_mode(self) -> CaptureMode:
        return CaptureMode.SYNC if self.mode == "sync" else CaptureMode.ASYNC

    def transfer_strategy(self) -> Optional[TransferStrategy]:
        if self.strategy is None:
            return None
        return TransferStrategy(self.strategy)

    def pipeline_config(self) -> PipelineConfig:
        return PipelineConfig(
            enabled=self.pipeline,
            chunk_bytes=self.pipeline_chunk_bytes,
            lanes=self.pipeline_lanes,
        )

    def delta_config(self) -> DeltaConfig:
        return DeltaConfig(
            enabled=self.delta,
            chunk_bytes=self.delta_chunk_bytes,
            compression=self.compression,
        )

    def retry_policy(self) -> "RetryPolicy":
        from repro.resilience.retry import RetryPolicy

        return RetryPolicy(
            max_attempts=self.retry_max_attempts,
            base_delay=self.retry_base_delay,
            max_delay=self.retry_max_delay,
            jitter=self.retry_jitter,
            total_deadline=self.retry_total_deadline,
        )

    def breaker_config(self):
        """The configured BreakerConfig, or None when breakers are off."""
        if not self.breaker:
            return None
        from repro.resilience.breaker import BreakerConfig

        return BreakerConfig(
            failure_threshold=self.breaker_failure_threshold,
            reset_timeout=self.breaker_reset_timeout,
            probe_jitter=self.breaker_probe_jitter,
            half_open_probes=self.breaker_half_open_probes,
        )

    def admission_config(self):
        """The configured AdmissionConfig, or None when admission is off."""
        if not self.admission:
            return None
        from repro.serving.admission import AdmissionConfig

        return AdmissionConfig(
            rate=self.admission_rate,
            burst=self.admission_burst,
            max_inflight=self.admission_max_inflight,
            default_budget=self.admission_default_budget,
        )

    def rollout_policy(self):
        """The configured :class:`~repro.rollout.RolloutPolicy`, or None
        when rollout is off."""
        if not self.rollout:
            return None
        from repro.rollout.policy import RolloutPolicy

        return RolloutPolicy(
            canary_fraction=self.rollout_canary_fraction,
            min_canary_samples=self.rollout_min_canary_samples,
            window=self.rollout_window,
            max_loss_ratio=self.rollout_max_loss_ratio,
            loss_tolerance=self.rollout_loss_tolerance,
            max_latency_ratio=self.rollout_max_latency_ratio,
            max_integrity_errors=self.rollout_max_integrity_errors,
            stagger=self.rollout_stagger,
            seed=self.rollout_seed,
        )

    def make_fault_plan(self) -> Optional["FaultPlan"]:
        """Build the configured fault plan (None when no plan is set)."""
        from repro.resilience.faults import FaultPlan

        if self.fault_plan is None:
            return None
        return FaultPlan.from_dict(self.fault_plan)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ViperConfig":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        extra = set(data) - known
        if extra:
            raise ConfigurationError(f"unknown config keys: {sorted(extra)}")
        return cls(**data)
