"""Viper reproduction: a high-performance I/O framework for transparently
updating, storing, and transferring DNN models (ICPP 2024).

Public surface:

- :class:`repro.Viper` — the framework facade (``save_weights`` /
  ``load_weights``, paper Fig. 4) plus producer/consumer role views.
- :mod:`repro.core.predictor` — the Inference Performance Predictor:
  learning-curve fitting, CIL prediction, schedule search.
- :mod:`repro.core.transfer` — the memory-first transfer engine.
- :mod:`repro.dnn` — the numpy DNN training framework.
- :mod:`repro.apps` — CANDLE NT3/TC1 and PtychoNN workload profiles.
- :mod:`repro.serving` — inference serving (push and polling modes).
- :mod:`repro.workflow` — the coupled producer/consumer simulation that
  regenerates the paper's end-to-end results.
- :mod:`repro.substrates` — the modeled HPC hardware (tiers, links,
  nodes, simulated clock).
- :mod:`repro.resilience` — seeded fault injection and the
  retry/backoff/failover machinery of the resilient transfer path.
"""

from repro.core.api import Viper, ViperConsumer, ViperProducer
from repro.core.callback import CheckpointCallback
from repro.core.predictor import InferencePerformancePredictor
from repro.core.transfer import CaptureMode, TransferStrategy
from repro.resilience import FaultKind, FaultPlan, FaultRule, RetryPolicy
from repro.rollout import RolloutPolicy
from repro.substrates.profiles import LAPTOP, POLARIS

__version__ = "1.0.0"

__all__ = [
    "Viper",
    "ViperProducer",
    "ViperConsumer",
    "CheckpointCallback",
    "InferencePerformancePredictor",
    "CaptureMode",
    "TransferStrategy",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "RolloutPolicy",
    "POLARIS",
    "LAPTOP",
    "__version__",
]
