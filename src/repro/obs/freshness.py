"""Freshness and SLO accounting for the serving fleet.

Checkmate-style freshness as a first-class metric of a model-update
fabric: every consumer is scored on *how far behind* it is (version
lag), *how long* it served behind (stale-serving seconds), and *how
fast* updates reach it (publish -> swap latency, summarized at
p50/p99/p99.9 through the fixed-bucket
:class:`~repro.obs.metrics.Histogram`).

One staleness definition, used everywhere
    A consumer is **stale** from the simulated instant a newer version
    is *published* (registered in the metadata store — loadable) until
    the instant it *swaps* to the then-newest version.  The serving
    server, the DES consumer, and the double buffer all route their
    staleness decisions through this tracker, so stats snapshots and
    the Prometheus export agree by construction.

Declarative SLOs
    :class:`SLOTarget` states per-update budgets; every violation bumps
    a burn counter (``viper_slo_burn_total{slo=...}``), so an alerting
    pipeline consumes plain counters, not re-derived math.

:class:`NullFreshness` preserves the null-object contract: serving hot
paths pay one attribute load and a no-op call when freshness tracking
is off.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import DEFAULT_BUCKETS, NULL_METRICS, Histogram

__all__ = [
    "SLOTarget",
    "ConsumerFreshness",
    "FreshnessTracker",
    "NullFreshness",
    "NULL_FRESHNESS",
    "format_fleet_table",
    "DEFAULT_QUANTILES",
]

#: The fleet report's latency quantiles (paper-style p50/p99/p99.9).
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.99, 0.999)


@dataclass(frozen=True)
class SLOTarget:
    """Declarative freshness targets; ``None`` disables a dimension."""

    #: Budget for one update's publish -> swap latency (sim seconds).
    update_latency: Optional[float] = None
    #: Budget for one contiguous stale interval (sim seconds).
    max_stale_seconds: Optional[float] = None
    #: Maximum tolerated version lag observed at swap time.
    max_version_lag: Optional[int] = None


@dataclass(frozen=True)
class ConsumerFreshness:
    """One fleet-report row: a consumer's freshness scorecard."""

    consumer: str
    model_name: str
    current_version: int
    version_lag: int
    stale_seconds: float        # closed + currently-open stale intervals
    updates: int                # swaps applied
    serves: int
    stale_serves: int
    slo_burns: int
    latency_quantiles: Tuple[Tuple[float, float], ...]  # (q, seconds)

    def quantile(self, q: float) -> float:
        for qq, v in self.latency_quantiles:
            if qq == q:
                return v
        return float("nan")


class _ConsumerState:
    """Mutable per-(model, consumer) accounting (lock held by tracker)."""

    __slots__ = (
        "current_version", "stale_since", "stale_seconds", "updates",
        "serves", "stale_serves", "slo_burns", "latency",
        "degraded_since", "degraded_seconds", "degraded_entries",
    )

    def __init__(self, buckets: Sequence[float]):
        self.current_version = 0
        self.stale_since: Optional[float] = None
        self.stale_seconds = 0.0
        self.updates = 0
        self.serves = 0
        self.stale_serves = 0
        self.slo_burns = 0
        self.latency = Histogram("update_latency", buckets=buckets)
        self.degraded_since: Optional[float] = None
        self.degraded_seconds = 0.0
        self.degraded_entries = 0


class FreshnessTracker:
    """Event-driven freshness accounting over publishes, swaps, serves."""

    enabled = True

    def __init__(
        self,
        *,
        metrics=None,
        slo: Optional[SLOTarget] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.slo = slo if slo is not None else SLOTarget()
        self._buckets = tuple(buckets)
        self._lock = threading.Lock()
        #: model -> version -> publish sim time (first publish wins).
        self._published: Dict[str, Dict[int, float]] = {}
        self._latest: Dict[str, int] = {}
        #: (model, consumer) -> state.
        self._states: Dict[Tuple[str, str], _ConsumerState] = {}
        #: model -> quarantined versions; these never define freshness.
        self._quarantined: Dict[str, set] = {}
        self.stale_rejections = 0
        self.stale_fallbacks = 0
        self.quarantines = 0

    # ------------------------------------------------------------------
    def _state_locked(self, model_name: str, consumer: str) -> _ConsumerState:
        key = (model_name, consumer)
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _ConsumerState(self._buckets)
        return state

    def _burn_locked(
        self, state: _ConsumerState, slo: str, consumer: str, model_name: str
    ) -> None:
        state.slo_burns += 1
        self.metrics.counter(
            "viper_slo_burn_total", slo=slo, consumer=consumer, model=model_name
        ).inc()

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def record_publish(
        self, model_name: str, version: int, sim_time: float
    ) -> None:
        """A version became loadable: start every lagging consumer's clock."""
        with self._lock:
            self._published.setdefault(model_name, {}).setdefault(
                version, float(sim_time)
            )
            if version in self._quarantined.get(model_name, ()):
                # A condemned version can be re-announced (journal replay,
                # broker catch-up) but never re-defines freshness.
                pass
            elif version > self._latest.get(model_name, 0):
                self._latest[model_name] = version
                for (m, _c), state in self._states.items():
                    if m != model_name:
                        continue
                    if state.current_version < version and state.stale_since is None:
                        state.stale_since = float(sim_time)
            latest = self._latest.get(model_name, 0)
        self.metrics.gauge(
            "viper_latest_published_version", model=model_name
        ).set(latest)

    def record_swap(
        self, consumer: str, model_name: str, version: int, sim_time: float
    ) -> float:
        """A consumer swapped ``version`` live; returns its update latency.

        The update latency is publish -> swap on the simulated clock
        (0.0 when the publish instant was never observed, e.g. a ledger
        armed mid-run).
        """
        now = float(sim_time)
        with self._lock:
            state = self._state_locked(model_name, consumer)
            published = self._published.get(model_name, {}).get(version)
            latency = max(0.0, now - published) if published is not None else 0.0
            # Close the open stale interval (if any).
            if state.stale_since is not None:
                delta = max(0.0, now - state.stale_since)
                state.stale_seconds += delta
                state.stale_since = None
                self.metrics.counter(
                    "viper_stale_serving_seconds_total",
                    consumer=consumer, model=model_name,
                ).inc(delta)
                if (
                    self.slo.max_stale_seconds is not None
                    and delta > self.slo.max_stale_seconds
                ):
                    self._burn_locked(state, "stale_seconds", consumer, model_name)
            latest = self._latest.get(model_name, 0)
            lag = max(0, latest - version)
            state.current_version = max(state.current_version, version)
            state.updates += 1
            state.latency.observe(latency)
            # Swapped to an already-superseded version: still stale.
            if lag > 0:
                state.stale_since = now
            if (
                self.slo.update_latency is not None
                and latency > self.slo.update_latency
            ):
                self._burn_locked(state, "update_latency", consumer, model_name)
            if (
                self.slo.max_version_lag is not None
                and lag > self.slo.max_version_lag
            ):
                self._burn_locked(state, "version_lag", consumer, model_name)
        self.metrics.gauge(
            "viper_consumer_version_lag", consumer=consumer, model=model_name
        ).set(lag)
        self.metrics.histogram(
            "viper_update_latency_sim_seconds",
            buckets=self._buckets, consumer=consumer, model=model_name,
        ).observe(latency)
        return latency

    def record_serve(
        self, consumer: str, model_name: str, version: int, sim_time: float
    ) -> bool:
        """One request served with ``version``; True when it was stale."""
        with self._lock:
            state = self._state_locked(model_name, consumer)
            stale = version < self._latest.get(model_name, 0)
            state.serves += 1
            if stale:
                state.stale_serves += 1
        if stale:
            self.metrics.counter(
                "viper_stale_serves_total", consumer=consumer, model=model_name
            ).inc()
        return stale

    def record_stale_rejection(self, consumer: str, model_name: str) -> None:
        """A stale version was refused at the double-buffer stage."""
        with self._lock:
            self.stale_rejections += 1
        self.metrics.counter(
            "viper_stale_rejections_total", consumer=consumer, model=model_name
        ).inc()

    def record_stale_fallback(self, consumer: str, model_name: str) -> None:
        """A staleness watchdog fired and fell back to a metadata poll."""
        with self._lock:
            self.stale_fallbacks += 1
        self.metrics.counter(
            "viper_stale_fallbacks_by_consumer_total",
            consumer=consumer, model=model_name,
        ).inc()

    def record_degraded_enter(
        self, consumer: str, model_name: str, sim_time: float
    ) -> None:
        """``consumer`` lost its update path and is serving last-known-good.

        Idempotent while already degraded — the open interval keeps
        accruing from its original start.
        """
        with self._lock:
            state = self._state_locked(model_name, consumer)
            if state.degraded_since is not None:
                return
            state.degraded_since = float(sim_time)
            state.degraded_entries += 1
        self.metrics.counter(
            "viper_degraded_mode_entries_total",
            consumer=consumer, model=model_name,
        ).inc()

    def record_degraded_exit(
        self, consumer: str, model_name: str, sim_time: float
    ) -> float:
        """``consumer``'s update path healed; returns the interval length."""
        with self._lock:
            state = self._state_locked(model_name, consumer)
            if state.degraded_since is None:
                return 0.0
            delta = max(0.0, float(sim_time) - state.degraded_since)
            state.degraded_seconds += delta
            state.degraded_since = None
        self.metrics.counter(
            "viper_degraded_seconds_total",
            consumer=consumer, model=model_name,
        ).inc(delta)
        return delta

    def record_quarantine(
        self, model_name: str, version: int, sim_time: float
    ) -> None:
        """``version`` was condemned: it no longer defines freshness.

        Rewinds the model's latest pointer to the newest published
        non-quarantined version and closes the open stale interval of
        every consumer that is now current again — consumers were only
        "behind" relative to a version that turned out to be poison, and
        staleness accounting must not keep charging them for it.
        """
        now = float(sim_time)
        closed: List[Tuple[str, float]] = []  # (consumer, interval seconds)
        with self._lock:
            self._quarantined.setdefault(model_name, set())
            if version in self._quarantined[model_name]:
                return
            self._quarantined[model_name].add(version)
            self.quarantines += 1
            survivors = [
                v
                for v in self._published.get(model_name, {})
                if v not in self._quarantined[model_name]
            ]
            latest = max(survivors) if survivors else 0
            self._latest[model_name] = latest
            for (m, consumer), state in self._states.items():
                if m != model_name:
                    continue
                if (
                    state.stale_since is not None
                    and state.current_version >= latest
                ):
                    delta = max(0.0, now - state.stale_since)
                    state.stale_seconds += delta
                    state.stale_since = None
                    closed.append((consumer, delta))
        self.metrics.counter(
            "viper_quarantines_total", model=model_name
        ).inc()
        self.metrics.gauge(
            "viper_latest_published_version", model=model_name
        ).set(latest)
        for consumer, delta in closed:
            self.metrics.counter(
                "viper_stale_serving_seconds_total",
                consumer=consumer, model=model_name,
            ).inc(delta)
            self.metrics.gauge(
                "viper_consumer_version_lag", consumer=consumer, model=model_name
            ).set(0)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def latest_version(self, model_name: str) -> int:
        with self._lock:
            return self._latest.get(model_name, 0)

    def is_stale(self, consumer: str, model_name: str, version: int) -> bool:
        """The one staleness predicate: behind the newest publish."""
        with self._lock:
            return version < self._latest.get(model_name, 0)

    def version_lag(self, consumer: str, model_name: str) -> int:
        with self._lock:
            state = self._states.get((model_name, consumer))
            current = state.current_version if state is not None else 0
            return max(0, self._latest.get(model_name, 0) - current)

    def stale_seconds(
        self, consumer: str, model_name: str, now: Optional[float] = None
    ) -> float:
        """Closed stale intervals plus the open one up to ``now``."""
        with self._lock:
            state = self._states.get((model_name, consumer))
            if state is None:
                return 0.0
            total = state.stale_seconds
            if state.stale_since is not None and now is not None:
                total += max(0.0, float(now) - state.stale_since)
            return total

    def degraded_seconds(
        self, consumer: str, model_name: str, now: Optional[float] = None
    ) -> float:
        """Closed degraded intervals plus the open one up to ``now``."""
        with self._lock:
            state = self._states.get((model_name, consumer))
            if state is None:
                return 0.0
            total = state.degraded_seconds
            if state.degraded_since is not None and now is not None:
                total += max(0.0, float(now) - state.degraded_since)
            return total

    def is_degraded(self, consumer: str, model_name: str) -> bool:
        with self._lock:
            state = self._states.get((model_name, consumer))
            return state is not None and state.degraded_since is not None

    def update_latency_quantiles(
        self,
        consumer: str,
        model_name: str,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> Tuple[Tuple[float, float], ...]:
        with self._lock:
            state = self._states.get((model_name, consumer))
        if state is None:
            return tuple((q, float("nan")) for q in quantiles)
        return tuple((q, state.latency.quantile(q)) for q in quantiles)

    def fleet(
        self,
        model_name: str,
        now: Optional[float] = None,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> Tuple[ConsumerFreshness, ...]:
        """Snapshot every consumer of ``model_name``, sorted by name."""
        with self._lock:
            latest = self._latest.get(model_name, 0)
            consumers = sorted(
                c for (m, c) in self._states if m == model_name
            )
        rows: List[ConsumerFreshness] = []
        for consumer in consumers:
            with self._lock:
                state = self._states[(model_name, consumer)]
                stale = state.stale_seconds
                if state.stale_since is not None and now is not None:
                    stale += max(0.0, float(now) - state.stale_since)
                row = ConsumerFreshness(
                    consumer=consumer,
                    model_name=model_name,
                    current_version=state.current_version,
                    version_lag=max(0, latest - state.current_version),
                    stale_seconds=stale,
                    updates=state.updates,
                    serves=state.serves,
                    stale_serves=state.stale_serves,
                    slo_burns=state.slo_burns,
                    latency_quantiles=tuple(
                        (q, state.latency.quantile(q)) for q in quantiles
                    ),
                )
            rows.append(row)
        return tuple(rows)


def format_fleet_table(
    rows: Sequence[ConsumerFreshness], latest_version: int = 0
) -> str:
    """Render the fleet freshness report behind ``repro obs fleet``."""
    if not rows:
        return "(no consumers tracked)"
    header = (
        f"{'consumer':<14} {'ver':>4} {'lag':>4} {'stale_s':>9} "
        f"{'updates':>8} {'stale_srv':>10} {'burns':>6} "
        f"{'p50':>9} {'p99':>9} {'p99.9':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        qs = dict(row.latency_quantiles)
        lines.append(
            f"{row.consumer:<14} {row.current_version:>4} {row.version_lag:>4} "
            f"{row.stale_seconds:>9.4f} {row.updates:>8} "
            f"{row.stale_serves:>10} {row.slo_burns:>6} "
            f"{qs.get(0.5, float('nan')):>9.4f} "
            f"{qs.get(0.99, float('nan')):>9.4f} "
            f"{qs.get(0.999, float('nan')):>9.4f}"
        )
    if latest_version:
        lines.append(f"latest published version: v{latest_version}")
    return "\n".join(lines)


class NullFreshness(FreshnessTracker):
    """Do-nothing tracker: the zero-overhead default."""

    enabled = False

    def __init__(self):
        super().__init__()

    def record_publish(self, model_name, version, sim_time):  # type: ignore[override]
        pass

    def record_swap(self, consumer, model_name, version, sim_time):  # type: ignore[override]
        return 0.0

    def record_serve(self, consumer, model_name, version, sim_time):  # type: ignore[override]
        return False

    def record_stale_rejection(self, consumer, model_name):  # type: ignore[override]
        pass

    def record_stale_fallback(self, consumer, model_name):  # type: ignore[override]
        pass

    def record_quarantine(self, model_name, version, sim_time):  # type: ignore[override]
        pass

    def record_degraded_enter(self, consumer, model_name, sim_time):  # type: ignore[override]
        pass

    def record_degraded_exit(self, consumer, model_name, sim_time):  # type: ignore[override]
        return 0.0

    def fleet(self, model_name, now=None, quantiles=DEFAULT_QUANTILES):  # type: ignore[override]
        return ()


#: Shared default for instrumented components.
NULL_FRESHNESS = NullFreshness()
