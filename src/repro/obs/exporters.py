"""Exporters: Chrome ``trace_event`` JSON, Prometheus text, JSONL.

Chrome/Perfetto timelines
    :func:`spans_to_chrome_events` turns tracer spans into complete
    (``ph: "X"``) events; :func:`trace_to_chrome_events` renders the
    workflow's :class:`~repro.workflow.trace.Trace` onto the same
    timeline — paired begin/end kinds (capture, transfer, load) become
    duration events, everything else becomes instants.  Both produce
    microsecond ``ts`` sorted ascending, so every track is monotonic.
    ``chrome.load`` the file at ``chrome://tracing`` or `ui.perfetto.dev`.

Prometheus text
    :func:`prometheus_text` writes the exposition format (``# TYPE``
    headers, cumulative ``_bucket``/``_sum``/``_count`` histogram
    series) from a :class:`~repro.obs.metrics.MetricsRegistry`.

JSONL
    :func:`write_jsonl_events` streams spans and/or trace events as one
    JSON object per line, the format log-ingestion pipelines eat.

Lineage
    :func:`lineage_chrome_trace` wraps a
    :class:`~repro.obs.lineage.LifecycleLedger`'s multi-track Chrome
    events into a complete trace document (one track per checkpoint
    version); the ledger's own :meth:`write_jsonl` / the module-level
    :func:`~repro.obs.lineage.read_lineage_jsonl` cover the JSONL
    round trip.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import Span
from repro.workflow.trace import Trace, TraceEvent

__all__ = [
    "spans_to_chrome_events",
    "trace_to_chrome_events",
    "chrome_trace",
    "write_chrome_trace",
    "lineage_chrome_trace",
    "write_lineage_chrome_trace",
    "prometheus_text",
    "write_prometheus",
    "write_jsonl_events",
]

#: Workflow trace kinds that pair into duration events, as
#: (begin_kind, end_kind, span_name) — matched per checkpoint version.
TRACE_SPAN_PAIRS: Tuple[Tuple[str, str, str], ...] = (
    ("ckpt_begin", "ckpt_stall_end", "capture"),
    ("ckpt_stall_end", "delivered", "transfer"),
    ("load_begin", "load_done", "load"),
)

_PID = 1


def _us(seconds: float) -> float:
    """Seconds -> microseconds (Chrome's ts unit), sub-µs preserved."""
    return round(seconds * 1e6, 3)


def _track_ids(tracks: Iterable[str]) -> Dict[str, int]:
    return {track: i + 1 for i, track in enumerate(dict.fromkeys(tracks))}


def _thread_metadata(tids: Dict[str, int]) -> List[Dict[str, Any]]:
    return [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": tid,
            "args": {"name": track},
        }
        for track, tid in tids.items()
    ]


def spans_to_chrome_events(
    spans: Sequence[Span],
    clock: str = "sim",
    tids: Optional[Dict[str, int]] = None,
) -> List[Dict[str, Any]]:
    """Complete-event (``ph: "X"``) records for finished spans.

    ``clock`` selects which timeline feeds ``ts``/``dur``: ``"sim"``
    (simulated seconds) or ``"wall"`` (process perf-counter seconds).
    """
    if clock not in ("sim", "wall"):
        raise ValueError(f"clock must be 'sim' or 'wall', got {clock!r}")
    done = [s for s in spans if s.finished]
    if tids is None:
        tids = _track_ids(s.track for s in done)
    events: List[Dict[str, Any]] = []
    for span in done:
        start = span.start_sim if clock == "sim" else span.start_wall
        dur = span.sim_duration if clock == "sim" else span.wall_duration
        args = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args["wall_us" if clock == "sim" else "sim_us"] = _us(
            span.wall_duration if clock == "sim" else span.sim_duration
        )
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": _us(start),
                "dur": max(_us(dur), 0.0),
                "pid": _PID,
                "tid": tids.setdefault(span.track, len(tids) + 1),
                "args": args,
            }
        )
    events.sort(key=lambda e: e["ts"])
    return _thread_metadata(tids) + events


def trace_to_chrome_events(
    trace: Trace,
    kinds: Optional[Sequence[str]] = None,
    tids: Optional[Dict[str, int]] = None,
) -> List[Dict[str, Any]]:
    """Render a workflow :class:`Trace` as Chrome trace events.

    Paired kinds (:data:`TRACE_SPAN_PAIRS`, matched per checkpoint
    version) become duration events on the *end* actor's track; all
    other kinds become instant (``ph: "i"``) events.  ``kinds`` limits
    which event kinds are emitted (default: everything).
    """
    wanted = None if kinds is None else set(kinds)
    events_in = [e for e in trace if wanted is None or e.kind in wanted]
    if tids is None:
        tids = _track_ids(e.actor for e in events_in)

    # Pair up duration events per checkpoint version; a begin without a
    # matching end (superseded mid-pipeline) degrades to an instant.
    open_begin: Dict[Tuple[str, Any], TraceEvent] = {}
    paired: Dict[int, Tuple[TraceEvent, TraceEvent, str]] = {}
    begin_kinds = {b: (e, name) for b, e, name in TRACE_SPAN_PAIRS}
    end_kinds = {e: b for b, e, _ in TRACE_SPAN_PAIRS}
    consumed: set = set()
    for event in events_in:
        version = event.data.get("version")
        if event.kind in begin_kinds and version is not None:
            open_begin[(event.kind, version)] = event
        if event.kind in end_kinds and version is not None:
            begin = open_begin.pop((end_kinds[event.kind], version), None)
            if begin is not None:
                _end_kind, name = begin_kinds[begin.kind]
                paired[id(event)] = (begin, event, name)
                consumed.add(id(begin))
                consumed.add(id(event))

    out: List[Dict[str, Any]] = []
    for event in events_in:
        if id(event) in paired:
            begin, end, name = paired[id(event)]
            out.append(
                {
                    "name": name,
                    "ph": "X",
                    "ts": _us(begin.time),
                    "dur": max(_us(end.time - begin.time), 0.0),
                    "pid": _PID,
                    "tid": tids.setdefault(end.actor, len(tids) + 1),
                    "args": {**begin.data, **end.data},
                }
            )
        elif id(event) not in consumed:
            out.append(
                {
                    "name": event.kind,
                    "ph": "i",
                    "ts": _us(event.time),
                    "pid": _PID,
                    "tid": tids.setdefault(event.actor, len(tids) + 1),
                    "s": "t",  # thread-scoped instant
                    "args": dict(event.data),
                }
            )
    out.sort(key=lambda e: e["ts"])
    return _thread_metadata(tids) + out


def chrome_trace(
    spans: Sequence[Span] = (),
    trace: Optional[Trace] = None,
    *,
    clock: str = "sim",
    trace_kinds: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Assemble a full Chrome trace document from spans and/or a Trace.

    When both sources are given they share one track-id namespace, so a
    span on track ``"consumer"`` and a trace event from actor
    ``"consumer"`` land in the same lane.
    """
    tids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    meta_seen: set = set()
    for chunk in (
        spans_to_chrome_events(spans, clock=clock, tids=tids) if spans else [],
        trace_to_chrome_events(trace, kinds=trace_kinds, tids=tids)
        if trace is not None
        else [],
    ):
        for event in chunk:
            if event["ph"] == "M":
                key = (event["tid"], event["args"]["name"])
                if key in meta_seen:
                    continue
                meta_seen.add(key)
            events.append(event)
    metadata = [e for e in events if e["ph"] == "M"]
    timed = sorted((e for e in events if e["ph"] != "M"), key=lambda e: e["ts"])
    return {"traceEvents": metadata + timed, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: Sequence[Span] = (), trace: Optional[Trace] = None, **kwargs: Any) -> str:
    """Write :func:`chrome_trace` output to ``path``; returns the path."""
    doc = chrome_trace(spans, trace, **kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, default=_json_default)
    return path


# ----------------------------------------------------------------------
# Lineage -> Chrome trace
# ----------------------------------------------------------------------
def lineage_chrome_trace(ledger) -> Dict[str, Any]:
    """A full Chrome trace document from a lifecycle ledger.

    One track per checkpoint version: critical-path edges as duration
    events, every recorded transition as an instant.
    """
    return {"traceEvents": ledger.to_chrome_events(), "displayTimeUnit": "ms"}


def write_lineage_chrome_trace(path: str, ledger) -> str:
    """Write :func:`lineage_chrome_trace` to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(lineage_chrome_trace(ledger), fh, default=_json_default)
    return path


# ----------------------------------------------------------------------
# Prometheus exposition format
# ----------------------------------------------------------------------
def _fmt_labels(labels, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    items = tuple(labels) + extra
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _fmt_value(v: float) -> str:
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every instrument in Prometheus' text exposition format."""
    lines: List[str] = []
    typed: set = set()
    for inst in registry.collect():
        if inst.name not in typed:
            lines.append(f"# TYPE {inst.name} {inst.kind}")
            typed.add(inst.name)
        if isinstance(inst, (Counter, Gauge)):
            lines.append(f"{inst.name}{_fmt_labels(inst.labels)} {_fmt_value(inst.value)}")
        elif isinstance(inst, Histogram):
            for bound, cumulative in inst.bucket_counts():
                le = _fmt_labels(inst.labels, (("le", _fmt_value(bound)),))
                lines.append(f"{inst.name}_bucket{le} {cumulative}")
            lines.append(f"{inst.name}_sum{_fmt_labels(inst.labels)} {_fmt_value(inst.sum)}")
            lines.append(f"{inst.name}_count{_fmt_labels(inst.labels)} {inst.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path: str, registry: MetricsRegistry) -> str:
    """Write :func:`prometheus_text` output to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(registry))
    return path


# ----------------------------------------------------------------------
# JSONL event logs
# ----------------------------------------------------------------------
def _json_default(obj: Any) -> Any:
    try:
        import numpy as np

        if isinstance(obj, np.generic):
            return obj.item()
    except Exception:  # pragma: no cover - numpy always present here
        pass
    return str(obj)


def write_jsonl_events(
    path: str,
    spans: Sequence[Span] = (),
    trace: Optional[Trace] = None,
) -> int:
    """One JSON object per line: spans first, then raw trace events.

    Returns the number of lines written.
    """
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            if not span.finished:
                continue
            fh.write(
                json.dumps(
                    {
                        "type": "span",
                        "name": span.name,
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        "track": span.track,
                        "start_sim": span.start_sim,
                        "end_sim": span.end_sim,
                        "sim_duration": span.sim_duration,
                        "wall_duration": span.wall_duration,
                        "attrs": span.attrs,
                    },
                    default=_json_default,
                )
            )
            fh.write("\n")
            n += 1
        if trace is not None:
            for event in trace:
                fh.write(
                    json.dumps(
                        {
                            "type": "event",
                            "kind": event.kind,
                            "actor": event.actor,
                            "time": event.time,
                            "data": event.data,
                        },
                        default=_json_default,
                    )
                )
                fh.write("\n")
                n += 1
    return n
