"""Checkpoint lineage: causal trace contexts and per-version ledgers.

Every checkpoint version gets a :class:`TraceContext` at capture — a
trace id plus the producing span's id — which is then *carried*, not
re-derived, through every actor that touches the version: stamped into
the :class:`~repro.core.metadata.ModelRecord`, the broker
:class:`~repro.core.notification.Notification`, the background
:class:`~repro.core.transfer.flush.FlushJob`, and the pipelined
transfer's chunk spans.  Each actor appends a timestamped
:class:`Transition` to the shared :class:`LifecycleLedger`, so one
version's life::

    capture -> transfer -> publish -> notify -> [flush] -> [load]
            -> swap -> first_serve

reconstructs as a single cross-actor distributed trace — even once the
actors become separate processes, because the context travels as a
compact string header (see :meth:`TraceContext.to_header`), not as a
shared Python object.

Wire format (one line, ';'-separated, no escaping — field values must
not contain ';')::

    <trace_id>;<span_id>;<model_name>;<version>

The ledger exports to JSONL (one transition per line, round-trippable
via :func:`read_lineage_jsonl`) and to Chrome ``trace_event`` JSON with
one track per version (critical-path segments as duration events,
every transition as an instant).

:class:`NullLineage` keeps the null-object contract: uninstrumented hot
paths pay one attribute load and a no-op call.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ViperError

__all__ = [
    "TraceContext",
    "Transition",
    "LifecycleLedger",
    "NullLineage",
    "NULL_LINEAGE",
    "LIFECYCLE_STAGES",
    "REQUIRED_STAGES",
    "read_lineage_jsonl",
]

#: Every stage a checkpoint version can pass through, in canonical
#: pipeline order.  The order only breaks timestamp ties; actual
#: ordering is by simulated time.
LIFECYCLE_STAGES: Tuple[str, ...] = (
    "capture",      # producer finished the checkpoint stall
    "transfer",     # blob staged in consumer-side reach (or PFS)
    "publish",      # metadata record registered, version visible
    "notify",       # broker delivered the update notification
    "flush",        # background flusher made the version durable
    "load",         # a consumer finished fetch+deserialize
    "swap",         # double-buffer flip: version is live on a consumer
    "first_serve",  # first inference served from this version
)

#: The stages every delivered version must exhibit for its ledger to be
#: considered complete (gap-free).  ``flush`` and ``load`` are optional
#: detail: flushing is configuration-dependent and loads are folded into
#: the swap on the DES substrate.
REQUIRED_STAGES: Tuple[str, ...] = (
    "capture", "transfer", "publish", "notify", "swap", "first_serve",
)

_STAGE_RANK: Dict[str, int] = {s: i for i, s in enumerate(LIFECYCLE_STAGES)}

#: Process-wide trace-id sequence; deterministic per run (no clocks, no
#: randomness) so replays and resumed runs produce stable ids.
_TRACE_IDS = itertools.count(1)


@dataclass(frozen=True)
class TraceContext:
    """Causal identity of one checkpoint version's distributed trace."""

    trace_id: str
    span_id: int            # parent span id on the producing side
    model_name: str
    version: int

    @classmethod
    def make(cls, model_name: str, version: int) -> "TraceContext":
        """Mint a fresh context at capture time (span_id 0 = root)."""
        if ";" in model_name:
            raise ViperError(
                f"model name {model_name!r} cannot contain ';' "
                f"(reserved by the trace header wire format)"
            )
        trace_id = f"{model_name}-v{version}-{next(_TRACE_IDS):06x}"
        return cls(trace_id, 0, model_name, int(version))

    def child(self, span_id: int) -> "TraceContext":
        """The same trace, re-parented under ``span_id``."""
        return TraceContext(self.trace_id, int(span_id), self.model_name, self.version)

    # -- wire form -----------------------------------------------------
    def to_header(self) -> str:
        """Compact one-line header carried in metadata/notifications."""
        return f"{self.trace_id};{self.span_id};{self.model_name};{self.version}"

    @classmethod
    def from_header(cls, header: str) -> "TraceContext":
        parts = header.split(";")
        if len(parts) != 4:
            raise ViperError(f"malformed trace header {header!r}")
        trace_id, span_id, model_name, version = parts
        try:
            return cls(trace_id, int(span_id), model_name, int(version))
        except ValueError as exc:
            raise ViperError(f"malformed trace header {header!r}") from exc


@dataclass(frozen=True)
class Transition:
    """One timestamped lifecycle state transition of one version."""

    trace_id: str
    span_id: int
    model_name: str
    version: int
    stage: str
    sim_time: float
    wall_time: float
    actor: str
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "lineage",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "model_name": self.model_name,
            "version": self.version,
            "stage": self.stage,
            "sim_time": self.sim_time,
            "wall_time": self.wall_time,
            "actor": self.actor,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Transition":
        return cls(
            trace_id=data["trace_id"],
            span_id=int(data["span_id"]),
            model_name=data["model_name"],
            version=int(data["version"]),
            stage=data["stage"],
            sim_time=float(data["sim_time"]),
            wall_time=float(data.get("wall_time", 0.0)),
            actor=data.get("actor", ""),
            attrs=dict(data.get("attrs", {})),
        )


@dataclass(frozen=True)
class PathSegment:
    """One edge of a version's critical path (earliest-per-stage)."""

    from_stage: str
    to_stage: str
    start: float
    end: float
    actor: str

    @property
    def duration(self) -> float:
        return self.end - self.start


_CHROME_PID = 1


def _us(seconds: float) -> float:
    return round(seconds * 1e6, 3)


class LifecycleLedger:
    """Thread-safe per-version record of lifecycle state transitions.

    All writers (producer thread, engine worker, flusher, consumer
    update threads, serving threads) append concurrently; readers get
    immutable snapshots.
    """

    enabled = True

    def __init__(self, wall_now=time.perf_counter):
        self._wall_now = wall_now
        self._lock = threading.Lock()
        self._transitions: List[Transition] = []
        self._by_version: Dict[Tuple[str, int], List[Transition]] = {}
        self._once: set = set()

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def record(
        self,
        ctx: TraceContext,
        stage: str,
        *,
        sim_time: float,
        actor: str,
        **attrs: Any,
    ) -> Optional[Transition]:
        """Append one transition under ``ctx``'s trace."""
        tr = Transition(
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
            model_name=ctx.model_name,
            version=ctx.version,
            stage=stage,
            sim_time=float(sim_time),
            wall_time=self._wall_now(),
            actor=actor,
            attrs=dict(attrs),
        )
        key = (ctx.model_name, ctx.version)
        with self._lock:
            self._transitions.append(tr)
            self._by_version.setdefault(key, []).append(tr)
        return tr

    def record_header(
        self,
        header: str,
        stage: str,
        *,
        sim_time: float,
        actor: str,
        **attrs: Any,
    ) -> Optional[Transition]:
        """Like :meth:`record` but from the wire-form header.

        An empty header (a record produced before lineage was armed, or
        by an uninstrumented producer) is silently skipped — lineage
        degrades, it never breaks the data path.
        """
        if not header:
            return None
        return self.record(
            TraceContext.from_header(header), stage,
            sim_time=sim_time, actor=actor, **attrs,
        )

    def record_once(
        self,
        header: str,
        stage: str,
        *,
        sim_time: float,
        actor: str,
        **attrs: Any,
    ) -> Optional[Transition]:
        """Record at most one ``(version, stage, actor)`` transition.

        Used for ``first_serve``: every request checks in, only the
        first one per (consumer, version) lands in the ledger.
        """
        if not header:
            return None
        ctx = TraceContext.from_header(header)
        key = (ctx.model_name, ctx.version, stage, actor)
        with self._lock:
            if key in self._once:
                return None
            self._once.add(key)
        return self.record(ctx, stage, sim_time=sim_time, actor=actor, **attrs)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def models(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted({m for (m, _v) in self._by_version}))

    def versions(self, model_name: str) -> List[int]:
        with self._lock:
            return sorted(v for (m, v) in self._by_version if m == model_name)

    def transitions(self) -> Tuple[Transition, ...]:
        with self._lock:
            return tuple(self._transitions)

    def lifecycle(self, model_name: str, version: int) -> Tuple[Transition, ...]:
        """One version's transitions, ordered by (sim time, stage rank)."""
        with self._lock:
            items = list(self._by_version.get((model_name, version), ()))
        items.sort(key=lambda t: (t.sim_time, _STAGE_RANK.get(t.stage, 99)))
        return tuple(items)

    def stages(self, model_name: str, version: int) -> Tuple[str, ...]:
        """Distinct stages this version passed through, pipeline-ordered."""
        seen = {t.stage for t in self.lifecycle(model_name, version)}
        return tuple(s for s in LIFECYCLE_STAGES if s in seen) + tuple(
            sorted(seen - set(LIFECYCLE_STAGES))
        )

    def missing_stages(
        self,
        model_name: str,
        version: int,
        require: Sequence[str] = REQUIRED_STAGES,
    ) -> Tuple[str, ...]:
        present = set(self.stages(model_name, version))
        return tuple(s for s in require if s not in present)

    def complete(
        self,
        model_name: str,
        version: int,
        require: Sequence[str] = REQUIRED_STAGES,
    ) -> bool:
        """True when the version's ledger is gap-free over ``require``."""
        return not self.missing_stages(model_name, version, require)

    def trace_ids(self, model_name: str, version: int) -> Tuple[str, ...]:
        """Distinct trace ids seen for one version (one == causally linked)."""
        return tuple(sorted({
            t.trace_id for t in self.lifecycle(model_name, version)
        }))

    def consumers(self, model_name: str, version: int) -> Tuple[str, ...]:
        """Actors that swapped this version live."""
        return tuple(sorted({
            t.actor for t in self.lifecycle(model_name, version)
            if t.stage == "swap"
        }))

    def critical_path(self, model_name: str, version: int) -> List[PathSegment]:
        """Earliest-per-stage edges from capture to first serve.

        With a fan-out of consumers each stage may occur many times; the
        critical path follows the *earliest* occurrence of each stage —
        the fastest route a byte of this version took to serving.
        """
        earliest: Dict[str, Transition] = {}
        for tr in self.lifecycle(model_name, version):
            cur = earliest.get(tr.stage)
            if cur is None or tr.sim_time < cur.sim_time:
                earliest[tr.stage] = tr
        ordered = sorted(
            earliest.values(),
            key=lambda t: (t.sim_time, _STAGE_RANK.get(t.stage, 99)),
        )
        return [
            PathSegment(
                from_stage=a.stage, to_stage=b.stage,
                start=a.sim_time, end=b.sim_time, actor=b.actor,
            )
            for a, b in zip(ordered, ordered[1:])
        ]

    def end_to_end(self, model_name: str, version: int) -> float:
        """capture -> first first_serve, in simulated seconds (NaN if open)."""
        life = self.lifecycle(model_name, version)
        start = [t for t in life if t.stage == "capture"]
        end = [t for t in life if t.stage == "first_serve"]
        if not start or not end:
            return float("nan")
        return min(t.sim_time for t in end) - min(t.sim_time for t in start)

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def to_chrome_events(self) -> List[Dict[str, Any]]:
        """Chrome ``trace_event`` records: one track per version.

        Critical-path edges are duration (``ph: "X"``) events named
        ``a->b``; every transition is additionally an instant, so the
        multi-consumer fan-out (one swap per replica) stays visible.
        """
        tids: Dict[str, int] = {}
        events: List[Dict[str, Any]] = []
        for model_name in self.models():
            for version in self.versions(model_name):
                track = f"{model_name}/v{version}"
                tid = tids.setdefault(track, len(tids) + 1)
                for seg in self.critical_path(model_name, version):
                    events.append({
                        "name": f"{seg.from_stage}->{seg.to_stage}",
                        "ph": "X",
                        "ts": _us(seg.start),
                        "dur": max(_us(seg.duration), 0.0),
                        "pid": _CHROME_PID,
                        "tid": tid,
                        "args": {"actor": seg.actor},
                    })
                for tr in self.lifecycle(model_name, version):
                    events.append({
                        "name": tr.stage,
                        "ph": "i",
                        "ts": _us(tr.sim_time),
                        "pid": _CHROME_PID,
                        "tid": tid,
                        "s": "t",
                        "args": {
                            "trace_id": tr.trace_id,
                            "actor": tr.actor,
                            **tr.attrs,
                        },
                    })
        events.sort(key=lambda e: e["ts"])
        metadata = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _CHROME_PID,
                "tid": tid,
                "args": {"name": track},
            }
            for track, tid in tids.items()
        ]
        return metadata + events

    def write_jsonl(self, path: str) -> int:
        """One transition per line; returns the number of lines written."""
        transitions = self.transitions()
        with open(path, "w", encoding="utf-8") as fh:
            for tr in transitions:
                fh.write(json.dumps(tr.to_dict(), default=str))
                fh.write("\n")
        return len(transitions)

    def load_transitions(self, transitions: Sequence[Transition]) -> None:
        """Bulk-append already-built transitions (the re-parse path)."""
        with self._lock:
            for tr in transitions:
                self._transitions.append(tr)
                self._by_version.setdefault(
                    (tr.model_name, tr.version), []
                ).append(tr)

    def __len__(self) -> int:
        with self._lock:
            return len(self._transitions)


def read_lineage_jsonl(path: str) -> LifecycleLedger:
    """Rebuild a :class:`LifecycleLedger` from a :meth:`write_jsonl` file.

    Non-lineage lines (the file may interleave span/event records from
    :func:`repro.obs.exporters.write_jsonl_events`) are skipped.
    """
    ledger = LifecycleLedger()
    transitions: List[Transition] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if data.get("type") == "lineage":
                transitions.append(Transition.from_dict(data))
    ledger.load_transitions(transitions)
    return ledger


class NullLineage(LifecycleLedger):
    """Do-nothing ledger: every operation is a constant-time no-op."""

    enabled = False

    def record(self, ctx, stage, *, sim_time, actor, **attrs):  # type: ignore[override]
        return None

    def record_header(self, header, stage, *, sim_time, actor, **attrs):  # type: ignore[override]
        return None

    def record_once(self, header, stage, *, sim_time, actor, **attrs):  # type: ignore[override]
        return None

    def load_transitions(self, transitions) -> None:  # type: ignore[override]
        pass


#: Shared default: instrumented components use this when no ledger is given.
NULL_LINEAGE = NullLineage()
