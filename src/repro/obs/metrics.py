"""Metrics registry: counters, gauges, fixed-bucket histograms.

Instruments are keyed by ``(name, labels)`` — asking the registry for
the same name+labels twice returns the same instrument, so call sites
never coordinate.  All instruments are thread-safe; the engine worker,
the flusher, the notification broker, and the serving thread all write
into one registry concurrently.

Histograms use fixed bucket boundaries (Prometheus-style cumulative
buckets).  Percentiles are *estimates*: linear interpolation inside the
bucket that crosses the requested rank — the classic
``histogram_quantile`` arithmetic — which keeps ``observe`` O(log B)
with bounded memory no matter how many samples arrive.

:class:`NullMetricsRegistry` mirrors the surface with shared no-op
instruments so hot paths can be instrumented unconditionally.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ViperError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "DEFAULT_BUCKETS",
]

LabelItems = Tuple[Tuple[str, str], ...]

#: Default latency-oriented bucket upper bounds, in seconds: 1 µs .. 1000 s
#: on a 1-2.5-5 grid — wide enough for both wall-clock microseconds and
#: simulated PFS transfers of many seconds.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    round(m * 10.0 ** e, 12)
    for e in range(-6, 4)
    for m in (1.0, 2.5, 5.0)
)


class Counter:
    """Monotonically increasing sum."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ViperError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket distribution with cumulative-bucket percentile estimates."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ViperError(f"histogram {name!r} needs at least one bucket")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ViperError(f"histogram {name!r} bucket bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = bounds  # upper bounds; +Inf bucket is implicit
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        v = float(value)
        idx = bisect.bisect_left(self.bounds, v)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += v
            if v < self._min:
                self._min = v
            if v > self._max:
                self._max = v

    # -- read side -----------------------------------------------------
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else float("nan")

    @property
    def min(self) -> float:
        with self._lock:
            return self._min if self._count else float("nan")

    @property
    def max(self) -> float:
        with self._lock:
            return self._max if self._count else float("nan")

    def bucket_counts(self) -> Tuple[Tuple[float, int], ...]:
        """Cumulative (upper_bound, count) pairs, ending with +Inf."""
        with self._lock:
            counts = list(self._counts)
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, c in zip(self.bounds + (math.inf,), counts):
            running += c
            out.append((bound, running))
        return tuple(out)

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0..1) by in-bucket interpolation.

        Exact at the edges — ``q=0`` returns the observed minimum,
        ``q=1`` the observed maximum, and a single observation reports
        itself at every ``q`` — and every interior estimate is clamped
        to the observed min/max so tiny samples don't report a bucket
        bound no sample ever reached.  Values beyond the last bucket
        bound interpolate between that bound and the observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ViperError(f"quantile {q!r} outside [0, 1]")
        with self._lock:
            counts = list(self._counts)
            total = self._count
            lo, hi = self._min, self._max
        if total == 0:
            return float("nan")
        if q == 0.0:
            return lo
        if q == 1.0 or total == 1:
            return hi
        rank = q * total
        running = 0.0
        for i, c in enumerate(counts):
            if running + c >= rank and c > 0:
                if i < len(self.bounds):
                    lower = self.bounds[i - 1] if i > 0 else min(lo, self.bounds[i])
                    upper = self.bounds[i]
                else:
                    # Overflow bucket: everything here is > bounds[-1]
                    # and <= the observed maximum.
                    lower = max(self.bounds[-1], lo)
                    upper = hi
                frac = (rank - running) / c
                est = lower + frac * (upper - lower)
                return min(max(est, lo), hi)
            running += c
        return hi


class _NullInstrument:
    """Absorbs every write; reads as empty."""

    kind = "null"
    name = ""
    labels: LabelItems = ()
    count = 0
    sum = 0.0
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


def _label_items(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create instrument store keyed by name+labels."""

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, LabelItems], object] = {}

    def _get(self, cls, name: str, labels: Dict[str, object], **kwargs):
        key = (name, _label_items(labels))
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = cls(name, key[1], **kwargs)
                self._instruments[key] = inst
            elif not isinstance(inst, cls):
                raise ViperError(
                    f"metric {name!r} already registered as {inst.kind}, "
                    f"requested {cls.kind}"
                )
            return inst

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        kwargs = {} if buckets is None else {"buckets": buckets}
        return self._get(Histogram, name, labels, **kwargs)

    # -- read side -----------------------------------------------------
    def collect(self) -> Tuple[object, ...]:
        """All instruments, sorted by (name, labels) for stable exports."""
        with self._lock:
            items = sorted(self._instruments.items())
        return tuple(inst for _key, inst in items)

    def __iter__(self) -> Iterator[object]:
        return iter(self.collect())

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)


class NullMetricsRegistry(MetricsRegistry):
    """Registry whose instruments absorb everything; the no-op default."""

    enabled = False

    def counter(self, name: str, **labels: object) -> Counter:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, **labels: object) -> Gauge:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name: str, buckets=None, **labels: object) -> Histogram:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def collect(self) -> Tuple[object, ...]:
        return ()


#: Shared default for instrumented components.
NULL_METRICS = NullMetricsRegistry()
