"""Per-stage latency breakdown of a coupled run's trace.

Decomposes each checkpoint's pipeline into the paper's stages —

- **capture**: ``ckpt_begin -> ckpt_stall_end`` (the training stall);
- **transfer**: ``ckpt_stall_end -> delivered`` (async background wire
  time; zero-duration in sync mode, where delivery completes inside the
  stall);
- **notify**: ``(delivered|ckpt_stall_end) -> notified`` (pub/sub push);
- **wait**: ``notified -> load_begin`` (consumer update thread busy with
  an older load);
- **load**: ``load_begin -> load_done``;
- **swap**: the atomic buffer flip (an instant; counted, not timed) —

and aggregates them into count/mean/percentile statistics.  By
construction the per-checkpoint stage durations sum to the end-to-end
``ckpt_begin -> swap`` latency, which is the consistency check
``python -m repro obs`` prints and the test suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.workflow.trace import Trace

__all__ = [
    "StageStats",
    "StageBreakdown",
    "stage_breakdown",
    "format_stage_table",
    "format_lineage_table",
]

#: Stage emission order for tables and exports.
STAGE_ORDER = ("capture", "transfer", "notify", "wait", "load", "swap", "end_to_end")


@dataclass(frozen=True)
class StageStats:
    """Aggregate statistics over one stage's per-checkpoint durations."""

    stage: str
    durations: Tuple[float, ...]

    @property
    def count(self) -> int:
        return len(self.durations)

    @property
    def total(self) -> float:
        return float(np.sum(self.durations)) if self.durations else 0.0

    @property
    def mean(self) -> float:
        return float(np.mean(self.durations)) if self.durations else float("nan")

    def percentile(self, p: float) -> float:
        if not self.durations:
            return float("nan")
        return float(np.percentile(self.durations, p))


@dataclass(frozen=True)
class StageBreakdown:
    """Stage timings of every checkpoint that completed the pipeline."""

    #: version -> {stage: duration seconds}; only swapped-in checkpoints.
    per_version: Dict[int, Dict[str, float]]
    #: version -> ckpt_begin -> swap, the end-to-end update latency.
    end_to_end: Dict[int, float]
    #: versions that entered the pipeline but were never swapped in.
    unfinished: Tuple[int, ...] = ()

    def stages(self) -> Tuple[StageStats, ...]:
        by_stage: Dict[str, List[float]] = {}
        for stages in self.per_version.values():
            for stage, duration in stages.items():
                by_stage.setdefault(stage, []).append(duration)
        by_stage["end_to_end"] = list(self.end_to_end.values())
        return tuple(
            StageStats(name, tuple(by_stage[name]))
            for name in STAGE_ORDER
            if name in by_stage
        )

    def stage(self, name: str) -> Optional[StageStats]:
        for stats in self.stages():
            if stats.stage == name:
                return stats
        return None


def stage_breakdown(trace: Trace) -> StageBreakdown:
    """Decompose a coupled-run trace into per-checkpoint stage latencies."""
    marks: Dict[int, Dict[str, float]] = {}
    for event in trace:
        version = event.data.get("version")
        if version is None:
            continue
        # First occurrence wins: a version has one of each pipeline mark.
        marks.setdefault(int(version), {}).setdefault(event.kind, event.time)

    per_version: Dict[int, Dict[str, float]] = {}
    end_to_end: Dict[int, float] = {}
    unfinished: List[int] = []
    for version in sorted(marks):
        m = marks[version]
        if "ckpt_begin" not in m:
            continue  # the warm-up model (version 0) has no pipeline
        if "swap" not in m:
            unfinished.append(version)
            continue
        begin = m["ckpt_begin"]
        stall_end = m.get("ckpt_stall_end", begin)
        delivered = m.get("delivered", stall_end)  # sync: inside the stall
        notified = m.get("notified", delivered)
        load_begin = m.get("load_begin", notified)
        load_done = m.get("load_done", load_begin)
        swap = m["swap"]
        per_version[version] = {
            "capture": stall_end - begin,
            "transfer": delivered - stall_end,
            "notify": notified - delivered,
            "wait": load_begin - notified,
            "load": load_done - load_begin,
            "swap": swap - load_done,
        }
        end_to_end[version] = swap - begin
    return StageBreakdown(per_version, end_to_end, tuple(unfinished))


def format_stage_table(breakdown: StageBreakdown) -> str:
    """Fixed-width per-stage latency table (seconds)."""
    header = (
        f"{'stage':<12} {'count':>5} {'mean':>10} {'p50':>10} "
        f"{'p95':>10} {'max':>10} {'total':>10}"
    )
    lines = [header, "-" * len(header)]
    for stats in breakdown.stages():
        if stats.stage == "end_to_end":
            lines.append("-" * len(header))
        lines.append(
            f"{stats.stage:<12} {stats.count:>5} {stats.mean:>10.4f} "
            f"{stats.percentile(50):>10.4f} {stats.percentile(95):>10.4f} "
            f"{stats.percentile(100):>10.4f} {stats.total:>10.4f}"
        )
    stage_sum = sum(
        s.total for s in breakdown.stages() if s.stage != "end_to_end"
    )
    e2e = breakdown.stage("end_to_end")
    lines.append(
        f"stage sum {stage_sum:.4f}s vs end-to-end sum "
        f"{e2e.total if e2e else 0.0:.4f}s over {len(breakdown.end_to_end)} "
        f"checkpoint(s)"
    )
    if breakdown.unfinished:
        lines.append(
            f"unfinished (superseded before swap): "
            f"{', '.join(f'v{v}' for v in breakdown.unfinished)}"
        )
    return "\n".join(lines)


def format_lineage_table(ledger, model_name: str, version: int) -> str:
    """Critical-path breakdown of one version's lifecycle ledger.

    Renders the earliest-per-stage path (capture -> ... -> first_serve)
    with per-edge durations, the trace id(s), the consumers that swapped
    the version live, and any missing required stages.  ``ledger`` is a
    :class:`repro.obs.lineage.LifecycleLedger` (duck-typed to avoid an
    import cycle through the workflow layer).
    """
    life = ledger.lifecycle(model_name, version)
    if not life:
        return f"no lineage recorded for {model_name} v{version}"
    lines = [f"lineage: {model_name} v{version}"]
    trace_ids = ledger.trace_ids(model_name, version)
    lines.append(
        f"trace id: {trace_ids[0]}" if len(trace_ids) == 1
        else f"trace ids (BROKEN CAUSALITY): {', '.join(trace_ids)}"
    )
    header = f"{'edge':<26} {'start':>10} {'end':>10} {'dur':>10}  actor"
    lines += [header, "-" * len(header)]
    path = ledger.critical_path(model_name, version)
    for seg in path:
        lines.append(
            f"{seg.from_stage + ' -> ' + seg.to_stage:<26} "
            f"{seg.start:>10.4f} {seg.end:>10.4f} {seg.duration:>10.4f}  "
            f"{seg.actor}"
        )
    e2e = ledger.end_to_end(model_name, version)
    if e2e == e2e:  # not NaN
        lines.append(f"end-to-end (capture -> first serve): {e2e:.4f}s")
    for tr in life:
        if tr.stage == "transfer" and "wire_bytes" in tr.attrs:
            wire = int(tr.attrs["wire_bytes"])
            total = int(tr.attrs.get("bytes", 0))
            ratio = tr.attrs.get("dedup_ratio")
            line = f"wire: {wire:,} B on wire"
            if total:
                line += f" of {total:,} B ({wire / total:.1%})"
            if ratio is not None:
                line += f", dedup hit ratio {float(ratio):.1%}"
            lines.append(line)
            break
    consumers = ledger.consumers(model_name, version)
    if consumers:
        lines.append(f"swapped on: {', '.join(consumers)}")
    missing = ledger.missing_stages(model_name, version)
    if missing:
        lines.append(f"MISSING STAGES: {', '.join(missing)}")
    lines.append(f"{len(life)} transition(s) recorded")
    return "\n".join(lines)
