"""Span tracer: nested, attributed timing spans on two clocks.

Every span records *both* timelines this repository cares about:

- **sim** — simulated seconds (the :class:`~repro.substrates.simclock`
  arithmetic all latency results are made of);
- **wall** — real ``time.perf_counter()`` seconds (what the process
  actually spent, e.g. serialization CPU time).

Three ways to produce spans:

- ``with tracer.span("handler.save", strategy="gpu") as sp:`` — the
  context-manager form; nesting follows the per-thread span stack, so
  child spans parent automatically.
- ``@tracer.trace("serialize")`` — decorator sugar over ``span``.
- ``tracer.open(...)`` / ``tracer.close(...)`` / ``tracer.record(...)``
  — the manual form for event-driven code (the DES workflow actors),
  where a logical span opens in one callback and closes in another and
  parenting must be explicit.

:class:`NullTracer` implements the same surface as no-ops returning
shared singletons; it is the default everywhere, so uninstrumented hot
paths pay one attribute load and a no-op call, nothing more.
"""

from __future__ import annotations

import functools
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import ViperError

__all__ = ["Span", "SpanTracer", "NullTracer", "NULL_TRACER"]


@dataclass
class Span:
    """One timed operation: name, track, parentage, two clocks, attrs."""

    name: str
    span_id: int
    parent_id: Optional[int]
    track: str
    start_wall: float
    start_sim: float
    end_wall: float = float("nan")
    end_sim: float = float("nan")
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def wall_duration(self) -> float:
        return self.end_wall - self.start_wall

    @property
    def sim_duration(self) -> float:
        return self.end_sim - self.start_sim

    @property
    def finished(self) -> bool:
        return self.end_wall == self.end_wall  # not NaN

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to a live span; chainable."""
        self.attrs.update(attrs)
        return self


class _SpanContext:
    """Context manager pairing ``tracer.open`` with ``tracer.close``."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "SpanTracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer.close(self._span)
        return False


class SpanTracer:
    """Thread-safe recorder of nested spans.

    ``sim_now`` supplies the simulated clock (e.g. ``handler.sim_now``
    via a lambda, or an :class:`EventLoop`'s ``clock.now``); when absent
    the sim timestamps default to 0 unless given explicitly.
    """

    enabled = True

    def __init__(
        self,
        sim_now: Optional[Callable[[], float]] = None,
        wall_now: Callable[[], float] = time.perf_counter,
    ):
        self._sim_now = sim_now
        self._wall_now = wall_now
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._finished: List[Span] = []
        self._open: Dict[int, Span] = {}
        self._local = threading.local()
        #: span_id -> the per-thread stack the span was pushed onto, so
        #: close() can evict it from the *owning* thread's stack even
        #: when the close happens out of order or on another thread —
        #: long-lived workers (flusher, broker) must not accumulate
        #: dead stack entries.
        self._stack_of: Dict[int, List[Span]] = {}

    # ------------------------------------------------------------------
    # Clock access
    # ------------------------------------------------------------------
    def _sim(self) -> float:
        return self._sim_now() if self._sim_now is not None else 0.0

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        """The innermost context-manager span on this thread, if any."""
        stack = self._stack()
        try:
            return stack[-1]
        except IndexError:
            return None

    def stack_depth(self) -> int:
        """Open context-manager spans on the calling thread's stack."""
        return len(self._stack())

    # ------------------------------------------------------------------
    # Context-manager / decorator form (implicit per-thread nesting)
    # ------------------------------------------------------------------
    def span(self, name: str, track: Optional[str] = None, **attrs: Any) -> _SpanContext:
        """Open a span that closes when the ``with`` block exits."""
        sp = self.open(name, track=track, parent=self.current(), **attrs)
        stack = self._stack()
        stack.append(sp)
        with self._lock:
            self._stack_of[sp.span_id] = stack
        return _SpanContext(self, sp)

    def trace(self, name: Optional[str] = None, **attrs: Any) -> Callable:
        """Decorator: run the wrapped callable inside a span."""

        def decorate(fn: Callable) -> Callable:
            label = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                with self.span(label, **attrs):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    # ------------------------------------------------------------------
    # Manual form (explicit parenting, for event-driven actors)
    # ------------------------------------------------------------------
    def open(
        self,
        name: str,
        *,
        track: Optional[str] = None,
        parent: Union[Span, int, None] = None,
        start_sim: Optional[float] = None,
        **attrs: Any,
    ) -> Span:
        """Start a span; the caller must :meth:`close` it later."""
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        if track is None:
            track = threading.current_thread().name
        sp = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent_id,
            track=track,
            start_wall=self._wall_now(),
            start_sim=self._sim() if start_sim is None else float(start_sim),
            attrs=dict(attrs),
        )
        with self._lock:
            self._open[sp.span_id] = sp
        return sp

    def close(
        self,
        span: Union[Span, int],
        *,
        end_sim: Optional[float] = None,
        **attrs: Any,
    ) -> Span:
        """Finish a span opened with :meth:`open` or :meth:`span`."""
        span_id = span.span_id if isinstance(span, Span) else span
        with self._lock:
            sp = self._open.pop(span_id, None)
            if sp is None:
                raise ViperError(f"close() of unknown/finished span id {span_id}")
            sp.end_wall = self._wall_now()
            sp.end_sim = self._sim() if end_sim is None else float(end_sim)
            sp.attrs.update(attrs)
            self._finished.append(sp)
            stack = self._stack_of.pop(span_id, None)
            if stack is not None:
                # Evict from the owning thread's stack wherever it sits:
                # an out-of-order or cross-thread close must not leave a
                # dead entry pinned under live ones.
                for i in range(len(stack) - 1, -1, -1):
                    if stack[i].span_id == span_id:
                        del stack[i]
                        break
        return sp

    def record(
        self,
        name: str,
        *,
        start_sim: float,
        end_sim: float,
        track: str = "main",
        parent: Union[Span, int, None] = None,
        **attrs: Any,
    ) -> Span:
        """Append an already-completed span with explicit sim times."""
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        wall = self._wall_now()
        sp = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent_id,
            track=track,
            start_wall=wall,
            start_sim=float(start_sim),
            end_wall=wall,
            end_sim=float(end_sim),
            attrs=dict(attrs),
        )
        with self._lock:
            self._finished.append(sp)
        return sp

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def spans(self, name: str = "") -> Tuple[Span, ...]:
        """Finished spans in completion order, optionally filtered."""
        with self._lock:
            out = tuple(self._finished)
        if name:
            out = tuple(s for s in out if s.name == name)
        return out

    def open_spans(self) -> Tuple[Span, ...]:
        with self._lock:
            return tuple(self._open.values())

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self._open.clear()
            self._stack_of.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)


class _NullSpan(Span):
    """Shared inert span returned by :class:`NullTracer`."""

    def set(self, **attrs: Any) -> "Span":  # noqa: D102 - no-op
        return self


_NULL_SPAN = _NullSpan(
    name="", span_id=0, parent_id=None, track="", start_wall=0.0, start_sim=0.0,
    end_wall=0.0, end_sim=0.0,
)


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> Span:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_CTX = _NullSpanContext()


class NullTracer(SpanTracer):
    """Do-nothing tracer: every operation is a constant-time no-op."""

    enabled = False

    def __init__(self):
        super().__init__()

    def span(self, name: str, track: Optional[str] = None, **attrs: Any) -> _NullSpanContext:  # type: ignore[override]
        return _NULL_CTX

    def trace(self, name: Optional[str] = None, **attrs: Any) -> Callable:
        def decorate(fn: Callable) -> Callable:
            return fn

        return decorate

    def open(self, name: str, **kwargs: Any) -> Span:  # type: ignore[override]
        return _NULL_SPAN

    def close(self, span: Union[Span, int], **kwargs: Any) -> Span:  # type: ignore[override]
        return _NULL_SPAN

    def record(self, name: str, **kwargs: Any) -> Span:  # type: ignore[override]
        return _NULL_SPAN

    def current(self) -> Optional[Span]:
        return None

    def spans(self, name: str = "") -> Tuple[Span, ...]:
        return ()


#: Shared default: instrumented components use this when no tracer is given.
NULL_TRACER = NullTracer()
