"""Observability: spans, metrics, lineage, freshness, exportable timelines.

The rest of the repository argues about *where a checkpoint's time
goes* (capture -> stage -> transfer -> notify -> load -> swap, paper
Fig. 8-10); this package is how you see it.  Five pillars:

- :mod:`repro.obs.tracer` — nested, attributed spans carrying both
  sim-clock and wall-clock timestamps, with a zero-cost
  :class:`NullTracer` default so uninstrumented runs pay nothing;
- :mod:`repro.obs.metrics` — a thread-safe registry of counters,
  gauges, and fixed-bucket histograms keyed by name+labels;
- :mod:`repro.obs.lineage` — causal :class:`TraceContext` propagation
  and the per-version :class:`LifecycleLedger`, reconstructing one
  checkpoint's capture -> first-serve life as a single cross-actor
  distributed trace;
- :mod:`repro.obs.freshness` — per-consumer version lag,
  stale-serving-seconds, update-latency quantiles, and declarative
  :class:`SLOTarget` burn accounting behind the fleet report;
- :mod:`repro.obs.exporters` — Chrome/Perfetto ``trace_event`` JSON,
  Prometheus-style text, and JSONL event logs, plus a converter that
  renders the existing :class:`~repro.workflow.trace.Trace` onto the
  same Chrome-trace timeline.

:mod:`repro.obs.report` aggregates a coupled-run trace into the
per-stage latency breakdown behind ``python -m repro obs`` and renders
the per-version lineage critical path behind ``repro obs lineage``.
"""

from repro.obs.tracer import NULL_TRACER, NullTracer, Span, SpanTracer
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
)
from repro.obs.lineage import (
    LIFECYCLE_STAGES,
    LifecycleLedger,
    NULL_LINEAGE,
    NullLineage,
    REQUIRED_STAGES,
    TraceContext,
    Transition,
    read_lineage_jsonl,
)
from repro.obs.freshness import (
    ConsumerFreshness,
    FreshnessTracker,
    NULL_FRESHNESS,
    NullFreshness,
    SLOTarget,
    format_fleet_table,
)
from repro.obs.exporters import (
    chrome_trace,
    lineage_chrome_trace,
    prometheus_text,
    spans_to_chrome_events,
    trace_to_chrome_events,
    write_chrome_trace,
    write_jsonl_events,
    write_lineage_chrome_trace,
)
from repro.obs.report import (
    StageBreakdown,
    format_lineage_table,
    format_stage_table,
    stage_breakdown,
)

__all__ = [
    "Span",
    "SpanTracer",
    "NullTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "TraceContext",
    "Transition",
    "LifecycleLedger",
    "NullLineage",
    "NULL_LINEAGE",
    "LIFECYCLE_STAGES",
    "REQUIRED_STAGES",
    "read_lineage_jsonl",
    "FreshnessTracker",
    "ConsumerFreshness",
    "SLOTarget",
    "NullFreshness",
    "NULL_FRESHNESS",
    "format_fleet_table",
    "chrome_trace",
    "spans_to_chrome_events",
    "trace_to_chrome_events",
    "write_chrome_trace",
    "write_jsonl_events",
    "lineage_chrome_trace",
    "write_lineage_chrome_trace",
    "prometheus_text",
    "StageBreakdown",
    "stage_breakdown",
    "format_stage_table",
    "format_lineage_table",
]
