"""Observability: spans, metrics, and exportable timelines.

The rest of the repository argues about *where a checkpoint's time
goes* (capture -> stage -> transfer -> notify -> load -> swap, paper
Fig. 8-10); this package is how you see it.  Three pillars:

- :mod:`repro.obs.tracer` — nested, attributed spans carrying both
  sim-clock and wall-clock timestamps, with a zero-cost
  :class:`NullTracer` default so uninstrumented runs pay nothing;
- :mod:`repro.obs.metrics` — a thread-safe registry of counters,
  gauges, and fixed-bucket histograms keyed by name+labels;
- :mod:`repro.obs.exporters` — Chrome/Perfetto ``trace_event`` JSON,
  Prometheus-style text, and JSONL event logs, plus a converter that
  renders the existing :class:`~repro.workflow.trace.Trace` onto the
  same Chrome-trace timeline.

:mod:`repro.obs.report` aggregates a coupled-run trace into the
per-stage latency breakdown behind ``python -m repro obs``.
"""

from repro.obs.tracer import NULL_TRACER, NullTracer, Span, SpanTracer
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
)
from repro.obs.exporters import (
    chrome_trace,
    prometheus_text,
    spans_to_chrome_events,
    trace_to_chrome_events,
    write_chrome_trace,
    write_jsonl_events,
)
from repro.obs.report import StageBreakdown, format_stage_table, stage_breakdown

__all__ = [
    "Span",
    "SpanTracer",
    "NullTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "chrome_trace",
    "spans_to_chrome_events",
    "trace_to_chrome_events",
    "write_chrome_trace",
    "write_jsonl_events",
    "prometheus_text",
    "StageBreakdown",
    "stage_breakdown",
    "format_stage_table",
]
