"""Admission control: bounded load in front of the inference server.

Without it, traffic beyond capacity queues unboundedly inside
:class:`~repro.serving.server.InferenceServer` — latency grows without
limit and *every* request eventually misses its deadline.  Admission
control sheds the excess at the door instead, so the requests that are
admitted finish within budget (the Checkmate property, applied to the
serving side: keep the overload off the hot path).

Three gates, checked in order, each with its own shed reason:

``deadline``
    The request carries an absolute deadline (or a relative budget the
    server resolves against its clock).  A request that can no longer
    finish in time — ``now + t_infer > deadline`` — is shed *before*
    scoring, never after; work on a dead request is pure waste.
``rate``
    A :class:`TokenBucket`: sustained throughput capped at ``rate``
    requests/second with transient bursts up to ``burst``.  The bucket
    is monotone under any time-reversal-free clock — a clock reading
    lower than one already observed mints no tokens (hypothesis-tested).
``concurrency``
    At most ``max_inflight`` requests in service at once.

Every shed is counted (per reason), logged to a bounded decision log
(JSONL-exportable for the CI overload-chaos artifacts), and surfaced to
the caller as a typed, retryable :class:`~repro.errors.OverloadError`
carrying a ``Retry-After``-style hint.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from repro.errors import ConfigurationError, OverloadError
from repro.obs.metrics import NULL_METRICS

__all__ = ["TokenBucket", "AdmissionConfig", "AdmissionController"]


class TokenBucket:
    """Classic token bucket on an explicit clock.

    Invariants (property-tested):

    - admissions over any window ``[t0, t1]`` never exceed
      ``rate * (t1 - t0) + burst``;
    - a ``now`` below the highest clock value already seen refills
      nothing (monotone under time-reversal-free clocks);
    - a denied acquire never mutates state, so deny-then-retry at the
      same instant stays denied.
    """

    def __init__(self, rate: float, burst: float):
        if rate <= 0:
            raise ConfigurationError("token bucket rate must be positive")
        if burst < 1:
            raise ConfigurationError("token bucket burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._lock = threading.Lock()
        self._tokens = float(burst)
        self._last: Optional[float] = None

    def _refill_locked(self, now: float) -> None:
        if self._last is None:
            self._last = now
            return
        elapsed = now - self._last
        if elapsed <= 0:
            return  # a rewinding clock mints nothing
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._last = now

    def available(self, now: float) -> float:
        """Tokens on hand at ``now`` (refilled but not consumed)."""
        with self._lock:
            self._refill_locked(float(now))
            return self._tokens

    def try_acquire(self, now: float, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if on hand; a denial changes nothing."""
        with self._lock:
            self._refill_locked(float(now))
            if self._tokens + 1e-12 < tokens:
                return False
            self._tokens -= tokens
            return True

    def retry_after(self, now: float, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be on hand at the refill rate."""
        with self._lock:
            self._refill_locked(float(now))
            deficit = tokens - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission policy for one server.

    Attributes:
        rate: sustained admission rate, requests per (simulated) second.
        burst: token-bucket depth — transient burst the server absorbs.
        max_inflight: concurrent requests in service (0 = unlimited).
        default_budget: per-request deadline budget in seconds applied
            when the caller passes none (None = requests without an
            explicit deadline are never deadline-shed).
    """

    rate: float = 1000.0
    burst: float = 32.0
    max_inflight: int = 0
    default_budget: Optional[float] = None

    def __post_init__(self):
        if self.rate <= 0:
            raise ConfigurationError("admission rate must be positive")
        if self.burst < 1:
            raise ConfigurationError("admission burst must be >= 1")
        if self.max_inflight < 0:
            raise ConfigurationError("max_inflight must be non-negative")
        if self.default_budget is not None and self.default_budget <= 0:
            raise ConfigurationError("default_budget must be positive")


#: Bounded decision-log depth: enough for a post-mortem, bounded under
#: sustained overload (the counters stay exact past eviction).
_MAX_DECISION_LOG = 10_000


class AdmissionController:
    """Token bucket + concurrency limiter + deadline shedding."""

    def __init__(
        self,
        config: Optional[AdmissionConfig] = None,
        *,
        metrics=None,
        stats=None,
        name: str = "server",
    ):
        self.config = config if config is not None else AdmissionConfig()
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.stats = stats
        self.name = name
        self.bucket = TokenBucket(self.config.rate, self.config.burst)
        self._lock = threading.Lock()
        self._inflight = 0
        self.admitted = 0
        self.shed: Dict[str, int] = {"deadline": 0, "rate": 0, "concurrency": 0}
        #: Shed decisions, newest-last, bounded (JSONL-exportable).
        self.decisions: Deque[Dict[str, float]] = deque(maxlen=_MAX_DECISION_LOG)

    # ------------------------------------------------------------------
    @property
    def shed_total(self) -> int:
        with self._lock:
            return sum(self.shed.values())

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def resolve_deadline(
        self, now: float, deadline: Optional[float]
    ) -> Optional[float]:
        """Explicit deadline wins; otherwise apply the default budget."""
        if deadline is not None:
            return float(deadline)
        if self.config.default_budget is not None:
            return float(now) + self.config.default_budget
        return None

    def _shed(
        self, reason: str, now: float, retry_after: float,
        deadline: Optional[float],
    ) -> OverloadError:
        with self._lock:
            self.shed[reason] = self.shed.get(reason, 0) + 1
            entry = {"t": float(now), "reason": reason,
                     "retry_after": float(retry_after)}
            if deadline is not None:
                entry["deadline"] = float(deadline)
            self.decisions.append(entry)
        self.metrics.counter(
            "server_requests_shed_total", server=self.name, reason=reason
        ).inc()
        if self.stats is not None:
            self.stats.record_shed(reason)
        return OverloadError(
            f"request shed ({reason}); retry after {retry_after:.4f}s",
            reason=reason,
            retry_after=retry_after,
        )

    def admit(
        self,
        now: float,
        *,
        deadline: Optional[float] = None,
        service_time: float = 0.0,
    ) -> Optional[float]:
        """Admit one request at ``now`` or raise :class:`OverloadError`.

        ``service_time`` is the expected time-in-service, so a request
        whose deadline cannot be met even if started immediately is shed
        up front.  Returns the resolved absolute deadline (None when the
        request carries no budget).  A successful admit takes one token
        and one concurrency slot; the caller must :meth:`release` the
        slot when the request finishes.
        """
        now = float(now)
        resolved = self.resolve_deadline(now, deadline)
        if resolved is not None and now + float(service_time) > resolved:
            # Dead on arrival: shed before any token or slot is consumed.
            raise self._shed("deadline", now, 0.0, resolved)
        if not self.bucket.try_acquire(now):
            raise self._shed(
                "rate", now, self.bucket.retry_after(now), resolved
            )
        slot_free = True
        if self.config.max_inflight:
            with self._lock:
                if self._inflight >= self.config.max_inflight:
                    slot_free = False
                else:
                    self._inflight += 1
        else:
            with self._lock:
                self._inflight += 1
        if not slot_free:
            raise self._shed(
                "concurrency", now, max(float(service_time), 0.0), resolved
            )
        with self._lock:
            self.admitted += 1
        return resolved

    def release(self) -> None:
        """One admitted request left service; free its concurrency slot."""
        with self._lock:
            self._inflight = max(0, self._inflight - 1)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            out = dict(self.shed)
            out["admitted"] = self.admitted
            out["inflight"] = self._inflight
            return out

    def write_shed_log(self, path) -> int:
        """Dump the retained shed decisions as JSONL; returns line count."""
        with self._lock:
            decisions = list(self.decisions)
        with open(path, "w", encoding="utf-8") as fh:
            for entry in decisions:
                fh.write(json.dumps(entry) + "\n")
        return len(decisions)
