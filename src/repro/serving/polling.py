"""Repository polling: the discovery baseline Viper replaces.

TensorFlow-Serving and NVIDIA Triton monitor the model repository with a
fixed-interval pull (paper §2/§3; Triton's minimum poll interval is
~1 ms).  Two tools here:

- :class:`RepositoryPoller` — a live poller thread checking the metadata
  store every ``interval`` (wall-clock) seconds and invoking a callback
  when a newer version appears; used by the polling-mode example and the
  live ablation test.
- :func:`expected_discovery_delay` — the analytic model: for updates
  published at arbitrary phase relative to the poll ticks, the discovery
  delay is Uniform(0, interval), expected interval/2; with Viper's push
  notification it is the constant ``PUSH_LATENCY``.  The ablation bench
  compares both on real publish timestamps.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.errors import NotificationError
from repro.core.metadata import MetadataStore

__all__ = ["RepositoryPoller", "expected_discovery_delay", "discovery_delays"]


def discovery_delays(
    publish_times: Sequence[float],
    poll_interval: float,
    first_poll: float = 0.0,
) -> np.ndarray:
    """Per-update discovery delay under fixed-interval polling.

    An update published at ``t`` is discovered at the first poll tick
    ``>= t``; the delay is that tick minus ``t``.
    """
    if poll_interval <= 0:
        raise NotificationError("poll interval must be positive")
    t = np.asarray(publish_times, dtype=np.float64)
    ticks = first_poll + np.ceil(
        np.maximum(t - first_poll, 0.0) / poll_interval
    ) * poll_interval
    return ticks - t


def expected_discovery_delay(poll_interval: float) -> float:
    """Expected delay for a uniformly-phased update: interval / 2."""
    if poll_interval <= 0:
        raise NotificationError("poll interval must be positive")
    return poll_interval / 2.0


class RepositoryPoller:
    """Live polling thread over the metadata store (Triton-style)."""

    def __init__(
        self,
        metadata: MetadataStore,
        model_name: str,
        on_new_version: Callable[[int], None],
        *,
        interval: float = 0.001,
    ):
        if interval <= 0:
            raise NotificationError("poll interval must be positive")
        self.metadata = metadata
        self.model_name = model_name
        self.on_new_version = on_new_version
        self.interval = interval
        self.polls = 0
        self.discovered: List[int] = []
        self._seen = -1
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def poll_once(self) -> Optional[int]:
        """One poll; returns a newly-discovered version or None."""
        self.polls += 1
        record, _cost = self.metadata.latest(self.model_name)
        if record is not None and record.version > self._seen:
            self._seen = record.version
            self.discovered.append(record.version)
            self.on_new_version(record.version)
            return record.version
        return None

    def start(self) -> "RepositoryPoller":
        if self._thread is not None:
            raise NotificationError("poller already started")
        self._thread = threading.Thread(
            target=self._run, daemon=True, name=f"poller-{self.model_name}"
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.poll_once()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
