"""Inference serving substrate.

- :mod:`repro.serving.server` — a live inference server wrapping a
  double-buffered model: handles real predict() requests, applies pushed
  model updates, tracks which version served each request.
- :mod:`repro.serving.client` — fixed-rate request generation from a
  test set (the paper's consumer issues inferences "at a fixed rate").
- :mod:`repro.serving.polling` — the Triton / TensorFlow-Serving style
  repository poller baseline, plus the analytic discovery-delay model
  used by the notification-vs-polling ablation.
- :mod:`repro.serving.admission` — admission control in front of the
  server: token-bucket rate limiting, a concurrency cap, and deadline
  shedding with typed retryable overload errors.
"""

from repro.serving.server import InferenceServer, ServedRequest
from repro.serving.client import RequestGenerator
from repro.serving.polling import RepositoryPoller, expected_discovery_delay
from repro.serving.admission import (
    AdmissionConfig,
    AdmissionController,
    TokenBucket,
)

__all__ = [
    "InferenceServer",
    "ServedRequest",
    "RequestGenerator",
    "RepositoryPoller",
    "expected_discovery_delay",
    "AdmissionConfig",
    "AdmissionController",
    "TokenBucket",
]
