"""A live inference server over a double-buffered model.

The server exposes the consumer side of the paper's workflow for real
(in-process) use: inference requests run an actual ``model.predict`` on
the current double-buffer primary while model updates arrive through a
:class:`~repro.core.api.ViperConsumer`.  Each served request records the
model version that produced it and, when ground truth is supplied, the
achieved loss — the live counterpart of the DES consumer's accounting.

Updates can be applied in two discovery modes:

- ``push``: a broker subscription; :meth:`poll_updates` drains it and
  applies the newest checkpoint (Viper's mode);
- ``pull``: a repository poller checks the metadata store at a fixed
  interval (the Triton/TF-Serving baseline).

A push-mode server can additionally arm a **staleness watchdog**
(``staleness_deadline``): when no update has arrived for that much
simulated time, the server performs one direct metadata poll — so a dead
producer, a crashed broker, or a dropped notification degrades to the
polling baseline instead of serving stale forever.  Every fallback is
counted (``server_stale_fallbacks_total`` and the Stats Manager's
``stale_fallbacks``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ServingError
from repro.dnn.losses import Loss
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.core.api import ViperConsumer

__all__ = ["ServedRequest", "InferenceServer"]


@dataclass(frozen=True)
class ServedRequest:
    """Accounting for one handled inference request."""

    request_id: int
    model_version: int
    loss: float            # NaN when no ground truth was provided
    sim_time: float        # simulated completion time


class InferenceServer:
    """Serve real inferences with seamless model updates.

    ``loss_fn`` (optional) scores each response against ground truth so
    cumulative inference loss can be measured live.  ``t_infer`` is the
    simulated per-request service time (paper Fig. 6 shows it constant).
    """

    def __init__(
        self,
        consumer: ViperConsumer,
        model_name: str,
        *,
        loss_fn: Optional[Loss] = None,
        t_infer: float = 0.005,
        staleness_deadline: Optional[float] = None,
        tracer=None,
        metrics=None,
        name: Optional[str] = None,
    ):
        if t_infer <= 0:
            raise ServingError("t_infer must be positive")
        if staleness_deadline is not None and staleness_deadline <= 0:
            raise ServingError("staleness_deadline must be positive")
        self.consumer = consumer
        self.model_name = model_name
        self.name = name if name is not None else consumer.name
        self.loss_fn = loss_fn
        self.t_infer = t_infer
        self.staleness_deadline = staleness_deadline
        self.stale_fallbacks = 0
        self._last_update_sim = 0.0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        # Lineage/freshness ride along from the deployment: the server is
        # where first_serve lands and where the one staleness definition
        # (behind the newest publish) is applied to live requests.
        self.lineage = consumer.viper.lineage
        self.freshness = consumer.viper.freshness
        self._first_served: set = set()
        self._m_requests = self.metrics.counter(
            "server_requests_total", model=model_name
        )
        self._m_latency = self.metrics.histogram(
            "server_request_wall_seconds", model=model_name
        )
        self._m_stale = self.metrics.counter(
            "server_stale_serves_total", model=model_name
        )
        self._m_swaps = self.metrics.counter(
            "server_updates_applied_total", model=model_name
        )
        self.requests: List[ServedRequest] = []
        self._sim_time = 0.0
        self._lock = threading.Lock()
        self._next_id = 0
        # Newest version known to have been published, maintained by
        # poll_updates(); a request served with an older primary is a
        # "stale serve" (updates pending but not yet swapped in).
        self._latest_known = self.consumer.current_version

    # ------------------------------------------------------------------
    # Model updates (the "model updating thread" of §4.3)
    # ------------------------------------------------------------------
    def poll_updates(self) -> bool:
        """Apply the newest pushed checkpoint if any; True if swapped.

        Without a subscription (or without a staleness deadline) this is
        a direct metadata poll — the pull baseline.  With both, updates
        arrive purely by push; only after ``staleness_deadline`` of
        simulated silence does the watchdog fall back to one poll.
        """
        if self.consumer._sub is None or self.staleness_deadline is None:
            result = self.consumer.refresh(self.model_name)
        else:
            result = self.consumer.refresh()
            if result is None and (
                self._sim_time - self._last_update_sim >= self.staleness_deadline
            ):
                result = self.consumer.refresh(self.model_name)
                self.stale_fallbacks += 1
                self._last_update_sim = self._sim_time  # re-arm the watchdog
                self.consumer.viper.handler.stats.record_stale_fallback()
                self.freshness.record_stale_fallback(self.name, self.model_name)
                self.metrics.counter(
                    "server_stale_fallbacks_total", model=self.model_name
                ).inc()
        if result is not None:
            self._m_swaps.inc()
            # Anchor the serving clock to the pipeline clock: a request
            # served after this swap cannot precede the swap's sim time,
            # so lineage/freshness timestamps stay on one timeline.
            with self._lock:
                self._sim_time = max(
                    self._sim_time, self.consumer.viper.handler.sim_now
                )
            self._last_update_sim = self._sim_time
        if self.metrics.enabled:
            record, _ = self.consumer.viper.metadata.latest(self.model_name)
            if record is not None and record.version > self._latest_known:
                self._latest_known = record.version
        return result is not None

    # ------------------------------------------------------------------
    # Serving (the "inference serving thread")
    # ------------------------------------------------------------------
    def handle(
        self,
        x: np.ndarray,
        y_true: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, ServedRequest]:
        """Serve one request batch with the current primary model."""
        wall_start = time.perf_counter()
        snapshot = self.consumer._buffer.acquire()
        with self.tracer.span(
            "server.request", track="serving", version=snapshot.version
        ):
            pred = snapshot.model.predict(x)
        loss = float("nan")
        if y_true is not None and self.loss_fn is not None:
            loss = self.loss_fn.forward(pred, y_true)
        self._m_requests.inc()
        self._m_latency.observe(time.perf_counter() - wall_start)
        with self._lock:
            self._sim_time += self.t_infer
            req = ServedRequest(
                request_id=self._next_id,
                model_version=snapshot.version,
                loss=loss,
                sim_time=self._sim_time,
            )
            self._next_id += 1
            self.requests.append(req)
        # One staleness definition: behind the newest publish.  With a
        # freshness tracker armed, its predicate decides; otherwise the
        # legacy metadata-poll watermark applies.
        if self.freshness.enabled:
            stale = self.freshness.record_serve(
                self.name, self.model_name, snapshot.version, req.sim_time
            )
        else:
            stale = snapshot.version < self._latest_known
        if stale:
            self._m_stale.inc()
        if self.lineage.enabled and snapshot.version not in self._first_served:
            self._first_served.add(snapshot.version)
            self.lineage.record_once(
                self._trace_header(snapshot.version),
                "first_serve",
                sim_time=req.sim_time,
                actor=self.name,
                request_id=req.request_id,
            )
        return pred, req

    def _trace_header(self, version: int) -> str:
        """The lineage header of ``version`` (empty when unknown)."""
        if version <= 0:
            return ""
        try:
            rec, _ = self.consumer.viper.metadata.record(self.model_name, version)
        except Exception:  # noqa: BLE001 - lineage degrades, never breaks serving
            return ""
        return rec.trace_ctx

    def serve_batch(
        self,
        xs: Sequence[np.ndarray],
        ys: Optional[Sequence[np.ndarray]] = None,
        refresh_between: bool = True,
    ) -> List[ServedRequest]:
        """Serve a sequence of requests, optionally applying updates
        between requests (as the segregated update thread would)."""
        served = []
        for i, x in enumerate(xs):
            if refresh_between:
                self.poll_updates()
            y = ys[i] if ys is not None else None
            _, req = self.handle(x, y)
            served.append(req)
        return served

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def cumulative_loss(self) -> float:
        """Sum of losses over scored requests (the live CIL)."""
        scored = [r.loss for r in self.requests if not np.isnan(r.loss)]
        return float(np.sum(scored)) if scored else 0.0

    def versions_served(self) -> List[int]:
        return [r.model_version for r in self.requests]

    def requests_per_version(self) -> dict:
        out: dict = {}
        for r in self.requests:
            out[r.model_version] = out.get(r.model_version, 0) + 1
        return out
