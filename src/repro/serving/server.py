"""A live inference server over a double-buffered model.

The server exposes the consumer side of the paper's workflow for real
(in-process) use: inference requests run an actual ``model.predict`` on
the current double-buffer primary while model updates arrive through a
:class:`~repro.core.api.ViperConsumer`.  Each served request records the
model version that produced it and, when ground truth is supplied, the
achieved loss — the live counterpart of the DES consumer's accounting.

Updates can be applied in two discovery modes:

- ``push``: a broker subscription; :meth:`poll_updates` drains it and
  applies the newest checkpoint (Viper's mode);
- ``pull``: a repository poller checks the metadata store at a fixed
  interval (the Triton/TF-Serving baseline).

A push-mode server can additionally arm a **staleness watchdog**
(``staleness_deadline``): when no update has arrived for that much
simulated time, the server performs one direct metadata poll — so a dead
producer, a crashed broker, or a dropped notification degrades to the
polling baseline instead of serving stale forever.  Every fallback is
counted (``server_stale_fallbacks_total`` and the Stats Manager's
``stale_fallbacks``).  Because the fallback resolves "latest" through
the metadata store, it can never resurrect a quarantined version — the
latest pointer always names the newest non-quarantined checkpoint.

With a :class:`~repro.rollout.policy.RolloutPolicy` armed, discovery no
longer swaps unconditionally: new versions are staged as **canaries**,
served to at most the policy's traffic fraction, scored live by the
health gate, and promoted or quarantined by the server's
:class:`~repro.rollout.controller.RolloutController` (``self.rollout``).
"""

from __future__ import annotations

import collections
import threading
import time
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import (
    CircuitOpenError,
    NotificationError,
    OverloadError,
    RetriesExhausted,
    ServingError,
)
from repro.dnn.losses import Loss
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.core.api import ViperConsumer
from repro.core.notification import is_quarantine
from repro.rollout.controller import RolloutController
from repro.rollout.policy import RolloutPolicy
from repro.serving.admission import AdmissionConfig, AdmissionController

__all__ = ["ServedRequest", "InferenceServer"]

#: Update-path failures a degraded-capable server absorbs instead of
#: propagating: an open circuit, an exhausted retry budget, a dead
#: broker subscription.  Everything else (corruption, programming
#: errors) still raises.
_DEGRADABLE = (CircuitOpenError, RetriesExhausted, NotificationError)


@dataclass(frozen=True)
class ServedRequest:
    """Accounting for one handled inference request."""

    request_id: int
    model_version: int
    loss: float            # NaN when no ground truth was provided
    sim_time: float        # simulated completion time


class InferenceServer:
    """Serve real inferences with seamless model updates.

    ``loss_fn`` (optional) scores each response against ground truth so
    cumulative inference loss can be measured live.  ``t_infer`` is the
    simulated per-request service time (paper Fig. 6 shows it constant).
    """

    def __init__(
        self,
        consumer: ViperConsumer,
        model_name: str,
        *,
        loss_fn: Optional[Loss] = None,
        t_infer: float = 0.005,
        staleness_deadline: Optional[float] = None,
        tracer=None,
        metrics=None,
        name: Optional[str] = None,
        rollout: Optional[RolloutPolicy] = None,
        max_request_log: Optional[int] = None,
        admission=None,
        degraded_ok: bool = False,
    ):
        if t_infer <= 0:
            raise ServingError("t_infer must be positive")
        if staleness_deadline is not None and staleness_deadline <= 0:
            raise ServingError("staleness_deadline must be positive")
        if max_request_log is not None and max_request_log < 1:
            raise ServingError("max_request_log must be >= 1 (or None)")
        self.consumer = consumer
        self.model_name = model_name
        self.name = name if name is not None else consumer.name
        self.loss_fn = loss_fn
        self.t_infer = t_infer
        self.staleness_deadline = staleness_deadline
        self.stale_fallbacks = 0
        self._last_update_sim = 0.0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        # Lineage/freshness ride along from the deployment: the server is
        # where first_serve lands and where the one staleness definition
        # (behind the newest publish) is applied to live requests.
        self.lineage = consumer.viper.lineage
        self.freshness = consumer.viper.freshness
        self._first_served: set = set()
        self._m_requests = self.metrics.counter(
            "server_requests_total", model=model_name
        )
        self._m_latency = self.metrics.histogram(
            "server_request_wall_seconds", model=model_name
        )
        self._m_stale = self.metrics.counter(
            "server_stale_serves_total", model=model_name
        )
        self._m_swaps = self.metrics.counter(
            "server_updates_applied_total", model=model_name
        )
        #: Per-request log, bounded by ``max_request_log`` (None keeps
        #: everything).  The aggregates below survive eviction, so
        #: :attr:`cumulative_loss` and :meth:`requests_per_version` stay
        #: exact under sustained traffic.
        self.requests: Deque[ServedRequest] = collections.deque(
            maxlen=max_request_log
        )
        self.max_request_log = max_request_log
        self._cum_loss = 0.0
        self._scored_requests = 0
        self._per_version: Dict[int, int] = {}
        self._sim_time = 0.0
        self._lock = threading.Lock()
        self._next_id = 0
        #: Rollout controller (None = legacy unconditional-swap mode).
        self.rollout: Optional[RolloutController] = (
            RolloutController(
                consumer, model_name, rollout,
                name=self.name, metrics=self.metrics,
            )
            if rollout is not None
            else None
        )
        # Newest version known to have been published, maintained by
        # poll_updates(); a request served with an older primary is a
        # "stale serve" (updates pending but not yet swapped in).
        self._latest_known = self.consumer.current_version
        #: Admission control in front of :meth:`handle` (None = admit
        #: everything, the historical behavior).  Accepts an
        #: AdmissionConfig or a pre-built AdmissionController.
        if admission is None:
            self.admission: Optional[AdmissionController] = None
        elif isinstance(admission, AdmissionController):
            self.admission = admission
        else:
            self.admission = AdmissionController(
                admission if isinstance(admission, AdmissionConfig)
                else AdmissionConfig(),
                metrics=self.metrics,
                stats=consumer.viper.handler.stats,
                name=self.name,
            )
        #: Graceful degradation: with ``degraded_ok`` the server absorbs
        #: update-path failures (open circuit, exhausted retries, dead
        #: subscription) and keeps serving the last-known-good weights
        #: instead of raising out of :meth:`poll_updates`.
        self.degraded_ok = degraded_ok
        self.degraded = False
        self.degraded_entries = 0
        self.last_degraded_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Model updates (the "model updating thread" of §4.3)
    # ------------------------------------------------------------------
    def poll_updates(self) -> bool:
        """Apply the newest pushed checkpoint if any; True if swapped.

        Without a subscription (or without a staleness deadline) this is
        a direct metadata poll — the pull baseline.  With both, updates
        arrive purely by push; only after ``staleness_deadline`` of
        simulated silence does the watchdog fall back to one poll.

        With a rollout policy armed the same discovery signals feed the
        canary pipeline instead: new versions stage (never swap) and the
        return value reports health-gate *promotions*.

        Every poll heartbeats the consumer's broker lease — a serving
        loop that keeps polling keeps its membership for free.  With
        ``degraded_ok`` an update-path failure (open circuit, exhausted
        retries, closed subscription) flips the server into **degraded
        mode**: it keeps serving the last-known-good weights and the
        next *successful* poll — the existing catch-up read — exits
        degraded mode cleanly.
        """
        if self.consumer._sub is not None:
            self.consumer.heartbeat(self._sim_time)
        try:
            if self.rollout is not None:
                swapped = self._poll_updates_rollout()
            else:
                swapped = self._poll_updates_plain()
        except _DEGRADABLE as exc:
            if not self.degraded_ok:
                raise
            self._enter_degraded(exc)
            return False
        if self.degraded:
            self._exit_degraded()
        return swapped

    def _poll_updates_plain(self) -> bool:
        if self.consumer._sub is None or self.staleness_deadline is None:
            result = self.consumer.refresh(self.model_name)
        else:
            result = self.consumer.refresh()
            if result is None and (
                self._sim_time - self._last_update_sim >= self.staleness_deadline
            ):
                result = self.consumer.refresh(self.model_name)
                self._record_stale_fallback()
        if result is not None:
            self._after_swap()
        self._advance_watermark()
        return result is not None

    def _enter_degraded(self, exc: BaseException) -> None:
        self.last_degraded_error = exc
        sub = self.consumer._sub
        if sub is not None and not sub.evicted:
            # The absorbed failure may have consumed the notification
            # announcing the update: flag one catch-up read so the next
            # poll re-attempts it — a no-op poll must not exit degraded
            # mode while an update is still missing.
            sub.needs_catchup = True
        if self.degraded:
            return
        self.degraded = True
        self.degraded_entries += 1
        self.freshness.record_degraded_enter(
            self.name, self.model_name, self._sim_time
        )
        self.consumer.viper.handler.stats.record_degraded_entry()
        self.metrics.counter(
            "server_degraded_entries_total", model=self.model_name
        ).inc()

    def _exit_degraded(self) -> None:
        self.degraded = False
        self.last_degraded_error = None
        self.freshness.record_degraded_exit(
            self.name, self.model_name, self._sim_time
        )

    def _record_stale_fallback(self) -> None:
        """Account one staleness-watchdog fallback poll (and re-arm)."""
        self.stale_fallbacks += 1
        self._last_update_sim = self._sim_time
        self.consumer.viper.handler.stats.record_stale_fallback()
        self.freshness.record_stale_fallback(self.name, self.model_name)
        self.metrics.counter(
            "server_stale_fallbacks_total", model=self.model_name
        ).inc()

    def _after_swap(self) -> None:
        """A new version went live: count it and anchor the serving
        clock to the pipeline clock, so a request served after the swap
        cannot precede the swap's sim time and lineage/freshness
        timestamps stay on one timeline."""
        self._m_swaps.inc()
        with self._lock:
            self._sim_time = max(
                self._sim_time, self.consumer.viper.handler.sim_now
            )
        self._last_update_sim = self._sim_time

    def _advance_watermark(self) -> None:
        """Track the newest published version for legacy stale-serve
        accounting.  Advances unconditionally — the watermark must not
        depend on whether a metrics registry is armed."""
        record, _ = self.consumer.viper.metadata.latest(self.model_name)
        if record is not None and record.version > self._latest_known:
            self._latest_known = record.version

    def _poll_updates_rollout(self) -> bool:
        """Rollout-mode discovery: stage canaries, execute verdicts.

        Returns True when the health gate *promoted* a candidate into
        the primary this poll (the rollout-mode meaning of "swapped").
        Quarantine notifications from peer consumers are honored before
        any staging decision, so a condemned version is dropped rather
        than re-evaluated.
        """
        ctrl = self.rollout
        sub = self.consumer._sub
        update_hint = False
        if sub is not None:
            for note in sub.drain():
                if is_quarantine(note):
                    ctrl.on_quarantine_note(note, self._sim_time)
                else:
                    update_hint = True
            if sub.needs_catchup:
                # Seq gap: one metadata catch-up read replaces the
                # pushes that never arrived (the stage below reads it).
                sub.needs_catchup = False
                update_hint = True
        staged = False
        if sub is None or update_hint:
            staged = ctrl.maybe_stage(self._sim_time)
        elif self.staleness_deadline is not None and not ctrl.active and (
            self._sim_time - self._last_update_sim >= self.staleness_deadline
        ):
            # Watchdog fallback: a silent push stream degrades to one
            # metadata poll.  Resolving "latest" through the store means
            # a quarantined version can never come back this way.
            staged = ctrl.maybe_stage(self._sim_time)
            self._record_stale_fallback()
        if staged:
            # Canary activity re-arms the watchdog: the stream is alive.
            self._last_update_sim = self._sim_time
        promoted = ctrl.tick(self._sim_time)
        if promoted:
            self._after_swap()
        self._advance_watermark()
        return promoted

    # ------------------------------------------------------------------
    # Serving (the "inference serving thread")
    # ------------------------------------------------------------------
    def advance_clock(self, now: float) -> float:
        """Advance the serving clock to ``now`` (monotone; never rewinds).

        Open-loop drivers use this to mark request *arrival* instants, so
        admission's token bucket refills on arrival time and the served
        completion times model a single-server queue.  Returns the clock
        after the advance.
        """
        with self._lock:
            self._sim_time = max(self._sim_time, float(now))
            return self._sim_time

    def handle(
        self,
        x: np.ndarray,
        y_true: Optional[np.ndarray] = None,
        *,
        deadline: Optional[float] = None,
        arrival: Optional[float] = None,
    ) -> Tuple[np.ndarray, ServedRequest]:
        """Serve one request batch with the current primary model (or,
        under an active rollout, the canary for its routed fraction).

        ``deadline`` is an absolute simulated instant the response must
        land by; with admission control armed, a request that cannot make
        it (or that exceeds the rate/concurrency envelope) is shed with a
        retryable :class:`~repro.errors.OverloadError` *before* any
        scoring work.  ``arrival`` advances the serving clock to the
        request's arrival instant first (see :meth:`advance_clock`).
        """
        if arrival is not None:
            self.advance_clock(arrival)
        admitted = False
        if self.admission is not None:
            with self._lock:
                now = self._sim_time
            # Raises OverloadError on shed; the shed is counted by the
            # controller before the request touches the model.
            self.admission.admit(
                now, deadline=deadline, service_time=self.t_infer
            )
            admitted = True
        try:
            return self._handle_admitted(x, y_true)
        finally:
            if admitted:
                self.admission.release()

    def _handle_admitted(
        self,
        x: np.ndarray,
        y_true: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, ServedRequest]:
        wall_start = time.perf_counter()
        canary = self.rollout.route() if self.rollout is not None else None
        snapshot = canary if canary is not None else self.consumer._buffer.acquire()
        with self.tracer.span(
            "server.request", track="serving", version=snapshot.version
        ):
            pred = snapshot.model.predict(x)
        loss = float("nan")
        if y_true is not None and self.loss_fn is not None:
            loss = self.loss_fn.forward(pred, y_true)
        self._m_requests.inc()
        wall = time.perf_counter() - wall_start
        self._m_latency.observe(wall)
        with self._lock:
            self._sim_time += self.t_infer
            req = ServedRequest(
                request_id=self._next_id,
                model_version=snapshot.version,
                loss=loss,
                sim_time=self._sim_time,
            )
            self._next_id += 1
            self.requests.append(req)
            if not np.isnan(loss):
                self._cum_loss += loss
                self._scored_requests += 1
            self._per_version[snapshot.version] = (
                self._per_version.get(snapshot.version, 0) + 1
            )
        if self.rollout is not None:
            # Health evidence: the gate scores the arm that served this
            # request; a canary rollback can fire right here.
            if canary is not None:
                self.rollout.observe_canary(pred, loss, wall, req.sim_time)
            else:
                self.rollout.observe_primary(loss, wall)
        # One staleness definition: behind the newest publish.  With a
        # freshness tracker armed, its predicate decides; otherwise the
        # legacy metadata-poll watermark applies.
        if self.freshness.enabled:
            stale = self.freshness.record_serve(
                self.name, self.model_name, snapshot.version, req.sim_time
            )
        else:
            stale = snapshot.version < self._latest_known
        if stale:
            self._m_stale.inc()
        if self.lineage.enabled and snapshot.version not in self._first_served:
            self._first_served.add(snapshot.version)
            self.lineage.record_once(
                self._trace_header(snapshot.version),
                "first_serve",
                sim_time=req.sim_time,
                actor=self.name,
                request_id=req.request_id,
            )
        return pred, req

    def _trace_header(self, version: int) -> str:
        """The lineage header of ``version`` (empty when unknown)."""
        if version <= 0:
            return ""
        try:
            rec, _ = self.consumer.viper.metadata.record(self.model_name, version)
        except Exception:  # noqa: BLE001 - lineage degrades, never breaks serving
            return ""
        return rec.trace_ctx

    def serve_batch(
        self,
        xs: Sequence[np.ndarray],
        ys: Optional[Sequence[np.ndarray]] = None,
        refresh_between: bool = True,
        *,
        budget: Optional[float] = None,
        arrivals: Optional[Sequence[float]] = None,
    ) -> List[ServedRequest]:
        """Serve a sequence of requests, optionally applying updates
        between requests (as the segregated update thread would).

        ``budget`` gives each request a relative deadline (arrival +
        budget, resolved against the serving clock); ``arrivals`` marks
        per-request arrival instants for open-loop replay.  Requests shed
        by admission control are skipped — the controller counts them —
        so the returned list holds only requests actually served.
        """
        served = []
        for i, x in enumerate(xs):
            if refresh_between:
                self.poll_updates()
            y = ys[i] if ys is not None else None
            arrival = float(arrivals[i]) if arrivals is not None else None
            if arrival is not None:
                self.advance_clock(arrival)
            deadline = None
            if budget is not None:
                with self._lock:
                    deadline = self._sim_time + float(budget)
            try:
                _, req = self.handle(x, y, deadline=deadline, arrival=arrival)
            except OverloadError:
                continue
            served.append(req)
        return served

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def cumulative_loss(self) -> float:
        """Sum of losses over scored requests (the live CIL).

        Maintained as a running aggregate, so it stays exact even after
        old entries fall out of a bounded request log.
        """
        with self._lock:
            return self._cum_loss

    @property
    def scored_requests(self) -> int:
        """How many served requests carried a finite loss."""
        with self._lock:
            return self._scored_requests

    def versions_served(self) -> List[int]:
        """Versions of the *retained* request window, oldest first
        (bounded by ``max_request_log``; see :meth:`requests_per_version`
        for the eviction-proof aggregate)."""
        return [r.model_version for r in self.requests]

    def requests_per_version(self) -> dict:
        """Requests served per model version, across the server's whole
        lifetime (exact past eviction)."""
        with self._lock:
            return dict(self._per_version)
