"""Fixed-rate inference request generation.

The paper's problem formulation (§3) has the consumer execute M
inferences "issued at a fixed rate (i.e., continually)".
:class:`RequestGenerator` draws request payloads from a test set in a
deterministic order and stamps each with its issue time ``k * t_infer``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import ServingError

__all__ = ["RequestGenerator"]


@dataclass(frozen=True)
class _Request:
    index: int
    issue_time: float
    x: np.ndarray
    y: Optional[np.ndarray]


class RequestGenerator:
    """Deterministic fixed-rate request stream over a test set.

    Requests cycle through the test set (shuffled once with ``seed``);
    each yields a single-sample batch plus ground truth for loss scoring.
    """

    def __init__(
        self,
        x_test: np.ndarray,
        y_test: Optional[np.ndarray] = None,
        *,
        rate_t_infer: float = 0.005,
        seed: int = 0,
    ):
        if x_test.shape[0] == 0:
            raise ServingError("empty test set")
        if y_test is not None and y_test.shape[0] != x_test.shape[0]:
            raise ServingError("x_test / y_test length mismatch")
        if rate_t_infer <= 0:
            raise ServingError("rate_t_infer must be positive")
        self.x_test = x_test
        self.y_test = y_test
        self.t_infer = rate_t_infer
        self._order = np.random.default_rng(seed).permutation(x_test.shape[0])

    def stream(self, total: int) -> Iterator[_Request]:
        """Yield ``total`` requests with issue times ``k * t_infer``."""
        if total < 0:
            raise ServingError("total must be non-negative")
        n = self.x_test.shape[0]
        for k in range(total):
            idx = self._order[k % n]
            yield _Request(
                index=k,
                issue_time=k * self.t_infer,
                x=self.x_test[idx : idx + 1],
                y=None if self.y_test is None else self.y_test[idx : idx + 1],
            )

    def batch(self, total: int) -> Tuple[list, list]:
        """Materialize ``total`` requests as (xs, ys) lists."""
        xs, ys = [], []
        for req in self.stream(total):
            xs.append(req.x)
            ys.append(req.y)
        return xs, ys

    def replay(self, server, total: int, *, poll_between: bool = True) -> list:
        """Drive ``total`` requests through an inference server.

        Polls for model updates between requests when ``poll_between``
        (the segregated update-thread behaviour), so freshness and
        first-serve lineage accounting advance exactly as a live fleet
        member's would.  Returns the list of
        :class:`~repro.serving.server.ServedRequest` records.
        """
        served = []
        for req in self.stream(total):
            if poll_between:
                server.poll_updates()
            _, record = server.handle(req.x, req.y)
            served.append(record)
        return served
