"""Fault tolerance: background flush, crash, exact resume.

Demonstrates the paper's §4.4 durability path end to end:

1. the producer trains NT3 and checkpoints the *full training state*
   (weights + optimizer slots + progress) through Viper, with history
   flushed to the PFS in the background;
2. the producer node "crashes" — every memory tier is wiped;
3. a replacement producer loads the durable copy (the Stats Manager
   routes the load to the PFS replica), restores the optimizer exactly,
   and resumes training from the recorded iteration;
4. we verify the resumed run matches an uninterrupted one bit-for-bit.

Run:  python examples/fault_tolerance.py
"""

import os

import numpy as np

from repro import CaptureMode, TransferStrategy, Viper
from repro.apps import get_app
from repro.dnn.checkpointing import pack_training_state, unpack_training_state

# Smoke runs shrink the example via this multiplier (see quickstart.py).
SCALE = float(os.environ.get("VIPER_EXAMPLE_SCALE", "1.0"))


def main() -> None:
    app = get_app("nt3a")
    x, y, _xt, _yt = app.dataset(scale=max(0.02, 0.25 * SCALE), seed=17)
    crash_at, total = 3, 6  # epochs

    with Viper(flush_history=True) as viper:
        print(f"phase 1: train {crash_at} epochs, checkpoint the full state")
        producer = app.build_model()
        producer.fit(x, y, epochs=crash_at, batch_size=20, seed=0)
        iteration = crash_at * (-(-x.shape[0] // 20))
        viper.save_weights(
            "nt3-state",
            pack_training_state(producer, producer.optimizer, iteration),
            mode=CaptureMode.SYNC,
            strategy=TransferStrategy.GPU_TO_GPU,
            virtual_bytes=app.checkpoint_bytes,
        )
        viper.drain()
        record, _ = viper.metadata.latest("nt3-state")
        print(f"  checkpoint v{record.version} durable={record.durable} "
              f"replicas={record.replicas}")

        print("phase 2: node crash — wiping every memory tier")
        for node in (viper.producer_node, viper.consumer_node):
            node.gpu.clear()
            node.dram.clear()
        del producer

        print("phase 3: replacement producer resumes from the PFS")
        replacement = app.build_model()
        loaded = viper.load_weights("nt3-state")
        resumed_at = unpack_training_state(
            loaded.state, replacement, replacement.optimizer
        )
        print(f"  loaded from location={loaded.location!r} "
              f"(simulated {loaded.cost.total:.2f}s), resume at iteration "
              f"{resumed_at}")
        print(f"  stats manager: {viper.handler.stats.summary()}")
        replacement.fit(x, y, epochs=total - crash_at, batch_size=20, seed=crash_at)

        print("phase 4: verify against an uninterrupted run")
        # Mirror the exact same two fit calls, with no crash in between.
        straight = app.build_model()
        straight.fit(x, y, epochs=crash_at, batch_size=20, seed=0)
        straight.fit(x, y, epochs=total - crash_at, batch_size=20, seed=crash_at)
        max_diff = max(
            float(np.max(np.abs(straight.state_dict()[k] - replacement.state_dict()[k])))
            for k in straight.state_dict()
        )
        print(f"  max weight divergence vs uninterrupted run: {max_diff:.2e}")
        assert max_diff < 1e-5, "resume diverged from the uninterrupted run"
        print("  exact resume confirmed")


if __name__ == "__main__":
    main()
