"""CANDLE drug-response workflow: compare transfer strategies live.

Trains CANDLE-NT3 (normal-vs-tumor classifier) while a consumer serves
classification requests, once per transfer strategy (GPU-to-GPU,
Host-to-Host, PFS).  Shows what the choice of channel does to the
simulated update latency and the training stall — the live, laptop-scale
version of the paper's Figures 8 and 9.

Run:  python examples/candle_drug_response.py
"""

import os

from repro import CaptureMode, Viper
from repro.apps import get_app
from repro.core.transfer.selector import TransferSelector
from repro.core.transfer.strategies import TransferStrategy
from repro.dnn.losses import CrossEntropyLoss
from repro.serving import InferenceServer, RequestGenerator

# Smoke runs shrink the example via this multiplier (see quickstart.py).
SCALE = float(os.environ.get("VIPER_EXAMPLE_SCALE", "1.0"))


def run_strategy(app, data, strategy: TransferStrategy) -> None:
    x_train, y_train, x_test, y_test = data
    model = app.build_model()

    selector = TransferSelector(forced=strategy)
    with Viper(selector=selector) as viper:
        producer = viper.producer()
        consumer = viper.consumer(model_builder=app.build_model)
        consumer.subscribe()
        server = InferenceServer(
            consumer,
            "nt3",
            loss_fn=CrossEntropyLoss(),
            t_infer=app.timing.t_infer,
        )

        callback = producer.checkpoint_callback(
            "nt3",
            interval=14,
            warmup_iters=14,
            mode=CaptureMode.ASYNC,
            virtual_bytes=app.checkpoint_bytes,
            virtual_tensors=app.checkpoint_tensors,
        )
        model.fit(
            x_train, y_train, epochs=3, batch_size=20, callbacks=[callback], seed=0
        )

        gen = RequestGenerator(x_test, y_test, rate_t_infer=app.timing.t_infer)
        xs, ys = gen.batch(100)
        server.serve_batch(xs, ys)

        updates = len(callback.checkpoints_taken)
        print(
            f"  {strategy.value:<5} updates={updates:2d} "
            f"stall={callback.stall_seconds:7.3f}s "
            f"consumer_load={consumer.load_seconds:7.3f}s "
            f"versions_served={sorted(set(server.versions_served()))} "
            f"CIL(100 reqs)={server.cumulative_loss:7.2f}"
        )


def main() -> None:
    app = get_app("nt3a")
    data = app.dataset(scale=max(0.02, 0.25 * SCALE), seed=5)
    print("NT3 live producer/consumer, one run per transfer strategy:")
    for strategy in (
        TransferStrategy.GPU_TO_GPU,
        TransferStrategy.HOST_TO_HOST,
        TransferStrategy.PFS,
    ):
        run_strategy(app, data, strategy)
    print("note: GPU < Host < PFS in stall and load — the Fig. 8/9 ordering")


if __name__ == "__main__":
    main()
