"""Incremental checkpoints during fine-tuning (frozen encoder).

The paper's §1 workflow ends in a fine-tuning phase; once the PtychoNN
encoder is frozen, every checkpoint differs from the previous one only
in the decoder tensors.  This example:

1. fine-tunes PtychoNN with a frozen encoder;
2. encodes each checkpoint as a delta against its predecessor
   (Check-N-Run-style, `repro.core.transfer.incremental`);
3. ships the deltas through Viper and reconstructs on the consumer side;
4. compares bytes moved and simulated update latency against full
   checkpoints.

Run:  python examples/incremental_finetuning.py
"""

import os

import numpy as np

from repro import CaptureMode, TransferStrategy, Viper
from repro.apps import get_app
from repro.core.transfer.incremental import (
    apply_delta,
    delta_payload_bytes,
    encode_delta,
)
from repro.dnn.serialization import state_dict_nbytes

# Smoke runs shrink the example via this multiplier (see quickstart.py).
# Named EX_SCALE here because main() has a local ``scale`` of its own.
EX_SCALE = float(os.environ.get("VIPER_EXAMPLE_SCALE", "1.0"))


def main() -> None:
    app = get_app("ptychonn")
    model = app.build_model()
    frozen = model.freeze("ptycho_enc")
    x, y, _xt, _yt = app.dataset(scale=max(0.02, 0.05 * EX_SCALE), seed=23)
    print(f"fine-tuning PtychoNN with {frozen} frozen encoder layers")

    with Viper() as viper:
        base = model.state_dict()
        full_bytes = state_dict_nbytes(base)
        scale = app.checkpoint_bytes / full_bytes  # paper-scale factor

        # Ship the base checkpoint whole.
        viper.save_weights(
            "ptychonn", base,
            mode=CaptureMode.SYNC, strategy=TransferStrategy.GPU_TO_GPU,
            virtual_bytes=app.checkpoint_bytes,
        )
        consumer_state = viper.load_weights("ptychonn").state

        total_full, total_delta = 0, 0
        prev = base
        for epoch in range(3):
            model.fit(x, y, epochs=1, batch_size=64, seed=epoch)
            curr = model.state_dict()
            delta = encode_delta(prev, curr, base_version=epoch + 1)
            dbytes = delta_payload_bytes(delta)
            result = viper.save_weights(
                f"ptychonn-delta-{epoch + 2}", delta,
                mode=CaptureMode.ASYNC, strategy=TransferStrategy.GPU_TO_GPU,
                virtual_bytes=int(dbytes * scale),
                virtual_tensors=max(1, len(delta) - 1),
            )
            viper.drain()
            loaded = viper.load_weights(f"ptychonn-delta-{epoch + 2}")
            consumer_state = apply_delta(consumer_state, loaded.state)
            total_full += full_bytes
            total_delta += dbytes
            print(f"  epoch {epoch + 1}: delta {dbytes / 1e3:7.1f} kB "
                  f"({dbytes / full_bytes:6.1%} of full), simulated update "
                  f"latency {result.update_latency:.3f}s")
            prev = curr

        # The consumer's reconstructed state equals the producer's model.
        for key, value in model.state_dict().items():
            np.testing.assert_array_equal(consumer_state[key], value)
        print(f"consumer state verified identical after 3 delta updates")
        print(f"bytes moved: {total_delta / 1e3:.1f} kB vs "
              f"{total_full / 1e3:.1f} kB full "
              f"({1 - total_delta / total_full:.1%} saved)")


if __name__ == "__main__":
    main()
