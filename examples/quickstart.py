"""Quickstart: couple a training producer with an inference consumer.

This is the smallest end-to-end Viper workflow:

1. build the CANDLE-TC1 model and a synthetic dataset;
2. create a Viper deployment (modeled Polaris hardware) and attach a
   checkpoint callback to ``model.fit`` that saves every 25 iterations;
3. subscribe a consumer, train, and watch the consumer pick up model
   updates through the push notification channel;
4. print the simulated update latencies and the versions served.

Run:  python examples/quickstart.py
"""

import os

from repro import CaptureMode, Viper
from repro.apps import get_app

# Smoke runs (tests/integration/test_examples.py) shrink the example via
# this multiplier; 1.0 reproduces the documented output.
SCALE = float(os.environ.get("VIPER_EXAMPLE_SCALE", "1.0"))


def main() -> None:
    app = get_app("tc1")
    model = app.build_model()
    x_train, y_train, x_test, _ = app.dataset(scale=max(0.02, 0.1 * SCALE), seed=7)

    with Viper() as viper:
        producer = viper.producer()
        consumer = viper.consumer(model_builder=app.build_model)
        consumer.subscribe()

        # Checkpoint every 15 iterations after a 20-iteration warm-up.
        # virtual_bytes scales the *timing* to the paper's 4.7 GB TC1
        # checkpoint while the real (small) tensors flow through.
        callback = producer.checkpoint_callback(
            "tc1",
            interval=15,
            warmup_iters=20,
            mode=CaptureMode.ASYNC,
            virtual_bytes=app.checkpoint_bytes,
            virtual_tensors=app.checkpoint_tensors,
        )

        history = model.fit(
            x_train, y_train, epochs=3, batch_size=20, callbacks=[callback], seed=0
        )
        print(f"trained {len(history.iteration_loss)} iterations, "
              f"final epoch loss {history.epoch_loss[-1]:.4f}")
        print(f"checkpoints taken at iterations: {callback.checkpoints_taken}")
        print(f"simulated training stall from checkpointing: "
              f"{callback.stall_seconds:.3f}s")

        # The consumer applies the newest update (older ones supersede).
        result = consumer.refresh("tc1")
        assert result is not None, "no update reached the consumer"
        print(f"consumer now serves version {consumer.current_version} "
              f"(load cost {result.cost.total:.3f}s simulated)")

        # Serve a few inferences with the live model.
        live = consumer.current_model()
        preds = live.predict(x_test[:16])
        print(f"served a 16-request batch; prediction shape {preds.shape}")


if __name__ == "__main__":
    main()
