"""Future-work extension: multi-consumer fan-out and sharded producers.

The paper's conclusion (§6) plans "a multi-producer, multi-consumer
pattern in which we allow the DNN model to be sharded in different
ways".  This example exercises the two simplest members of that family
on the simulation substrate:

- one producer feeding 1, 2, and 4 serving replicas (fan-out);
- the TC1 checkpoint sharded across 1, 2, and 4 data-parallel producers
  (per-shard stall and load shrink with the shard size).

Run:  python examples/multi_consumer.py
"""

import os

from repro.apps import get_app
from repro.core.predictor.schedules import epoch_schedule
from repro.workflow.experiments import measured_loss_curve
from repro.workflow.multi import run_fanout, run_sharded

# Smoke runs shrink the example via this multiplier (see quickstart.py).
SCALE = float(os.environ.get("VIPER_EXAMPLE_SCALE", "1.0"))


def main() -> None:
    app = get_app("tc1")
    print("training TC1 (reduced scale) for a loss curve ...")
    curve = measured_loss_curve(app, scale=max(0.02, 0.1 * SCALE), seed=9)
    schedule = epoch_schedule(app.warmup_iters, app.total_iters, app.iters_per_epoch)

    print("\nfan-out: one producer, K serving replicas")
    for k in (1, 2, 4):
        res = run_fanout(app, schedule, curve, n_consumers=k)
        per = res.total_cil / k
        print(f"  K={k}: total CIL {res.total_cil:10.1f} "
              f"(per-replica {per:9.1f}), "
              f"producer overhead {res.training_overhead:.2f}s")

    print("\nsharding: M data-parallel producers, tensor-sharded checkpoints")
    for m in (1, 2, 4):
        res = run_sharded(app, schedule, curve, n_shards=m)
        print(f"  M={m}: CIL {res.total_cil:10.1f}, "
              f"per-producer stall overhead {res.training_overhead:.2f}s")
    print("\nnote: sharding shrinks the per-checkpoint stall (1/M of the "
          "bytes per producer), so the training overhead drops with M")


if __name__ == "__main__":
    main()
