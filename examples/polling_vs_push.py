"""Discovery ablation: push notifications vs repository polling.

The paper replaces the fixed-interval polling of TensorFlow-Serving /
NVIDIA Triton with a publish-subscribe channel (<1 ms delivery).  This
example measures both discovery mechanisms live:

- a producer publishes a stream of checkpoints;
- a *polling* consumer (Triton-style ``RepositoryPoller``) discovers them
  at its poll ticks;
- a *push* consumer receives broker notifications.

It then prints the analytic discovery-delay model the DES uses for the
same comparison at paper scale.

Run:  python examples/polling_vs_push.py
"""

import time

import numpy as np

from repro import Viper
from repro.apps import get_app
from repro.core.notification import PUSH_LATENCY
from repro.serving.polling import (
    RepositoryPoller,
    discovery_delays,
    expected_discovery_delay,
)


def main() -> None:
    app = get_app("nt3a")
    model = app.build_model()
    state = model.state_dict()

    with Viper() as viper:
        sub = viper.broker.subscribe(viper.topic)

        discovered_at = []
        poller = RepositoryPoller(
            viper.metadata,
            "nt3",
            on_new_version=lambda v: discovered_at.append((v, time.monotonic())),
            interval=0.002,
        ).start()

        published_at = []
        for _ in range(20):
            viper.save_weights("nt3", state)
            published_at.append(time.monotonic())
            viper.drain()
            time.sleep(0.003)  # stagger publishes across poll phases
        poller.stop()

        push_notes = sub.drain()
        print(f"published 20 checkpoints; "
              f"poller discovered {len(poller.discovered)} "
              f"in {poller.polls} polls; push delivered {len(push_notes)}")

        wall_delays = [
            t_disc - t_pub
            for (v, t_disc), t_pub in zip(discovered_at, published_at)
        ]
        print(f"wall-clock polling discovery delay: "
              f"mean {np.mean(wall_delays) * 1e3:.2f} ms "
              f"(poll interval 2 ms)")

    # Analytic model at paper scale: updates every 13 s (TC1 epoch) under
    # a 1 ms poll (Triton's minimum) vs push.
    publish_times = np.arange(16) * 13.043
    for interval in (0.001, 0.1, 1.0):
        delays = discovery_delays(publish_times, interval)
        print(f"poll interval {interval * 1e3:7.1f} ms: measured mean delay "
              f"{delays.mean() * 1e3:7.2f} ms "
              f"(expected {expected_discovery_delay(interval) * 1e3:.2f} ms)")
    print(f"push notification delay: {PUSH_LATENCY * 1e3:.2f} ms "
          f"(constant, <1 ms as in the paper)")


if __name__ == "__main__":
    main()
