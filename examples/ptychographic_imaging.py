"""The paper's motivating workflow: online ptychographic reconstruction.

Reproduces the §1 scenario end to end (at laptop scale):

1. **training warm-up** — the HPC side trains PtychoNN on reconstructed
   ground truth while the beamline waits;
2. **switch to inferences** — the warm-up model ships to the edge, which
   starts pre-processing diffraction patterns with it;
3. **fine-tuning** — training continues; the IPP picks an adaptive
   checkpoint schedule, and every scheduled checkpoint streams to the
   edge through the GPU-to-GPU channel, improving reconstruction quality
   mid-experiment.

Run:  python examples/ptychographic_imaging.py
"""

import os

import numpy as np

from repro import CaptureMode, Viper
from repro.apps import get_app
from repro.dnn.losses import MAELoss
from repro.serving import InferenceServer, RequestGenerator
from repro.workflow.experiments import make_cil_params
from repro.core.transfer.strategies import TransferStrategy

# Smoke runs shrink the example via this multiplier (see quickstart.py).
SCALE = float(os.environ.get("VIPER_EXAMPLE_SCALE", "1.0"))


def main() -> None:
    app = get_app("ptychonn")
    model = app.build_model()
    x_train, y_train, x_test, y_test = app.dataset(scale=max(0.02, 0.05 * SCALE), seed=11)

    iters_per_epoch = -(-x_train.shape[0] // 64)
    warmup_iters = 2 * iters_per_epoch
    total_epochs = 6
    total_iters = total_epochs * iters_per_epoch

    with Viper() as viper:
        producer = viper.producer()
        consumer = viper.consumer(model_builder=app.build_model)
        consumer.subscribe()
        server = InferenceServer(
            consumer, "ptychonn", loss_fn=MAELoss(), t_infer=app.timing.t_infer
        )

        # The IPP derives the schedule from the warm-up losses when the
        # warm-up ends (algorithm mode of the checkpoint callback).
        params = make_cil_params(app, TransferStrategy.GPU_TO_GPU)
        callback = producer.checkpoint_callback(
            "ptychonn",
            algorithm="greedy",
            cil_params=params,
            total_iters=total_iters,
            total_inferences=2000,
            warmup_iters=warmup_iters,
            mode=CaptureMode.ASYNC,
            virtual_bytes=app.checkpoint_bytes,
            virtual_tensors=app.checkpoint_tensors,
        )

        print("phase 1: training warm-up + fine-tuning on the HPC side")
        model.fit(
            x_train,
            y_train,
            epochs=total_epochs,
            batch_size=64,
            callbacks=[callback],
            seed=0,
        )
        schedule = callback.schedule
        print(f"  IPP schedule kind={schedule.kind} "
              f"checkpoints={schedule.num_checkpoints} "
              f"(taken: {len(callback.checkpoints_taken)})")

        print("phase 2/3: the edge serves diffraction patterns, picking up "
              "each update")
        gen = RequestGenerator(x_test, y_test, rate_t_infer=app.timing.t_infer)
        xs, ys = gen.batch(200)
        served = server.serve_batch(xs, ys, refresh_between=True)

        versions = sorted(set(r.model_version for r in served))
        print(f"  versions that served traffic: {versions}")
        first50 = float(np.mean([r.loss for r in served[:50]]))
        last50 = float(np.mean([r.loss for r in served[-50:]]))
        print(f"  mean reconstruction MAE: first 50 requests {first50:.4f} "
              f"-> last 50 requests {last50:.4f}")
        print(f"  live cumulative inference loss: {server.cumulative_loss:.2f}")


if __name__ == "__main__":
    main()
