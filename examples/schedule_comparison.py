"""Mini Figure 10: compare checkpoint schedules on the DES timeline.

Trains CANDLE-TC1 for real (reduced dataset), then replays the measured
loss curve through the coupled producer/consumer simulation under three
checkpoint schedules — epoch baseline, fixed-interval (Algorithm 2), and
the adaptive Checkpoint Frequency Adapter — and reports the cumulative
inference loss of each, exactly like the paper's Figure 10b.

Run:  python examples/schedule_comparison.py
"""

import os

from repro.apps import get_app
from repro.analysis.reporting import format_fig10_table, format_table1
from repro.workflow.experiments import measured_loss_curve, run_schedule_comparison

# Smoke runs shrink the example via this multiplier (see quickstart.py).
# Below 1.0 the epoch budget also drops to 5 (the minimum that clears
# the schedule warm-up), which shortens the DES replay itself.
SCALE = float(os.environ.get("VIPER_EXAMPLE_SCALE", "1.0"))


def main() -> None:
    app = get_app("tc1")
    print("training TC1 (reduced scale) to measure its loss curve ...")
    curve = measured_loss_curve(
        app,
        scale=max(0.02, 0.25 * SCALE),
        seed=3,
        epochs=None if SCALE >= 1.0 else 5,
    )
    print(f"  {curve.size} iterations, loss {curve[0]:.3f} -> {curve[-1]:.3f}")

    print("replaying the curve through the coupled simulation ...")
    results = run_schedule_comparison(app, curve)

    measured_cil = {k: r.cil for k, r in results.items()}
    print()
    print(format_fig10_table("tc1", measured_cil))
    print()
    print(
        format_table1(
            {
                "tc1": {
                    k: {"ckpts": r.checkpoints, "overhead": r.training_overhead}
                    for k, r in results.items()
                }
            }
        )
    )
    print()
    best = min(measured_cil, key=measured_cil.get)
    print(f"lowest cumulative inference loss: {best}")


if __name__ == "__main__":
    main()
