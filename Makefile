# Convenience targets for the Viper reproduction.

.PHONY: install test bench examples experiments clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	for ex in examples/*.py; do echo "== $$ex"; python $$ex || exit 1; done

experiments:
	python -m repro fig8
	python -m repro fig9
	python -m repro fig10
	python -m repro table1

clean:
	rm -rf benchmarks/.curve_cache.npz benchmarks/results .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
