# Convenience targets for the Viper reproduction.

.PHONY: install test lint chaos bench bench-delta bench-overload examples experiments clean

install:
	pip install -e . || python setup.py develop

test:
	PYTHONPATH=src python -m pytest -x -q

# Mirrors CI's lint job (requires: pip install -r requirements-dev.txt).
lint:
	ruff check src tests benchmarks examples
	ruff format --check src/repro/resilience
	mypy src/repro

# Fault-injection suite under an arbitrary seed, like CI's chaos job:
#   make chaos SEED=12345
SEED ?= 0
chaos:
	VIPER_FAULT_SEED=$(SEED) PYTHONPATH=src python -m pytest tests/resilience -q

bench:
	pytest benchmarks/ --benchmark-only

# Delta wire-path benchmark at full payload; regenerates
# benchmarks/results/BENCH_delta.json and enforces the wire/latency gates.
bench-delta:
	PYTHONPATH=src python -m pytest -x -q -s benchmarks/test_perf_delta_transfer.py

# Overload-protection benchmark over the chaos harness; regenerates
# benchmarks/results/BENCH_overload.json and enforces the admitted-p99 /
# shed-rate / broker-memory gates.
bench-overload:
	PYTHONPATH=src python -m pytest -x -q -s benchmarks/test_perf_overload.py

examples:
	for ex in examples/*.py; do echo "== $$ex"; python $$ex || exit 1; done

experiments:
	python -m repro fig8
	python -m repro fig9
	python -m repro fig10
	python -m repro table1

# Caches only: benchmarks/results/ holds checked-in reference results
# and must survive a clean.
clean:
	rm -rf benchmarks/.curve_cache.npz .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
