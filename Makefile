# Convenience targets for the Viper reproduction.

.PHONY: install test bench examples experiments clean

install:
	pip install -e . || python setup.py develop

test:
	PYTHONPATH=src python -m pytest -x -q

bench:
	pytest benchmarks/ --benchmark-only

examples:
	for ex in examples/*.py; do echo "== $$ex"; python $$ex || exit 1; done

experiments:
	python -m repro fig8
	python -m repro fig9
	python -m repro fig10
	python -m repro table1

# Caches only: benchmarks/results/ holds checked-in reference results
# and must survive a clean.
clean:
	rm -rf benchmarks/.curve_cache.npz .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
