"""Fine-grained tensor repository tests."""

import numpy as np
import pytest

from repro.errors import MetadataError, ObjectNotFoundError, StorageError
from repro.repository import TensorRepository
from repro.substrates.memory.storage import TierStore
from repro.substrates.memory.tiers import TierKind, TierSpec

RNG = np.random.default_rng(41)


def make_repo(per_object_overhead=0.01):
    spec = TierSpec(
        name="repo.pfs",
        kind=TierKind.PFS,
        capacity_bytes=10**12,
        read_bw=10**9,
        write_bw=10**9,
        per_object_overhead=per_object_overhead,
    )
    return TensorRepository(TierStore(spec))


def snapshot():
    return {
        "enc/W": RNG.standard_normal((8, 4)).astype(np.float32),
        "enc/b": RNG.standard_normal(4).astype(np.float32),
        "dec/W": RNG.standard_normal((4, 2)).astype(np.float32),
    }


class TestPublish:
    def test_first_version_stores_everything(self):
        repo = make_repo()
        info, cost = repo.publish("m", snapshot())
        assert info.version == 1
        assert set(info.changed) == {"enc/W", "enc/b", "dec/W"}
        assert cost.total > 0
        assert repo.stored_objects("m") == 3

    def test_partial_update_stores_only_changes(self):
        repo = make_repo()
        state = snapshot()
        repo.publish("m", state)
        state2 = {k: v.copy() for k, v in state.items()}
        state2["dec/W"] += 1.0
        info, _cost = repo.publish("m", state2)
        assert info.version == 2
        assert info.changed == ("dec/W",)
        assert repo.stored_objects("m") == 4  # 3 + 1 new blob

    def test_identical_version_stores_nothing(self):
        repo = make_repo()
        state = snapshot()
        repo.publish("m", state)
        info, cost = repo.publish("m", state)
        assert info.changed == ()
        assert info.payload_bytes == 0

    def test_tensor_set_change_rejected(self):
        repo = make_repo()
        repo.publish("m", snapshot())
        with pytest.raises(StorageError):
            repo.publish("m", {"other": np.zeros(2, dtype=np.float32)})

    def test_empty_state_rejected(self):
        with pytest.raises(StorageError):
            make_repo().publish("m", {})


class TestRetrieval:
    def test_full_state_roundtrip(self):
        repo = make_repo()
        state = snapshot()
        repo.publish("m", state)
        loaded, _cost = repo.get_state("m")
        for key in state:
            np.testing.assert_array_equal(loaded[key], state[key])

    def test_structural_sharing_across_versions(self):
        repo = make_repo()
        v1 = snapshot()
        repo.publish("m", v1)
        v2 = {k: v.copy() for k, v in v1.items()}
        v2["dec/W"] += 1.0
        repo.publish("m", v2)
        old, _ = repo.get_state("m", version=1)
        new, _ = repo.get_state("m", version=2)
        np.testing.assert_array_equal(old["dec/W"], v1["dec/W"])
        np.testing.assert_array_equal(new["dec/W"], v2["dec/W"])
        np.testing.assert_array_equal(new["enc/W"], v1["enc/W"])

    def test_partial_tensor_fetch(self):
        repo = make_repo()
        state = snapshot()
        repo.publish("m", state)
        tensor, cost = repo.get_tensor("m", "enc/b")
        np.testing.assert_array_equal(tensor, state["enc/b"])
        # A single-tensor fetch costs less than the full load.
        _full, full_cost = repo.get_state("m")
        assert cost.total < full_cost.total

    def test_changed_since_fetches_only_delta(self):
        repo = make_repo()
        v1 = snapshot()
        repo.publish("m", v1)
        v2 = {k: v.copy() for k, v in v1.items()}
        v2["dec/W"] += 1.0
        repo.publish("m", v2)
        delta, cost = repo.get_changed_since("m", base_version=1)
        assert set(delta) == {"dec/W"}
        _full, full_cost = repo.get_state("m")
        assert cost.total < full_cost.total

    def test_unknown_model_and_tensor(self):
        repo = make_repo()
        with pytest.raises(MetadataError):
            repo.latest_version("ghost")
        repo.publish("m", snapshot())
        with pytest.raises(ObjectNotFoundError):
            repo.get_tensor("m", "nope")
        with pytest.raises(MetadataError):
            repo.info("m", version=9)


class TestCostTradeoff:
    def test_full_load_pays_per_tensor_overhead(self):
        """The §3 small-I/O penalty: many objects -> many fixed costs."""
        cheap = make_repo(per_object_overhead=0.0)
        pricey = make_repo(per_object_overhead=0.05)
        state = snapshot()
        cheap.publish("m", state)
        pricey.publish("m", state)
        _s1, c1 = cheap.get_state("m")
        _s2, c2 = pricey.get_state("m")
        assert c2.total - c1.total == pytest.approx(0.05 * 3, rel=1e-6)

    def test_virtual_scale_amplifies_costs(self):
        spec = TierSpec(
            name="p", kind=TierKind.PFS, capacity_bytes=10**12,
            read_bw=10**6, write_bw=10**6,
        )
        small = TensorRepository(TierStore(spec), virtual_scale=1.0)
        big = TensorRepository(TierStore(spec), virtual_scale=100.0)
        state = snapshot()
        _i1, c1 = small.publish("m", state)
        _i2, c2 = big.publish("m", state)
        assert c2.total > c1.total
