"""Polling-baseline tests: discovery delays vs push notifications."""

import time

import numpy as np
import pytest

from repro.errors import NotificationError
from repro.core.metadata import MetadataStore, ModelRecord
from repro.core.notification import PUSH_LATENCY
from repro.serving.polling import (
    RepositoryPoller,
    discovery_delays,
    expected_discovery_delay,
)


def rec(version):
    return ModelRecord(
        model_name="m", version=version, nbytes=10, location="gpu",
        path=f"m/v{version}",
    )


class TestAnalyticModel:
    def test_delay_is_time_to_next_tick(self):
        delays = discovery_delays([0.25, 0.5, 0.9], poll_interval=0.5)
        np.testing.assert_allclose(delays, [0.25, 0.0, 0.1])

    def test_delays_bounded_by_interval(self):
        rng = np.random.default_rng(0)
        times = rng.uniform(0, 100, 500)
        delays = discovery_delays(times, poll_interval=0.7)
        assert np.all(delays >= 0) and np.all(delays <= 0.7 + 1e-9)

    def test_mean_delay_near_half_interval(self):
        rng = np.random.default_rng(1)
        times = rng.uniform(0, 1000, 5000)
        delays = discovery_delays(times, poll_interval=1.0)
        assert delays.mean() == pytest.approx(0.5, abs=0.05)

    def test_expected_delay(self):
        assert expected_discovery_delay(0.001) == pytest.approx(0.0005)

    def test_push_beats_triton_minimum_poll(self):
        """The paper's headline: push < 1 ms < any polling baseline mean
        at Triton's minimum interval is not guaranteed — but push beats
        the *floor* of expected polling delay."""
        assert PUSH_LATENCY <= expected_discovery_delay(0.001) + 1e-12

    def test_invalid_interval(self):
        with pytest.raises(NotificationError):
            discovery_delays([1.0], 0.0)
        with pytest.raises(NotificationError):
            expected_discovery_delay(-1.0)


class TestLivePoller:
    def test_poll_once_discovers_new_version(self):
        store = MetadataStore()
        seen = []
        poller = RepositoryPoller(store, "m", seen.append, interval=0.001)
        assert poller.poll_once() is None
        store.publish_version(rec(1))
        assert poller.poll_once() == 1
        assert seen == [1]
        assert poller.poll_once() is None  # no re-discovery

    def test_poller_skips_to_latest(self):
        store = MetadataStore()
        seen = []
        poller = RepositoryPoller(store, "m", seen.append, interval=0.001)
        store.publish_version(rec(1))
        store.publish_version(rec(2))
        poller.poll_once()
        assert seen == [2]

    def test_live_thread_discovers(self):
        store = MetadataStore()
        seen = []
        poller = RepositoryPoller(store, "m", seen.append, interval=0.002).start()
        try:
            store.publish_version(rec(1))
            deadline = time.monotonic() + 2.0
            while not seen and time.monotonic() < deadline:
                time.sleep(0.005)
            assert seen == [1]
            assert poller.polls >= 1
        finally:
            poller.stop()

    def test_double_start_rejected(self):
        poller = RepositoryPoller(MetadataStore(), "m", lambda v: None).start()
        try:
            with pytest.raises(NotificationError):
                poller.start()
        finally:
            poller.stop()

    def test_invalid_interval(self):
        with pytest.raises(NotificationError):
            RepositoryPoller(MetadataStore(), "m", lambda v: None, interval=0)
