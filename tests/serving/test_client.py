"""Request-generator tests."""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving.client import RequestGenerator


def make_gen(n=10, with_y=True, **kwargs):
    x = np.arange(n * 2, dtype=np.float32).reshape(n, 2)
    y = np.arange(n, dtype=np.float32).reshape(n, 1) if with_y else None
    return RequestGenerator(x, y, **kwargs), x, y


class TestStream:
    def test_issue_times_fixed_rate(self):
        gen, _x, _y = make_gen(rate_t_infer=0.01)
        reqs = list(gen.stream(5))
        times = [r.issue_time for r in reqs]
        np.testing.assert_allclose(times, [0.0, 0.01, 0.02, 0.03, 0.04])

    def test_single_sample_batches(self):
        gen, _x, _y = make_gen()
        req = next(iter(gen.stream(1)))
        assert req.x.shape == (1, 2)
        assert req.y.shape == (1, 1)

    def test_cycles_through_test_set(self):
        gen, x, _y = make_gen(n=3)
        reqs = list(gen.stream(7))
        # After 3 requests the order repeats.
        np.testing.assert_array_equal(reqs[0].x, reqs[3].x)
        np.testing.assert_array_equal(reqs[1].x, reqs[4].x)

    def test_deterministic_given_seed(self):
        gen1, _x, _y = make_gen(seed=5)
        gen2, _x2, _y2 = make_gen(seed=5)
        for a, b in zip(gen1.stream(5), gen2.stream(5)):
            np.testing.assert_array_equal(a.x, b.x)

    def test_different_seed_different_order(self):
        gen1, _x, _y = make_gen(n=50, seed=1)
        gen2, _x2, _y2 = make_gen(n=50, seed=2)
        same = all(
            np.array_equal(a.x, b.x)
            for a, b in zip(gen1.stream(20), gen2.stream(20))
        )
        assert not same

    def test_no_ground_truth(self):
        gen, _x, _y = make_gen(with_y=False)
        assert next(iter(gen.stream(1))).y is None

    def test_batch_materializes(self):
        gen, _x, _y = make_gen()
        xs, ys = gen.batch(4)
        assert len(xs) == 4 and len(ys) == 4

    def test_zero_total(self):
        gen, _x, _y = make_gen()
        assert list(gen.stream(0)) == []


class TestValidation:
    def test_empty_test_set(self):
        with pytest.raises(ServingError):
            RequestGenerator(np.zeros((0, 2)))

    def test_length_mismatch(self):
        with pytest.raises(ServingError):
            RequestGenerator(np.zeros((3, 2)), np.zeros((2, 1)))

    def test_bad_rate(self):
        with pytest.raises(ServingError):
            RequestGenerator(np.zeros((3, 2)), rate_t_infer=0.0)

    def test_negative_total(self):
        gen, _x, _y = make_gen()
        with pytest.raises(ServingError):
            list(gen.stream(-1))
