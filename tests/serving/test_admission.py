"""Admission control: the bucket, the controller, and the server wiring.

The contract under test: requests beyond the rate/concurrency envelope
or past their deadline are shed *at the door* with a typed retryable
:class:`~repro.errors.OverloadError` carrying a Retry-After hint, every
shed is counted (per reason, in stats and metrics), and admitted
requests are untouched by the machinery.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import Viper
from repro.errors import ConfigurationError, OverloadError
from repro.dnn.layers import Dense
from repro.dnn.losses import MSELoss
from repro.dnn.models import Sequential
from repro.dnn.optimizers import SGD
from repro.obs.metrics import MetricsRegistry
from repro.serving.admission import (
    AdmissionConfig,
    AdmissionController,
    TokenBucket,
)
from repro.serving.server import InferenceServer


class TestTokenBucket:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(1.0, 0.5)

    def test_burst_drains_then_denies(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        assert [bucket.try_acquire(0.0) for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=1.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.5)       # 0.5s * 2/s = 1 token back

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        assert bucket.available(100.0) == 2.0

    def test_retry_after_is_deficit_over_rate(self):
        bucket = TokenBucket(rate=2.0, burst=1.0)
        assert bucket.try_acquire(0.0)
        assert bucket.retry_after(0.0) == pytest.approx(0.5)
        assert bucket.retry_after(10.0) == 0.0


class TestAdmissionConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionConfig(rate=0.0)
        with pytest.raises(ConfigurationError):
            AdmissionConfig(burst=0.0)
        with pytest.raises(ConfigurationError):
            AdmissionConfig(max_inflight=-1)
        with pytest.raises(ConfigurationError):
            AdmissionConfig(default_budget=0.0)


class TestAdmissionController:
    def make(self, **kwargs):
        return AdmissionController(AdmissionConfig(**kwargs))

    def test_admit_within_envelope(self):
        ctrl = self.make(rate=10.0, burst=4.0)
        assert ctrl.admit(0.0) is None       # no deadline resolved
        assert ctrl.admitted == 1
        assert ctrl.inflight == 1
        ctrl.release()
        assert ctrl.inflight == 0

    def test_deadline_shed_consumes_no_token(self):
        # Dead-on-arrival requests must not burn rate budget: the shed
        # happens before the bucket is touched.
        ctrl = self.make(rate=10.0, burst=2.0)
        before = ctrl.bucket.available(1.0)
        with pytest.raises(OverloadError) as exc_info:
            ctrl.admit(1.0, deadline=1.0, service_time=0.5)
        assert exc_info.value.reason == "deadline"
        assert ctrl.bucket.available(1.0) == before
        assert ctrl.shed["deadline"] == 1
        assert ctrl.inflight == 0

    def test_rate_shed_carries_retry_after(self):
        ctrl = self.make(rate=1.0, burst=1.0)
        ctrl.admit(0.0)
        with pytest.raises(OverloadError) as exc_info:
            ctrl.admit(0.0)
        assert exc_info.value.reason == "rate"
        assert exc_info.value.retryable
        assert exc_info.value.retry_after == pytest.approx(1.0)
        assert ctrl.shed["rate"] == 1

    def test_concurrency_shed_and_release(self):
        ctrl = self.make(rate=100.0, burst=10.0, max_inflight=1)
        ctrl.admit(0.0)
        with pytest.raises(OverloadError) as exc_info:
            ctrl.admit(0.0)
        assert exc_info.value.reason == "concurrency"
        ctrl.release()
        ctrl.admit(0.0)                      # slot freed: admitted again
        assert ctrl.admitted == 2
        assert ctrl.shed_total == 1

    def test_default_budget_resolves_deadlines(self):
        ctrl = self.make(rate=100.0, burst=10.0, default_budget=0.5)
        assert ctrl.admit(2.0) == pytest.approx(2.5)
        # An explicit deadline wins over the default budget.
        assert ctrl.admit(2.0, deadline=9.0) == 9.0
        with pytest.raises(OverloadError):
            ctrl.admit(2.0, service_time=0.6)  # 2.6 > 2.5 default deadline

    def test_every_shed_is_counted_once(self):
        ctrl = self.make(rate=1.0, burst=1.0)
        ctrl.admit(0.0)
        for _ in range(5):
            with pytest.raises(OverloadError):
                ctrl.admit(0.0)
        snap = ctrl.snapshot()
        assert snap["rate"] == 5
        assert snap["admitted"] == 1
        assert ctrl.shed_total == 5
        assert len(ctrl.decisions) == 5

    def test_shed_log_is_jsonl(self, tmp_path):
        ctrl = self.make(rate=1.0, burst=1.0)
        ctrl.admit(0.0)
        with pytest.raises(OverloadError):
            ctrl.admit(0.0, deadline=99.0)
        path = tmp_path / "sheds.jsonl"
        assert ctrl.write_shed_log(path) == 1
        entry = json.loads(path.read_text().splitlines()[0])
        assert entry["reason"] == "rate"
        assert entry["deadline"] == 99.0
        assert entry["retry_after"] == pytest.approx(1.0)

    def test_shed_metric_and_stats_hook(self):
        metrics = MetricsRegistry()
        with Viper(metrics=metrics) as viper:
            ctrl = AdmissionController(
                AdmissionConfig(rate=1.0, burst=1.0),
                metrics=metrics,
                stats=viper.stats,
                name="s0",
            )
            ctrl.admit(0.0)
            with pytest.raises(OverloadError):
                ctrl.admit(0.0)
            counter = metrics.counter(
                "server_requests_shed_total", server="s0", reason="rate"
            )
            assert counter.value == 1
            assert viper.stats.snapshot().requests_shed == 1


def builder():
    model = Sequential([Dense(1, name="d")], input_shape=(2,), seed=3)
    model.compile(SGD(0.01), MSELoss())
    return model


@pytest.fixture
def fleet():
    """A Viper + one admission-armed server on a tight envelope."""
    viper = Viper(metrics=MetricsRegistry())
    consumer = viper.consumer(model_builder=builder)
    consumer.subscribe()
    server = InferenceServer(
        consumer, "m", t_infer=0.01,
        admission=AdmissionConfig(rate=10.0, burst=2.0),
        metrics=viper.metrics,
    )
    yield viper, server
    viper.close()


class TestServerIntegration:
    X = np.ones((1, 2), dtype=np.float32)

    def test_burst_beyond_envelope_is_shed(self, fleet):
        _viper, server = fleet
        served = 0
        sheds = 0
        for _ in range(6):                   # all at t=0: burst depth is 2
            try:
                server.handle(self.X)
                served += 1
            except OverloadError:
                sheds += 1
        assert served == 2
        assert sheds == 4
        assert server.admission.shed["rate"] == 4

    def test_expired_deadline_shed_before_scoring(self, fleet):
        _viper, server = fleet
        server.advance_clock(5.0)
        requests_before = len(server.requests)
        with pytest.raises(OverloadError) as exc_info:
            server.handle(self.X, deadline=5.005)  # t_infer=0.01 can't make it
        assert exc_info.value.reason == "deadline"
        assert len(server.requests) == requests_before  # never scored
        assert server.admission.shed["deadline"] == 1

    def test_arrival_advances_clock_and_refills(self, fleet):
        _viper, server = fleet
        server.handle(self.X, arrival=0.0)
        server.handle(self.X, arrival=0.0)
        with pytest.raises(OverloadError):
            server.handle(self.X, arrival=0.0)
        # 0.2s at 10 req/s mints two tokens: the later arrival is served.
        _, req = server.handle(self.X, arrival=0.3)
        assert req.sim_time >= 0.3

    def test_serve_batch_skips_shed_requests(self, fleet):
        _viper, server = fleet
        xs = [self.X] * 6
        arrivals = [0.0] * 6                 # one instantaneous burst
        served = server.serve_batch(
            xs, refresh_between=False, budget=1.0, arrivals=arrivals
        )
        assert len(served) == 2              # burst depth
        assert server.admission.shed_total == 4

    def test_sheds_land_in_stats_and_metrics(self, fleet):
        viper, server = fleet
        for _ in range(4):
            try:
                server.handle(self.X, arrival=0.0)
            except OverloadError:
                pass
        assert viper.stats.snapshot().requests_shed == 2
        counter = viper.metrics.counter(
            "server_requests_shed_total", server=server.name, reason="rate"
        )
        assert counter.value == 2

    def test_admission_off_by_default(self, fleet):
        viper, _server = fleet
        consumer = viper.consumer(model_builder=builder)
        consumer.subscribe()
        plain = InferenceServer(consumer, "m")
        assert plain.admission is None
        for _ in range(50):                  # nothing is ever shed
            plain.handle(self.X)

    def test_prebuilt_controller_is_adopted(self, fleet):
        viper, _server = fleet
        ctrl = AdmissionController(AdmissionConfig(rate=5.0, burst=1.0))
        consumer = viper.consumer(model_builder=builder)
        consumer.subscribe()
        server = InferenceServer(consumer, "m", admission=ctrl)
        assert server.admission is ctrl
