"""Live inference-server tests."""

import numpy as np
import pytest

from repro import CaptureMode, Viper
from repro.errors import ServingError
from repro.dnn.layers import Dense
from repro.dnn.losses import MSELoss
from repro.dnn.models import Sequential
from repro.dnn.optimizers import SGD
from repro.serving.server import InferenceServer


def builder():
    model = Sequential([Dense(1, name="d")], input_shape=(2,), seed=3)
    model.compile(SGD(0.01), MSELoss())
    return model


@pytest.fixture
def setup():
    viper = Viper()
    consumer = viper.consumer(model_builder=builder)
    consumer.subscribe()
    server = InferenceServer(consumer, "m", loss_fn=MSELoss(), t_infer=0.01)
    yield viper, consumer, server
    viper.close()


def publish_weights(viper, value):
    state = builder().state_dict()
    state["d/W"][...] = value
    state["d/b"][...] = 0.0
    viper.save_weights("m", state, mode=CaptureMode.SYNC)


class TestServing:
    def test_handle_returns_prediction_and_record(self, setup):
        _viper, _consumer, server = setup
        x = np.ones((1, 2), dtype=np.float32)
        pred, req = server.handle(x, y_true=np.zeros((1, 1), dtype=np.float32))
        assert pred.shape == (1, 1)
        assert req.model_version == 0
        assert np.isfinite(req.loss)

    def test_loss_nan_without_ground_truth(self, setup):
        _viper, _consumer, server = setup
        _pred, req = server.handle(np.ones((1, 2), dtype=np.float32))
        assert np.isnan(req.loss)

    def test_sim_time_advances_per_request(self, setup):
        _viper, _consumer, server = setup
        x = np.ones((1, 2), dtype=np.float32)
        _p, r1 = server.handle(x)
        _p, r2 = server.handle(x)
        assert r2.sim_time - r1.sim_time == pytest.approx(0.01)

    def test_update_changes_serving_version(self, setup):
        viper, _consumer, server = setup
        x = np.ones((1, 2), dtype=np.float32)
        _p, before = server.handle(x)
        publish_weights(viper, 5.0)
        assert server.poll_updates()
        _p, after = server.handle(x)
        assert before.model_version == 0 and after.model_version == 1

    def test_poll_without_updates_false(self, setup):
        _viper, _consumer, server = setup
        assert not server.poll_updates()

    def test_updated_weights_change_predictions(self, setup):
        viper, _consumer, server = setup
        x = np.ones((1, 2), dtype=np.float32)
        pred_before, _ = server.handle(x)
        publish_weights(viper, 3.0)
        server.poll_updates()
        pred_after, _ = server.handle(x)
        np.testing.assert_allclose(pred_after, [[6.0]], atol=1e-5)
        assert not np.allclose(pred_before, pred_after)

    def test_serve_batch_accounting(self, setup):
        viper, _consumer, server = setup
        xs = [np.ones((1, 2), dtype=np.float32)] * 5
        ys = [np.zeros((1, 1), dtype=np.float32)] * 5
        served = server.serve_batch(xs, ys)
        assert len(served) == 5
        assert server.cumulative_loss == pytest.approx(
            sum(r.loss for r in served)
        )

    def test_requests_per_version(self, setup):
        viper, _consumer, server = setup
        x = np.ones((1, 2), dtype=np.float32)
        server.handle(x)
        publish_weights(viper, 1.0)
        server.poll_updates()
        server.handle(x)
        server.handle(x)
        assert server.requests_per_version() == {0: 1, 1: 2}

    def test_invalid_t_infer(self, setup):
        viper, consumer, _server = setup
        with pytest.raises(ServingError):
            InferenceServer(consumer, "m", t_infer=0.0)


class TestStalenessWatchdog:
    def test_invalid_deadline(self, setup):
        _viper, consumer, _server = setup
        with pytest.raises(ServingError, match="staleness_deadline"):
            InferenceServer(consumer, "m", staleness_deadline=0.0)

    def test_fallback_after_push_silence(self):
        viper = Viper()
        consumer = viper.consumer(model_builder=builder)
        consumer.subscribe()
        server = InferenceServer(
            consumer, "m", t_infer=0.01, staleness_deadline=0.05
        )
        # Sever the push channel (a crashed broker / dropped delivery):
        # publishes land in metadata but never reach this subscriber.
        viper.broker.unsubscribe(consumer._sub)
        publish_weights(viper, 2.0)
        x = np.ones((1, 2), dtype=np.float32)

        # Inside the deadline the server trusts the (silent) push stream.
        for _ in range(4):
            server.handle(x)            # sim_time -> 0.04
            assert not server.poll_updates()
        assert server.stale_fallbacks == 0

        # Past the deadline the watchdog performs exactly one poll, which
        # discovers the missed version.
        server.handle(x)                # sim_time -> 0.05
        assert server.poll_updates()
        assert server.stale_fallbacks == 1
        assert consumer.current_version == 1
        assert viper.handler.stats.snapshot().stale_fallbacks == 1

        # The watchdog re-armed: no immediate second fallback.
        assert not server.poll_updates()
        assert server.stale_fallbacks == 1
        viper.close()

    def test_no_fallback_when_pushes_flow(self):
        viper = Viper()
        consumer = viper.consumer(model_builder=builder)
        consumer.subscribe()
        server = InferenceServer(
            consumer, "m", t_infer=0.01, staleness_deadline=0.05
        )
        x = np.ones((1, 2), dtype=np.float32)
        for value in (1.0, 2.0, 3.0):
            publish_weights(viper, value)
            for _ in range(10):
                server.handle(x)
            assert server.poll_updates()
        assert server.stale_fallbacks == 0
        assert consumer.current_version == 3
        viper.close()


class TestWatermarkWithoutMetrics:
    def test_latest_known_advances_with_metrics_off(self):
        # Regression: the legacy stale-serve watermark used to advance
        # only when a metrics registry was armed, silently breaking
        # stale accounting in the (default) unmetered configuration.
        viper = Viper()
        consumer = viper.consumer(model_builder=builder)
        consumer.subscribe()
        server = InferenceServer(
            consumer, "m", t_infer=0.01, staleness_deadline=10.0
        )
        assert not server.metrics.enabled
        assert not server.freshness.enabled
        # Sever the push channel so the publish is discoverable only
        # through the metadata store (no swap happens: the watchdog is
        # far from its deadline).
        viper.broker.unsubscribe(consumer._sub)
        publish_weights(viper, 2.0)
        assert not server.poll_updates()
        assert consumer.current_version == 0
        assert server._latest_known == 1
        viper.close()


class TestBoundedRequestLog:
    def test_aggregates_survive_eviction(self):
        viper = Viper()
        consumer = viper.consumer(model_builder=builder)
        consumer.subscribe()
        server = InferenceServer(
            consumer, "m", loss_fn=MSELoss(), t_infer=0.01, max_request_log=3
        )
        x = np.ones((1, 2), dtype=np.float32)
        y = np.zeros((1, 1), dtype=np.float32)
        losses = [server.handle(x, y)[1].loss for _ in range(10)]
        # The window is bounded...
        assert len(server.requests) == 3
        assert len(server.versions_served()) == 3
        # ...but the aggregates cover all 10 requests.
        assert server.cumulative_loss == pytest.approx(sum(losses))
        assert server.scored_requests == 10
        assert server.requests_per_version() == {0: 10}
        viper.close()

    def test_unbounded_by_default(self, setup):
        _viper, _consumer, server = setup
        x = np.ones((1, 2), dtype=np.float32)
        for _ in range(5):
            server.handle(x)
        assert len(server.requests) == 5

    def test_invalid_cap(self, setup):
        _viper, consumer, _server = setup
        with pytest.raises(ServingError, match="max_request_log"):
            InferenceServer(consumer, "m", max_request_log=0)


class TestWatchdogQuarantineInteraction:
    def test_fallback_poll_does_not_resurrect_quarantined(self):
        # A watchdog fallback resolves "latest" through the metadata
        # store, whose pointer skips quarantined versions — so a poll
        # after a rollback lands on the last-known-good, never the
        # condemned one.
        viper = Viper()
        consumer = viper.consumer(model_builder=builder)
        consumer.subscribe()
        server = InferenceServer(
            consumer, "m", t_infer=0.01, staleness_deadline=0.05
        )
        x = np.ones((1, 2), dtype=np.float32)
        publish_weights(viper, 1.0)
        assert server.poll_updates()
        assert consumer.current_version == 1

        # v2 is published but condemned (a peer's rollback), and the
        # push channel dies so only the watchdog can discover anything.
        viper.broker.unsubscribe(consumer._sub)
        publish_weights(viper, 9.0)
        viper.metadata.quarantine_version("m", 2, "loss_regression")

        for _ in range(6):
            server.handle(x)
        assert not server.poll_updates()       # fallback fired, found v1
        assert server.stale_fallbacks == 1
        assert consumer.current_version == 1   # v2 stayed dead

        # Even naming the condemned version explicitly is refused.
        with pytest.raises(ServingError, match="quarantined"):
            consumer.apply_update("m", 2)
        assert consumer.current_version == 1
        viper.close()


class TestRolloutServing:
    def make_server(self, viper, **policy_overrides):
        from repro.rollout import RolloutPolicy

        kwargs = dict(canary_fraction=0.25, min_canary_samples=2, window=16)
        kwargs.update(policy_overrides)
        consumer = viper.consumer(model_builder=builder)
        consumer.subscribe()
        server = InferenceServer(
            consumer, "m", loss_fn=MSELoss(), t_infer=0.01,
            rollout=RolloutPolicy(**kwargs),
        )
        return consumer, server

    def test_good_candidate_canaries_then_promotes(self):
        viper = Viper()
        consumer, server = self.make_server(viper)
        x = np.ones((1, 2), dtype=np.float32)
        y = np.full((1, 1), 2.0, dtype=np.float32)  # v1 (W=1) predicts 2
        publish_weights(viper, 1.0)
        server.serve_batch([x] * 20, [y] * 20)
        assert consumer.current_version == 1
        assert server.rollout.promotions == 1
        # Both arms served while the canary was under evaluation.
        per = server.requests_per_version()
        assert per[0] > 0 and per[1] > 0
        viper.close()

    def test_bad_candidate_rolls_back_within_canary_share(self):
        viper = Viper()
        consumer, server = self.make_server(viper)
        x = np.ones((1, 2), dtype=np.float32)
        y = np.full((1, 1), 2.0, dtype=np.float32)
        publish_weights(viper, 1.0)          # good: loss 0
        server.serve_batch([x] * 20, [y] * 20)
        assert consumer.current_version == 1

        publish_weights(viper, 50.0)         # bad: predicts 100, loss huge
        server.serve_batch([x] * 40, [y] * 40)
        assert consumer.current_version == 1  # never swapped
        record, _ = viper.metadata.record("m", 2)
        assert record.quarantined
        assert record.quarantine_reason == "loss_regression"
        per = server.requests_per_version()
        # Hard canary cap: the bad version served at most its fraction.
        assert per.get(2, 0) <= 0.25 * sum(per.values())
        assert server.rollout.rollbacks == 1
        assert server.rollout.time_to_detect[0] >= 0.0

        publish_weights(viper, 1.0)          # v3: healthy again
        server.serve_batch([x] * 20, [y] * 20)
        assert consumer.current_version == 3  # fleet converged forward
        viper.close()

    def test_nan_candidate_rolls_back_immediately(self):
        viper = Viper()
        consumer, server = self.make_server(viper)
        x = np.ones((1, 2), dtype=np.float32)
        y = np.full((1, 1), 2.0, dtype=np.float32)
        publish_weights(viper, 1.0)
        server.serve_batch([x] * 20, [y] * 20)
        publish_weights(viper, float("nan"))
        server.serve_batch([x] * 40, [y] * 40)
        assert consumer.current_version == 1
        record, _ = viper.metadata.record("m", 2)
        assert record.quarantined
        assert record.quarantine_reason == "nan_output"
        # A single canary-served NaN is enough: exactly one request was
        # exposed to the bad version.
        assert server.requests_per_version().get(2, 0) == 1
        viper.close()


class TestCorruptLoadRejection:
    def test_corrupt_update_keeps_last_good_model(self):
        from repro.errors import IntegrityError, RetriesExhausted
        from repro.resilience import FaultKind, FaultPlan, FaultRule

        viper = Viper()
        consumer = viper.consumer(model_builder=builder)
        consumer.subscribe()
        server = InferenceServer(consumer, "m", t_infer=0.01)
        x = np.ones((1, 2), dtype=np.float32)

        publish_weights(viper, 3.0)
        assert server.poll_updates()
        pred_good, _ = server.handle(x)

        # Every subsequent read returns corrupt bytes on all replicas.
        plan = FaultPlan(
            [FaultRule(site="store.get:*", kind=FaultKind.CORRUPT,
                       probability=1.0)],
            seed=11,
        )
        plan.arm(viper.cluster)
        publish_weights(viper, 9.0)
        with pytest.raises((IntegrityError, RetriesExhausted)):
            consumer.refresh()
        plan.disarm()

        # The corrupt checkpoint never reached either buffer slot: the
        # live model still serves v1 with identical predictions, and the
        # rejection is visible in both the buffer and the Stats Manager.
        assert consumer.current_version == 1
        pred_after, req = server.handle(x)
        assert req.model_version == 1
        np.testing.assert_array_equal(pred_after, pred_good)
        assert consumer._buffer.swaps_rejected == 1
        assert viper.handler.stats.snapshot().swaps_rejected == 1
        viper.close()
