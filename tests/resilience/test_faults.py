"""Unit tests for the seeded fault-injection layer."""

from __future__ import annotations

import pytest

from repro.errors import (
    CapacityError,
    ConfigurationError,
    FaultInjected,
    StorageError,
)
from repro.obs.metrics import MetricsRegistry
from repro.resilience import FaultKind, FaultPlan, FaultRule
from repro.substrates.memory.storage import TierStore
from repro.substrates.network import links
from repro.substrates.network.channels import Fabric


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

class TestFaultRule:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultRule(site="", kind=FaultKind.DROP)
        with pytest.raises(ConfigurationError):
            FaultRule(site="x", kind=FaultKind.DROP, probability=1.5)
        with pytest.raises(ConfigurationError):
            FaultRule(site="x", kind=FaultKind.DROP, at_ops=(-1,))
        with pytest.raises(ConfigurationError):
            FaultRule(site="x", kind=FaultKind.STALL, stall_factor=0.5)
        with pytest.raises(ConfigurationError):
            FaultRule(site="x", kind=FaultKind.DROP, max_injections=-1)

    def test_dict_round_trip(self):
        rule = FaultRule(
            site="store.put:*",
            kind=FaultKind.CORRUPT,
            probability=0.25,
            at_ops=(3, 5),
            max_injections=2,
        )
        assert FaultRule.from_dict(rule.to_dict()) == rule

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown fault-rule"):
            FaultRule.from_dict({"site": "x", "kind": "drop", "oops": 1})


# ---------------------------------------------------------------------------
# Plan firing semantics
# ---------------------------------------------------------------------------

class TestFaultPlanFiring:
    def test_exact_op_injection(self):
        plan = FaultPlan(
            [FaultRule(site="s", kind=FaultKind.DROP, at_ops=(2,))], seed=1
        )
        plan.fire("s")
        plan.fire("s")
        with pytest.raises(FaultInjected) as exc_info:
            plan.fire("s")
        assert exc_info.value.site == "s"
        assert exc_info.value.kind == "drop"
        plan.fire("s")  # op 3: clean again
        assert plan.injection_count() == 1
        assert plan.op_count("s") == 4

    def test_kind_to_error_mapping(self):
        for kind, exc_type in [
            (FaultKind.DROP, FaultInjected),
            (FaultKind.WRITE_FAIL, StorageError),
            (FaultKind.CAPACITY, CapacityError),
        ]:
            plan = FaultPlan([FaultRule(site="s", kind=kind, at_ops=(0,))])
            with pytest.raises(exc_type):
                plan.fire("s")

    def test_stall_returns_cost_scale(self):
        plan = FaultPlan(
            [FaultRule(site="s", kind=FaultKind.STALL, at_ops=(0,),
                       stall_factor=25.0)]
        )
        assert plan.fire("s").cost_scale == 25.0
        assert plan.fire("s").cost_scale == 1.0

    def test_corrupt_flips_exactly_one_byte(self):
        plan = FaultPlan(
            [FaultRule(site="s", kind=FaultKind.CORRUPT, at_ops=(0,))], seed=3
        )
        payload = bytes(range(64))
        effect = plan.fire("s", payload=payload)
        assert effect.payload is not None
        diffs = [i for i, (a, b) in enumerate(zip(payload, effect.payload))
                 if a != b]
        assert len(diffs) == 1
        assert effect.payload[diffs[0]] == payload[diffs[0]] ^ 0xFF

    def test_probability_is_seed_deterministic(self):
        def run(seed):
            plan = FaultPlan(
                [FaultRule(site="s", kind=FaultKind.STALL, probability=0.3)],
                seed=seed,
            )
            return [plan.fire("s").cost_scale != 1.0 for _ in range(200)]

        assert run(7) == run(7)
        assert run(7) != run(8)  # astronomically unlikely to collide

    def test_site_streams_are_independent(self):
        # Interleaving ops at another site must not perturb this site's
        # injection sequence (the multi-thread determinism guarantee).
        def run(interleave):
            plan = FaultPlan(
                [FaultRule(site="a", kind=FaultKind.STALL, probability=0.3)],
                seed=7,
            )
            out = []
            for _ in range(100):
                if interleave:
                    plan.fire("b")
                out.append(plan.fire("a").cost_scale != 1.0)
            return out

        assert run(False) == run(True)

    def test_max_injections_budget(self):
        plan = FaultPlan(
            [FaultRule(site="s", kind=FaultKind.DROP, probability=1.0,
                       max_injections=2)]
        )
        for _ in range(2):
            with pytest.raises(FaultInjected):
                plan.fire("s")
        plan.fire("s")  # budget spent: clean
        assert plan.injection_count(FaultKind.DROP) == 2

    def test_fnmatch_site_patterns(self):
        plan = FaultPlan(
            [FaultRule(site="store.put:*", kind=FaultKind.DROP,
                       probability=1.0)]
        )
        with pytest.raises(FaultInjected):
            plan.fire("store.put:polaris.lustre")
        plan.fire("store.get:polaris.lustre")  # no match: clean

    def test_injection_metrics(self):
        metrics = MetricsRegistry()
        plan = FaultPlan(
            [FaultRule(site="s", kind=FaultKind.STALL, at_ops=(0,))],
            metrics=metrics,
        )
        plan.fire("s")
        counter = metrics.counter(
            "resilience_faults_injected_total", site="s", kind="stall"
        )
        assert counter.value == 1

    def test_plan_dict_round_trip(self):
        plan = FaultPlan(
            [FaultRule(site="s", kind=FaultKind.DROP, probability=0.5)],
            seed=42,
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.seed == 42
        assert clone.rules == plan.rules


# ---------------------------------------------------------------------------
# Arming the substrate hooks
# ---------------------------------------------------------------------------

class TestArming:
    def test_store_hooks_and_zero_overhead_default(self, tiny_tier):
        store = TierStore(tiny_tier)
        assert store.faults is None  # no plan armed: one attr, no work
        plan = FaultPlan(
            [FaultRule(site=f"store.put:{tiny_tier.name}",
                       kind=FaultKind.WRITE_FAIL, probability=1.0)]
        )
        plan.arm(stores=[store])
        with pytest.raises(StorageError):
            store.put("k", b"data")
        plan.disarm()
        assert store.faults is None
        store.put("k", b"data")  # clean after disarm

    def test_store_get_corruption_does_not_touch_stored_copy(self, tiny_tier):
        store = TierStore(tiny_tier)
        store.put("k", b"payload")
        plan = FaultPlan(
            [FaultRule(site="store.get:*", kind=FaultKind.CORRUPT,
                       at_ops=(0,))], seed=5
        )
        with plan.arm(stores=[store]):
            corrupted, _ = store.get("k")
            assert corrupted != b"payload"
            clean, _ = store.get("k")
            assert clean == b"payload"

    def test_stall_scales_store_cost(self, tiny_tier):
        store = TierStore(tiny_tier)
        baseline = store.put("k", b"data")
        plan = FaultPlan(
            [FaultRule(site="store.put:*", kind=FaultKind.STALL,
                       probability=1.0, stall_factor=10.0)]
        )
        with plan.arm(stores=[store]):
            stalled = store.put("k", b"data")
        assert stalled.total == pytest.approx(10.0 * baseline.total)

    def test_fabric_hook_drops_sends(self, tiny_link):
        fabric = Fabric(default_link=tiny_link)
        src = fabric.endpoint("src")
        dest = fabric.endpoint("dest")
        plan = FaultPlan(
            [FaultRule(site="link.send:src->dest", kind=FaultKind.DROP,
                       probability=1.0)]
        )
        with plan.arm(fabrics=[fabric]):
            with pytest.raises(FaultInjected):
                src.send("dest", b"payload")
        cost = src.send("dest", b"payload")
        assert fabric.faults is None
        assert dest.recv().payload == b"payload"
        assert cost.total > 0

    def test_links_module_hook(self, tiny_link):
        plan = FaultPlan(
            [FaultRule(site=f"link.time:{tiny_link.name}",
                       kind=FaultKind.STALL, probability=1.0,
                       stall_factor=5.0)]
        )
        clean = tiny_link.transfer_time(1000)
        plan.arm(links_hook=True)
        try:
            assert tiny_link.transfer_time(1000) == pytest.approx(5.0 * clean)
        finally:
            plan.disarm()
        assert tiny_link.transfer_time(1000) == pytest.approx(clean)
        assert links._FAULT_HOOK is None

    def test_second_links_hook_rejected(self):
        first = FaultPlan([]).arm(links_hook=True)
        try:
            with pytest.raises(ConfigurationError):
                FaultPlan([]).arm(links_hook=True)
        finally:
            first.disarm()
