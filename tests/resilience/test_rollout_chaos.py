"""Canary-rollback chaos: seeded bad-checkpoint injection over a fleet.

Every seed publishes a stream of checkpoints where some versions are
deliberately bad — loss regressions, NaN weights, or corrupt bytes on
the wire — into a two-consumer fleet running the rollout controller.
The assertions are invariants that must hold for ANY seed:

* no bad version ever serves more than its configured canary fraction
  of requests, on any server;
* every bad version ends quarantined with the expected reason code;
* the fleet always converges back to the newest good version;
* rollback time-to-detect is reported through the controller metrics.

CI runs this with ``VIPER_FAULT_SEED=$GITHUB_RUN_ID`` (shifting the
whole seed block) and ``VIPER_ROLLOUT_ARTIFACT_DIR`` set, in which case
each run uploads the per-server rollout decision logs as artifacts.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro import CaptureMode, FaultKind, FaultPlan, FaultRule, Viper
from repro.dnn.layers import Dense
from repro.dnn.losses import MSELoss
from repro.dnn.models import Sequential
from repro.dnn.optimizers import SGD
from repro.resilience.faults import default_seed
from repro.rollout import RolloutPolicy
from repro.serving import InferenceServer

pytestmark = pytest.mark.chaos

ARTIFACT_DIR_ENV = "VIPER_ROLLOUT_ARTIFACT_DIR"

N_SEEDS = 24
N_EXTRA_VERSIONS = 4          # versions 2..5 drawn good/bad per seed
CANARY_FRACTION = 0.25
GOOD_W, BAD_W = 1.0, 50.0     # pred 2 (loss 0) vs pred 100 (loss 9604)

X = np.ones((1, 2), dtype=np.float32)
Y = np.full((1, 1), 2.0, dtype=np.float32)

REASON_FOR_KIND = {
    "loss": "loss_regression",
    "nan": "nan_output",
    "corrupt": "integrity",
}


def builder():
    model = Sequential([Dense(1, name="d")], input_shape=(2,), seed=3)
    model.compile(SGD(0.01), MSELoss())
    return model


def publish_weights(viper, value):
    state = builder().state_dict()
    state["d/W"][...] = value
    state["d/b"][...] = 0.0
    return viper.save_weights("m", state, mode=CaptureMode.SYNC).version


def make_server(viper, name):
    consumer = viper.consumer(model_builder=builder, name=name)
    consumer.subscribe()
    policy = RolloutPolicy(
        canary_fraction=CANARY_FRACTION,
        min_canary_samples=4,
        window=16,
        max_loss_ratio=1.5,
        max_latency_ratio=None,   # wall-clock free: no latency flakes
    )
    return InferenceServer(
        consumer, "m", loss_fn=MSELoss(), t_infer=0.001,
        rollout=policy, name=name,
    )


def drive(servers, steps):
    """Round-robin the fleet so fan-out notes propagate between peers."""
    for _ in range(steps):
        for server in servers:
            server.poll_updates()
            server.handle(X, Y)


def run_seed(seed):
    rng = random.Random(seed)
    kinds = ["good"] + [
        rng.choice(["good", "loss", "nan", "corrupt"])
        for _ in range(N_EXTRA_VERSIONS)
    ] + ["good"]  # always end healthy so convergence is well-defined

    bad_versions = {}
    good_versions = []
    with Viper() as viper:
        servers = [make_server(viper, f"srv{i}") for i in range(2)]

        for kind in kinds:
            if kind == "corrupt":
                version = publish_weights(viper, GOOD_W)
                plan = FaultPlan(
                    [FaultRule(site="store.get:*", kind=FaultKind.CORRUPT,
                               probability=1.0)],
                    seed=seed,
                )
                plan.arm(viper.cluster)
                try:
                    drive(servers, 8)   # the stage attempt hits the fault
                finally:
                    plan.disarm()
                drive(servers, 32)
                bad_versions[version] = kind
            else:
                value = {"good": GOOD_W, "loss": BAD_W,
                         "nan": float("nan")}[kind]
                version = publish_weights(viper, value)
                drive(servers, 40)
                if kind == "good":
                    good_versions.append(version)
                else:
                    bad_versions[version] = kind

        newest_good = good_versions[-1]
        for server in servers:
            per = server.requests_per_version()
            total = sum(per.values())
            # Invariant 1: a bad version never exceeds the canary cap.
            for version in bad_versions:
                assert per.get(version, 0) <= CANARY_FRACTION * total, (
                    f"seed {seed}: bad v{version} served "
                    f"{per.get(version, 0)}/{total} on {server.name}"
                )
            # Invariant 3: the fleet converged to the newest good
            # version and nobody is stuck mid-rollout.
            assert server.consumer.current_version == newest_good, (
                f"seed {seed}: {server.name} on "
                f"v{server.consumer.current_version}, "
                f"expected v{newest_good}"
            )
            assert not server.rollout.active

        # Invariant 2: every bad version is quarantined with the
        # reason code its failure mode implies.
        for version, kind in bad_versions.items():
            record, _ = viper.metadata.record("m", version)
            assert record.quarantined, f"seed {seed}: v{version} not quarantined"
            assert record.quarantine_reason == REASON_FOR_KIND[kind], (
                f"seed {seed}: v{version} reason "
                f"{record.quarantine_reason!r}, kind {kind!r}"
            )

        # Invariant 4: rollback detection latency is reported.  Each bad
        # version was rolled back by at least one controller, and every
        # rollback carries a non-negative time-to-detect sample.
        total_rollbacks = sum(
            s.rollout.rollbacks + s.rollout.peer_drops for s in servers
        )
        assert total_rollbacks >= len(bad_versions)
        for server in servers:
            assert len(server.rollout.time_to_detect) == server.rollout.rollbacks
            assert all(t >= 0.0 for t in server.rollout.time_to_detect)
        stats = viper.handler.stats.snapshot()
        assert stats.canary_rollbacks >= len(bad_versions)
        assert stats.canary_promotions >= len(good_versions)

        _export_decision_logs(seed, servers)

    return len(bad_versions)


def _export_decision_logs(seed, servers):
    dest = os.environ.get(ARTIFACT_DIR_ENV)
    if not dest:
        return
    os.makedirs(dest, exist_ok=True)
    for server in servers:
        path = os.path.join(dest, f"rollout-seed-{seed}-{server.name}.jsonl")
        server.rollout.write_decision_log(path)


@pytest.mark.parametrize("offset", range(N_SEEDS))
def test_no_bad_version_escapes_the_canary(offset):
    seed = default_seed() + offset
    run_seed(seed)


def test_at_least_one_seed_exercises_every_failure_mode():
    # The per-seed draws are random; make sure the block as a whole
    # covered loss, NaN, and corrupt injections (otherwise the suite
    # could silently degenerate into an all-good walk).
    seen = set()
    base = default_seed()
    for offset in range(N_SEEDS):
        rng = random.Random(base + offset)
        seen.update(
            rng.choice(["good", "loss", "nan", "corrupt"])
            for _ in range(N_EXTRA_VERSIONS)
        )
    assert {"loss", "nan", "corrupt"} <= seen
