"""Crash-restart chaos suite: kill, recover, assert equivalence.

Each seed drives one :class:`~tests.resilience.harness.CrashRestartHarness`
experiment: a seeded kill point fires mid-publish / mid-flush /
mid-media-write, the deployment restarts from its journal, and the
recovered end state must match a crash-free reference.  CI runs this
with ``VIPER_FAULT_SEED=$GITHUB_RUN_ID``, so every run explores a
different — but fully reproducible — slice of the kill-point space.

To replay a CI failure locally::

    VIPER_FAULT_SEED=<seed from the CI log> \\
        python -m pytest tests/resilience/test_crash_restart.py -q
"""

from __future__ import annotations

import pytest

from repro.resilience.faults import default_seed

from tests.resilience.harness import KILL_SITES, CrashRestartHarness

pytestmark = pytest.mark.chaos

#: Acceptance floor from the issue: the invariants must hold across at
#: least 25 distinct seeds per run.
N_SEEDS = 28


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One crash-free run; every recovered run must reproduce it."""
    harness = CrashRestartHarness(seed=0)
    return harness.reference_state(tmp_path_factory.mktemp("reference"))


#: Filled by the parametrized sweep, checked by the summary test below.
_SWEEP_RESULTS = []


@pytest.mark.parametrize("offset", range(N_SEEDS))
def test_crash_restart_recovers_equivalent_state(offset, reference, tmp_path):
    seed = default_seed() + offset
    harness = CrashRestartHarness(seed=seed)
    result = harness.run(tmp_path, reference=reference)
    # The harness already asserted the recovery invariants; sanity-check
    # its own bookkeeping here so a silently-degenerate run (crash never
    # fired AND nothing recovered) still shows up in the result object.
    if result.crashed:
        assert result.crash_site, "crashed run must name its kill site"
    _SWEEP_RESULTS.append(result)


def test_seed_sweep_actually_crashes():
    """Across the sweep, a healthy majority of seeds must fire their
    kill point — otherwise the suite is quietly testing nothing."""
    assert len(_SWEEP_RESULTS) == N_SEEDS, "sweep must run before this check"
    fired = sum(1 for r in _SWEEP_RESULTS if r.crashed)
    assert fired >= N_SEEDS // 2, (
        f"only {fired}/{N_SEEDS} seeds crashed; kill-point draw is broken"
    )


def test_kill_site_table_covers_all_paths():
    sites = {site for site, _ in KILL_SITES}
    assert {"publish.staged", "publish.metadata", "publish.notified",
            "flush.start", "flush.staged", "media.staged:*"} == sites
