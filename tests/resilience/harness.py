"""Crash-restart chaos harness.

One :class:`CrashRestartHarness` run is a seeded experiment:

1. a producer publishes ``n_versions`` checkpoints (SYNC capture, HOST
   strategy, history flushed to the PFS) with a durable journal armed;
2. a seeded :class:`~repro.resilience.recovery.CrashPlan` kills the
   "process" at a randomly chosen kill point — mid-publish (before the
   journal append, after it, or after the notify), mid-flush (before or
   after the PFS put), or mid-media-write (before the atomic rename);
3. the deployment restarts from the same journal directory with
   ``recover=True``, the consumer resubscribes with its last consumed
   sequence number, and production continues to ``n_versions``;
4. the recovered end state is asserted equivalent to a crash-free
   reference: every version durable with bit-identical content, the
   consumer converged on the newest version through strictly-increasing
   swaps, and a second recovery replays to the identical state.

The kill point and journal knobs derive from the run's seed, so a CI
failure reproduces locally from the seed alone.  On assertion failure
the journal directory is copied to ``$VIPER_CRASH_ARTIFACT_DIR`` (when
set) for post-mortem.
"""

from __future__ import annotations

import os
import random
import shutil
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.api import Viper, ViperConsumer
from repro.core.transfer.strategies import CaptureMode, TransferStrategy
from repro.obs.lineage import LifecycleLedger
from repro.resilience.recovery import (
    CrashPlan,
    CrashPoint,
    MetadataJournal,
    SimulatedCrash,
)

__all__ = ["CrashRestartHarness", "HarnessResult", "KILL_SITES"]

MODEL = "chaos-model"

#: (site pattern, max at_op drawn) — every kill point the publish and
#: flush paths expose.  ``at_op`` picks which arrival dies, so one list
#: covers "first publish" through "fourth flush".
KILL_SITES = [
    ("publish.staged", 4),
    ("publish.metadata", 4),
    ("publish.notified", 4),
    ("flush.start", 3),
    ("flush.staged", 3),
    ("media.staged:*", 3),
]


def state_for(version: int) -> Dict[str, np.ndarray]:
    """Deterministic checkpoint content: every element is the version."""
    return {
        "w": np.full((8, 8), float(version), dtype=np.float32),
        "b": np.full((8,), float(version), dtype=np.float32),
    }


class DictModel:
    """The smallest thing the double buffer can serve: a state holder."""

    def __init__(self):
        self.state: Dict[str, np.ndarray] = {}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self.state = {k: np.array(v, copy=True) for k, v in state.items()}


@dataclass
class HarnessResult:
    """What one seeded crash-restart experiment observed."""

    seed: int
    site: str
    at_op: int
    crashed: bool                   # did the kill point actually fire?
    crash_site: str = ""            # where it fired (may differ via fnmatch)
    recovery: Dict[str, int] = field(default_factory=dict)
    #: versions applied per consumer incarnation, in order; a restarted
    #: consumer starts from scratch, so it legitimately re-applies the
    #: newest version — but *within* an incarnation swaps only go up.
    swaps: List[int] = field(default_factory=list)
    swaps_restarted: List[int] = field(default_factory=list)
    stale_polls: int = 0


class CrashRestartHarness:
    """Run one seeded crash-restart experiment and assert equivalence."""

    def __init__(self, seed: int, *, n_versions: int = 6):
        self.seed = seed
        self.n_versions = n_versions
        self.rng = random.Random(f"crash-harness/{seed}")
        site, max_op = self.rng.choice(KILL_SITES)
        self.point = CrashPoint(site=site, at_op=self.rng.randrange(max_op + 1))
        # Half the runs compact aggressively so recovery exercises the
        # snapshot path, not just raw journal replay.
        self.compact_every = self.rng.choice((0, 4))
        # One ledger spans crash and restart, so the artifact shows each
        # version's whole life across incarnations (including retries).
        self.lineage = LifecycleLedger()

    # ------------------------------------------------------------------
    def _make_viper(self, journal_root, *, recover: bool,
                    crash_plan: Optional[CrashPlan] = None,
                    lineage: Optional[LifecycleLedger] = None) -> Viper:
        journal = MetadataJournal(journal_root, compact_every=self.compact_every)
        return Viper(
            flush_history=True,
            journal=journal,
            recover=recover,
            crash_plan=crash_plan,
            notify_queue_max=4,
            lineage=lineage if lineage is not None else self.lineage,
        )

    def _produce_until(self, viper: Viper, consumer: ViperConsumer,
                       swaps: List[int]) -> None:
        """Publish versions until ``n_versions`` exist; consume pushes."""
        while True:
            versions = viper.metadata.versions(MODEL)
            done = max(versions) if versions else 0
            if done >= self.n_versions:
                return
            viper.save_weights(
                MODEL,
                state_for(done + 1),
                mode=CaptureMode.SYNC,
                strategy=TransferStrategy.HOST_TO_HOST,
            )
            result = consumer.refresh()
            if result is not None:
                swaps.append(result.version)

    # ------------------------------------------------------------------
    def reference_state(self, tmp_root) -> Dict[str, object]:
        """The crash-free end state every recovered run must match."""
        root = os.path.join(str(tmp_root), "reference")
        # The reference run gets its own throwaway ledger so its events
        # never interleave with the crashed run's artifact.
        viper = self._make_viper(root, recover=False, lineage=LifecycleLedger())
        consumer = viper.consumer(model_builder=DictModel)
        consumer.subscribe()
        swaps: List[int] = []
        self._produce_until(viper, consumer, swaps)
        viper.drain()
        state = self._final_state(viper)
        viper.close()
        return state

    def _final_state(self, viper: Viper) -> Dict[str, object]:
        versions = viper.metadata.versions(MODEL)
        contents = {}
        durable = {}
        for v in versions:
            rec, _ = viper.metadata.record(MODEL, v)
            durable[v] = rec.durable
            loaded = viper.load_weights(MODEL, v)
            contents[v] = {k: a.copy() for k, a in loaded.state.items()}
        return {"versions": versions, "durable": durable, "contents": contents}

    # ------------------------------------------------------------------
    def run(self, tmp_root, reference=None) -> HarnessResult:
        """Execute the experiment; ``reference`` is an optional
        :meth:`reference_state` to compare the recovered end state with."""
        root = os.path.join(str(tmp_root), f"run-{self.seed}")
        result = HarnessResult(
            seed=self.seed, site=self.point.site, at_op=self.point.at_op,
            crashed=False,
        )
        try:
            self._run_inner(root, result, reference)
        except AssertionError:
            self._save_artifacts(root)
            raise
        finally:
            self._write_lineage()
        return result

    def _run_inner(self, root: str, result: HarnessResult, reference) -> None:
        plan = CrashPlan(self.point)
        viper = self._make_viper(root, recover=False, crash_plan=plan)
        consumer = viper.consumer(model_builder=DictModel)
        consumer.subscribe()
        last_seq = 0
        try:
            self._produce_until(viper, consumer, result.swaps)
        except SimulatedCrash:
            pass
        # A background (flusher/media) kill never surfaces on the
        # producer thread; the plan's ``dead`` flag is the ground truth.
        last_seq = consumer.last_seq
        if not plan.dead:
            # The drawn (site, at_op) was not reached on the producer
            # thread; drain so pending flushes settle — unless the kill
            # point fires mid-flush right here, which drain surfaces as
            # a fast StorageError from the dead worker.
            try:
                viper.drain()
            except Exception:
                assert plan.dead, "drain failed without a simulated crash"
        result.crashed = plan.dead
        if plan.fired is not None:
            result.crash_site = plan.fired.site
        # The crashed deployment is abandoned exactly as SIGKILL would
        # leave it: no close(), no drain, threads die at the next armed
        # kill point.  A real SIGKILL stops every thread at once; our
        # in-process "death" does not, so wait for the corpse's flusher
        # to finish or die mid-job — otherwise a late journal append
        # could land after the restarted incarnation has replayed.
        if result.crashed:
            self._await_corpse_quiescence(viper)
        # Restart from the same durable journal directory.
        restarted = self._make_viper(root, recover=True)
        result.recovery = dict(restarted.recovery)
        consumer2 = restarted.consumer(model_builder=DictModel)
        consumer2.resubscribe(since=last_seq)
        if consumer2._sub.needs_catchup:
            # One catch-up read replaces the pushes lost in the crash.
            result.stale_polls += 1
            caught = consumer2.refresh(MODEL)
            consumer2._sub.needs_catchup = False
            if caught is not None:
                result.swaps_restarted.append(caught.version)
        self._produce_until(restarted, consumer2, result.swaps_restarted)
        restarted.drain()
        self._assert_equivalent(restarted, consumer2, result)
        if reference is not None:
            final = self._final_state(restarted)
            assert final["versions"] == reference["versions"]
            assert final["durable"] == reference["durable"]
            for v, content in reference["contents"].items():
                for key, arr in content.items():
                    np.testing.assert_array_equal(
                        final["contents"][v][key], arr,
                        err_msg=f"seed {self.seed}: recovered v{v} differs "
                                f"from crash-free reference at {key!r}",
                    )
        restarted.close()
        # Double-restart idempotency: recovering again from the final
        # journal must reproduce the identical metadata state.
        again = self._make_viper(root, recover=True)
        try:
            got = again.metadata.state_dict()
            want = restarted.metadata.state_dict()
            assert got == want, (
                f"seed {self.seed}: second recovery diverged\n"
                f"  replayed: {got}\n  live:     {want}"
            )
        finally:
            again.close()

    # ------------------------------------------------------------------
    @staticmethod
    def _await_corpse_quiescence(viper: Viper, timeout: float = 5.0) -> None:
        """Wait until the dead deployment can no longer touch the journal.

        The flusher is the only background thread that appends journal
        ops; once it is idle (its in-flight job completed before the
        crash took effect — equivalent to dying just after the CAS) or
        dead (it hit an armed kill point), no further appends can occur.
        """
        flusher = viper.handler.flusher
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if flusher._dead or flusher._queue.unfinished_tasks == 0:
                return
            time.sleep(0.002)
        raise AssertionError("dead deployment's flusher never quiesced")

    # ------------------------------------------------------------------
    def _assert_equivalent(self, viper: Viper, consumer: ViperConsumer,
                           result: HarnessResult) -> None:
        ctx = (
            f"seed {self.seed}, kill {self.point.site}@{self.point.at_op}, "
            f"fired={result.crash_site or 'never'}"
        )
        # Invariant 1: no lost durable checkpoint — every version 1..N
        # exists, is durable, and serves bit-identical content.
        versions = viper.metadata.versions(MODEL)
        assert versions == list(range(1, self.n_versions + 1)), (
            f"{ctx}: versions {versions}"
        )
        for v in versions:
            rec, _ = viper.metadata.record(MODEL, v)
            assert rec.durable, f"{ctx}: v{v} not durable after drain"
            loaded = viper.load_weights(MODEL, v)
            expect = state_for(v)
            for key, arr in expect.items():
                np.testing.assert_array_equal(
                    loaded.state[key], arr,
                    err_msg=f"{ctx}: v{v} content mismatch at {key!r}",
                )
        # Invariant 2: no duplicate or regressed swap — within each
        # consumer incarnation the applied versions strictly increase.
        for label, seq in (
            ("pre-crash", result.swaps),
            ("restarted", result.swaps_restarted),
        ):
            assert all(b > a for a, b in zip(seq, seq[1:])), (
                f"{ctx}: {label} swap sequence {seq} not strictly increasing"
            )
        # Invariant 3: the resubscribed consumer converged on the newest
        # version (happy path: via pushes/retained note, at most one
        # catch-up read after a detected gap).
        assert consumer.current_version == self.n_versions, (
            f"{ctx}: consumer at v{consumer.current_version}, "
            f"expected v{self.n_versions}"
        )
        assert result.stale_polls <= 1, (
            f"{ctx}: {result.stale_polls} catch-up polls (expected <= 1)"
        )

    # ------------------------------------------------------------------
    def _save_artifacts(self, root: str) -> None:
        dest_root = os.environ.get("VIPER_CRASH_ARTIFACT_DIR")
        if not dest_root or not os.path.isdir(root):
            return
        dest = os.path.join(dest_root, f"seed-{self.seed}")
        shutil.rmtree(dest, ignore_errors=True)
        shutil.copytree(root, dest)

    def _write_lineage(self) -> None:
        """Persist the run's lineage ledger for CI post-mortems."""
        dest_root = os.environ.get("VIPER_CRASH_ARTIFACT_DIR")
        if not dest_root:
            return
        os.makedirs(dest_root, exist_ok=True)
        self.lineage.write_jsonl(
            os.path.join(dest_root, f"lineage-seed-{self.seed}.jsonl")
        )
