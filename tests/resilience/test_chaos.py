"""Chaos suite: probabilistic faults under the environment-driven seed.

CI runs this with ``VIPER_FAULT_SEED=$GITHUB_RUN_ID``, so every run
exercises a different — but fully reproducible — injection sequence.
The assertions are therefore *invariants* that must hold for ANY seed:
round-trips complete, served weights are bit-exact, corruption is never
silently deserialized, and the telemetry counters are self-consistent.

To replay a CI failure locally::

    VIPER_FAULT_SEED=<seed from the CI log> \\
        python -m pytest tests/resilience/test_chaos.py -q
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import CaptureMode, FaultKind, FaultPlan, FaultRule, RetryPolicy, Viper
from repro.resilience.faults import default_seed

pytestmark = pytest.mark.chaos

STATE = {"w": np.arange(1024, dtype=np.float32).reshape(32, 32)}

#: The GPU and HOST staging tiers misbehave with sizeable probability;
#: reads of the fast tiers occasionally return corrupted bytes.  The PFS
#: stays clean, so the failover chain always has a way out — mirroring
#: the paper's "PFS is always available, always slowest" assumption.
CHAOS_RULES = [
    FaultRule(site="store.put:*hbm*", kind=FaultKind.WRITE_FAIL,
              probability=0.3),
    FaultRule(site="store.put:*ddr*", kind=FaultKind.WRITE_FAIL,
              probability=0.2),
    FaultRule(site="store.get:*hbm*", kind=FaultKind.CORRUPT,
              probability=0.2),
    FaultRule(site="store.get:*ddr*", kind=FaultKind.CORRUPT,
              probability=0.2),
]

N_ROUNDS = 25


def test_chaos_round_trips_always_complete_and_verify():
    seed = default_seed()
    plan = FaultPlan(CHAOS_RULES, seed=seed)
    # A generous attempt budget keeps "three corrupt reads in a row"
    # (p ~ 0.2^5) out of the failure budget for any plausible seed; the
    # durable PFS replica backstops even that tail.
    policy = RetryPolicy(max_attempts=5)
    with Viper(fault_plan=plan, retry_policy=policy,
               flush_history=True) as viper:
        for i in range(N_ROUNDS):
            viper.save_weights("chaos", STATE, mode=CaptureMode.SYNC)
            viper.drain()  # PFS mirror lands before the load tries it
            loaded = viper.load_weights("chaos")
            # Invariant 1: the served weights are bit-exact, whatever
            # path (retries, failovers, replica fallbacks) they took.
            np.testing.assert_array_equal(loaded.state["w"], STATE["w"])
        snap = viper.handler.stats.snapshot()
        injected = {
            "write_fail": plan.injection_count(FaultKind.WRITE_FAIL),
            "corrupt": plan.injection_count(FaultKind.CORRUPT),
        }
    # Invariant 2: every detected corruption is accounted for — reads of
    # fast tiers that the plan corrupted either got retried or the load
    # moved on; none were served (assert 1 proved that bit-exactly).
    assert snap.corruptions <= injected["corrupt"]
    # Invariant 3: counter consistency — a failover only happens after a
    # full retry budget was spent on the abandoned strategy.
    assert snap.retries >= snap.failovers * (policy.max_attempts - 1)
    # Invariant 4: the run actually exercised the machinery (for any
    # seed, 25 rounds x p>=0.2 per site makes zero injections
    # astronomically unlikely: p < 1e-30).
    assert injected["write_fail"] + injected["corrupt"] > 0


def test_chaos_is_reproducible_for_the_env_seed():
    seed = default_seed()

    def run():
        plan = FaultPlan(CHAOS_RULES, seed=seed)
        with Viper(fault_plan=plan, flush_history=True,
                   retry_policy=RetryPolicy(max_attempts=5)) as viper:
            for _ in range(10):
                viper.save_weights("chaos", STATE, mode=CaptureMode.SYNC)
                viper.drain()
                viper.load_weights("chaos")
            snap = viper.handler.stats.snapshot()
        return (
            snap.retries,
            snap.failovers,
            snap.corruptions,
            [(i.site, i.op_index, i.kind) for i in plan.injections],
        )

    first, second = run(), run()
    assert first == second
