"""Circuit breakers: the state machine, the board, and the handler wiring.

A persistently failing tier must start failing *fast* — after the
threshold of retry-exhaustions, the breaker refuses calls up front and
the failover chain skips the tier without re-burning its retry budget.
Probes are jittered from a seeded stream, so trip/probe sequences are
reproducible and a fleet tripped by one outage does not probe in
lockstep.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import CaptureMode, FaultKind, FaultPlan, FaultRule, TransferStrategy, Viper
from repro.errors import CircuitOpenError, ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.resilience.breaker import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)
from repro.resilience.retry import RETRYABLE_ERRORS

STATE = {"w": np.arange(256, dtype=np.float32).reshape(16, 16)}

GPU_HOST_DOWN = [
    FaultRule(site="store.put:*hbm*", kind=FaultKind.WRITE_FAIL, probability=1.0),
    FaultRule(site="store.put:*ddr*", kind=FaultKind.WRITE_FAIL, probability=1.0),
]


class TestBreakerConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            BreakerConfig(reset_timeout=0.0)
        with pytest.raises(ConfigurationError):
            BreakerConfig(probe_jitter=1.5)
        with pytest.raises(ConfigurationError):
            BreakerConfig(half_open_probes=0)


class TestCircuitBreaker:
    def make(self, **kwargs):
        cfg = BreakerConfig(
            failure_threshold=kwargs.pop("failure_threshold", 2),
            reset_timeout=kwargs.pop("reset_timeout", 1.0),
            probe_jitter=kwargs.pop("probe_jitter", 0.0),
            half_open_probes=kwargs.pop("half_open_probes", 1),
        )
        return CircuitBreaker("s", cfg, **kwargs)

    def test_trips_after_threshold(self):
        b = self.make()
        b.record_failure(0.0)
        assert b.state is BreakerState.CLOSED
        b.record_failure(0.0)
        assert b.state is BreakerState.OPEN
        assert b.trips == 1
        assert not b.allow(0.5)
        assert b.fast_fails == 1
        assert b.retry_after(0.5) == pytest.approx(0.5)

    def test_check_raises_typed_error(self):
        b = self.make()
        b.record_failure(0.0)
        b.record_failure(0.0)
        with pytest.raises(CircuitOpenError) as exc_info:
            b.check(0.1)
        assert exc_info.value.site == "s"
        assert exc_info.value.retry_after == pytest.approx(0.9)

    def test_circuit_open_error_is_not_retryable(self):
        # Deliberate: CircuitOpenError is not a TransferError, so the
        # retry executor never burns attempts against an open circuit.
        assert not issubclass(CircuitOpenError, RETRYABLE_ERRORS)

    def test_success_resets_the_failure_streak(self):
        b = self.make()
        b.record_failure(0.0)
        b.record_success(0.0)
        b.record_failure(0.0)
        assert b.state is BreakerState.CLOSED  # streak broken, no trip

    def test_half_open_probe_closes_on_success(self):
        b = self.make()
        b.record_failure(0.0)
        b.record_failure(0.0)
        assert b.allow(1.0)                  # delay elapsed: probe admitted
        assert b.state is BreakerState.HALF_OPEN
        b.record_success(1.0)
        assert b.state is BreakerState.CLOSED

    def test_half_open_probe_failure_reopens(self):
        b = self.make()
        b.record_failure(0.0)
        b.record_failure(0.0)
        assert b.allow(1.0)
        b.record_failure(1.0)
        assert b.state is BreakerState.OPEN
        assert b.trips == 2
        assert not b.allow(1.5)              # a fresh full delay applies

    def test_half_open_admits_bounded_probes(self):
        b = self.make(half_open_probes=2)
        b.record_failure(0.0)
        b.record_failure(0.0)
        assert b.allow(1.0)
        assert b.allow(1.0)
        assert not b.allow(1.0)              # both probe slots taken
        b.record_success(1.0)
        assert b.state is BreakerState.HALF_OPEN  # 1 of 2 successes
        b.record_success(1.0)
        assert b.state is BreakerState.CLOSED

    def test_probe_jitter_is_seeded(self):
        def open_until(seed):
            b = CircuitBreaker(
                "s",
                BreakerConfig(failure_threshold=1, reset_timeout=1.0,
                              probe_jitter=0.5),
                rng=random.Random(seed),
            )
            b.record_failure(0.0)
            return b.retry_after(0.0)

        assert open_until("a") == open_until("a")
        assert open_until("a") != open_until("b")
        assert 0.5 <= open_until("a") <= 1.5


class TestBreakerBoard:
    def test_lazily_creates_per_site(self):
        board = BreakerBoard(BreakerConfig(failure_threshold=1), seed=7)
        assert board.states() == {}
        board.failure("stage.gpu", 0.0)
        assert board.states() == {"stage.gpu": BreakerState.OPEN}
        assert board.allow("stage.pfs", 0.0)   # other sites unaffected
        assert board.trips == 1

    def test_same_seed_same_probe_schedule(self):
        def schedule(seed):
            board = BreakerBoard(BreakerConfig(failure_threshold=1), seed=seed)
            board.failure("stage.gpu", 0.0)
            return board.retry_after("stage.gpu", 0.0)

        assert schedule(7) == schedule(7)


class TestHandlerIntegration:
    def make_viper(self, rules, **kwargs):
        kwargs.setdefault("breaker", BreakerConfig(failure_threshold=2,
                                                   reset_timeout=1e9))
        return Viper(
            fault_plan=FaultPlan(rules, seed=7),
            metrics=MetricsRegistry(),
            **kwargs,
        )

    def test_failing_tier_trips_and_stops_burning_retries(self):
        with self.make_viper(GPU_HOST_DOWN) as viper:
            # Each save exhausts gpu + host retries (2 each with the
            # default policy) until both breakers trip at 2 failures.
            for _ in range(2):
                viper.save_weights("m", STATE, mode=CaptureMode.SYNC)
            tripped = viper.handler.stats.snapshot().retries
            states = viper.breakers.states()
            assert states["stage.gpu"] is BreakerState.OPEN
            assert states["stage.host"] is BreakerState.OPEN
            # Post-trip saves go straight to the PFS: zero new retries.
            result = viper.save_weights("m", STATE, mode=CaptureMode.SYNC)
            assert result.strategy is TransferStrategy.PFS
            assert viper.handler.stats.snapshot().retries == tripped
            assert viper.stats.breaker_trips == 2

    def test_all_sites_open_raises_circuit_open(self):
        rules = GPU_HOST_DOWN + [
            FaultRule(site="store.put:*lustre*", kind=FaultKind.WRITE_FAIL,
                      probability=1.0),
        ]
        with self.make_viper(rules) as viper:
            for _ in range(2):
                with pytest.raises(Exception):
                    viper.save_weights("m", STATE, mode=CaptureMode.SYNC)
            with pytest.raises(CircuitOpenError) as exc_info:
                viper.save_weights("m", STATE, mode=CaptureMode.SYNC)
            assert exc_info.value.retry_after > 0

    def test_breakers_off_by_default(self):
        with Viper() as viper:
            assert viper.breakers is None
            assert viper.handler.breakers is None

    def test_breaker_true_uses_defaults(self):
        with Viper(breaker=True) as viper:
            assert viper.breakers is not None
            assert viper.breakers.config == BreakerConfig()
