"""Property tests for journal replay and compaction.

The journal's correctness argument rests on two properties the unit
tests can only spot-check:

1. **Replay is idempotent**: applying any prefix of the journal, then
   the whole journal, converges to the same state as applying the whole
   journal once.  (This is what makes a recovery interrupted by a second
   crash safe — it simply replays again.)
2. **Compaction commutes with replay**: a journal that snapshotted at
   any cadence replays to the same state as one that never compacted.

Hypothesis drives both across random mutation sequences.
"""

from __future__ import annotations

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MetadataError, StaleVersionError
from repro.core.metadata import MetadataStore, ModelRecord
from repro.resilience.recovery import MetadataJournal

MODELS = ("a", "b")
VERSIONS = (1, 2, 3)

#: One mutation: (kind, model, version).  Invalid combinations (duplicate
#: publish, CAS/drop of a missing record) raise MetadataError, which the
#: applier swallows — rejected mutations are never journaled, so they are
#: also absent from replay.
OPS = st.lists(
    st.tuples(
        st.sampled_from(("publish", "cas", "drop", "drop_model")),
        st.sampled_from(MODELS),
        st.sampled_from(VERSIONS),
    ),
    max_size=24,
)


def _record(name, version, *, durable=False):
    return ModelRecord(
        model_name=name,
        version=version,
        nbytes=100,
        location="host_dram",
        path=f"{name}/v{version}",
        durable=durable,
    )


def _apply_ops(store, ops):
    for kind, name, version in ops:
        try:
            if kind == "publish":
                store.publish_version(_record(name, version))
            elif kind == "cas":
                store.compare_and_swap(_record(name, version, durable=True))
            elif kind == "drop":
                store.drop_version(name, version)
            else:
                store.drop_model(name)
        except (MetadataError, StaleVersionError):
            pass  # rejected before journaling; nothing to replay


def _journaled_run(root, ops, *, compact_every=0):
    journal = MetadataJournal(root, compact_every=compact_every)
    store = MetadataStore()
    store.attach_journal(journal)
    _apply_ops(store, ops)
    journal.close()
    return store


@settings(max_examples=60, deadline=None)
@given(ops=OPS)
def test_replay_reproduces_live_state_and_is_idempotent(ops):
    with tempfile.TemporaryDirectory() as td:
        live = _journaled_run(td, ops)
        fresh = MetadataStore()
        journal = MetadataJournal(td)
        journal.replay_into(fresh)
        assert fresh.state_dict() == live.state_dict()
        # Replaying again (an interrupted-then-restarted recovery) is a
        # no-op on the resulting state.
        journal.replay_into(fresh)
        assert fresh.state_dict() == live.state_dict()


@settings(max_examples=60, deadline=None)
@given(ops=OPS, cut=st.integers(min_value=0, max_value=24))
def test_replaying_any_prefix_twice_converges(ops, cut):
    with tempfile.TemporaryDirectory() as td:
        _journaled_run(td, ops)
        entries = MetadataJournal(td).entries()
        cut = min(cut, len(entries))

        once = MetadataStore()
        for e in entries:
            once.apply_journal_op(e.op, e.data)

        twice = MetadataStore()
        for e in entries[:cut]:          # first (interrupted) recovery
            twice.apply_journal_op(e.op, e.data)
        for e in entries:                # second recovery from the top
            twice.apply_journal_op(e.op, e.data)

        assert twice.state_dict() == once.state_dict()


@settings(max_examples=60, deadline=None)
@given(ops=OPS, every=st.integers(min_value=1, max_value=5))
def test_compaction_commutes_with_replay(ops, every):
    with tempfile.TemporaryDirectory() as plain_td, \
            tempfile.TemporaryDirectory() as compact_td:
        plain = _journaled_run(plain_td, ops)
        compacted = _journaled_run(compact_td, ops, compact_every=every)
        assert compacted.state_dict() == plain.state_dict()

        from_plain = MetadataStore()
        MetadataJournal(plain_td).replay_into(from_plain)
        from_compacted = MetadataStore()
        MetadataJournal(compact_td).replay_into(from_compacted)
        assert from_plain.state_dict() == plain.state_dict()
        assert from_compacted.state_dict() == plain.state_dict()
